"""Coffee-Break detection: variable-length queries and the MC index.

The paper's Fig 3(b) query: *"when did the person go from the hallway
to (eventually) a coffee room?"* — a Kleene-closure query that can match
intervals of any length, so fixed-length indexing does not apply. This
example compares:

- the naive full scan (Alg 1),
- the exact MC-index method (Alg 4),
- the approximate semi-independent method (Alg 5),

and also demonstrates a *positive* Kleene loop ("lingered in the coffee
room the whole time") answered through a predicate-conditioned MC index
(§3.3.2).

Run: ``python examples/coffee_breaks.py``
"""

import random
import tempfile

from repro.core import Caldera
from repro.query import Equals
from repro.rfid import (
    COFFEE,
    HALLWAY,
    RFIDSensorModel,
    assign_people,
    default_deployment,
    simulate_tag,
    smooth_trace,
    uw_building,
)

DURATION = 900


def main() -> None:
    plan = uw_building()
    sensors = RFIDSensorModel(plan, default_deployment(plan))
    space = plan.state_space()
    rng = random.Random(21)

    person = assign_people(plan, 1, rng)[0]
    office = person.home_office
    coffee = min(
        plan.of_kind(COFFEE),
        key=lambda room: len(plan.shortest_path(office, room)),
    )
    # Hand-build the day so it provably contains two coffee breaks.
    path = []
    for dwell in (180, 240):
        path += [office] * dwell
        path += plan.shortest_path(office, coffee)[1:]
        path += [coffee] * 25
        path += plan.shortest_path(coffee, office)[1:]
    path += [office] * max(0, DURATION - len(path))
    path = path[:DURATION]
    visits = sorted({t for t, loc in enumerate(path) if loc == coffee})
    print(f"{person.name} visited {coffee} at timesteps "
          f"{visits[:3]}{'...' if len(visits) > 3 else ''} "
          f"({len(visits)} timesteps total)")

    trace = simulate_tag(sensors, person.name, path, rng)
    stream = smooth_trace(plan, sensors, trace, space=space, prune=1e-3)

    coffee_pred = Equals("location", coffee)
    with tempfile.TemporaryDirectory() as tmp:
        with Caldera(tmp) as db:
            db.register_dimension_table("LocationType", plan.dimension_table())
            db.archive(stream, mc_alpha=2,
                       conditioned_predicates=[coffee_pred],
                       join_tables=("LocationType",))

            doorway = next(
                n for n in plan.neighbors(coffee)
                if plan.kind_of(n) == HALLWAY
            )
            # Negated-loop Kleene: hallway, then EVENTUALLY the coffee room.
            query = (
                f"location={doorway} -> "
                f"(!location={coffee})* location={coffee}"
            )
            print(f"\nquery: {query}")
            print(f"data density: {db.data_density(person.name, query):.3f}")
            baseline = None
            for method in ("naive", "mc", "semi"):
                result = db.query(person.name, query, method=method,
                                  cold=True)
                peak = result.peak() or (None, 0.0)
                note = ""
                if method == "naive":
                    baseline = result
                else:
                    speedup = (baseline.stats.wall_time
                               / max(result.stats.wall_time, 1e-9))
                    note = f"  ({speedup:.1f}x vs scan)"
                print(f"  {method:>6}: peak p={peak[1]:.3f} at t={peak[0]}; "
                      f"{result.stats.summary()}{note}")

            # Semi-independent error vs the exact signal.
            exact = db.query(person.name, query, method="mc").as_dict()
            approx = db.query(person.name, query, method="semi").as_dict()
            errors = [abs(approx.get(t, 0.0) - p) for t, p in exact.items()]
            print(f"  semi-independent max abs error: {max(errors):.3f} "
                  f"(no guarantees, §3.4.3)")

            # Positive Kleene loop: entered the coffee room and STAYED in
            # it until time t (a lingering coffee break), answered with a
            # conditioned MC index.
            linger = (
                f"location={doorway} -> "
                f"(location={coffee})* location={coffee}"
            )
            print(f"\nquery: {linger}")
            exact_mode = db.query(person.name, linger, method="mc",
                                  cold=True)
            conditioned = db.query(person.name, linger, method="mc",
                                   use_conditioned=True, cold=True)
            print(f"  exact MC:        {exact_mode.stats.summary()} "
                  f"({len(exact_mode.signal)} points)")
            print(f"  conditioned MC:  {conditioned.stats.summary()} "
                  f"({len(conditioned.signal)} boundary points)")
            peak = exact_mode.peak()
            if peak:
                print(f"  longest plausible break ends near t={peak[0]} "
                      f"(p={peak[1]:.3f})")


if __name__ == "__main__":
    main()
