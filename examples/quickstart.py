"""Quickstart: archive a Markovian stream and query it with Caldera.

Walks the full pipeline of the paper's Figure 1 on a small building:

1. simulate a person (Bob) carrying an RFID tag through the building;
2. smooth the noisy antenna readings into a Markovian stream (HMM
   forward-backward smoothing);
3. archive the stream with BT_C / BT_P / MC indexes;
4. run an Entered-Room event query with several access methods and
   compare their answers and costs.

Run: ``python examples/quickstart.py``
"""

import random
import tempfile

from repro.core import Caldera
from repro.rfid import (
    Antenna,
    RFIDSensorModel,
    demo_building,
    simulate_tag,
    smooth_trace,
)


def main() -> None:
    # --- 1. the world: a small building with three corridor antennas ----
    plan = demo_building()
    sensors = RFIDSensorModel(
        plan, [Antenna("A1", "H2"), Antenna("A2", "H4"), Antenna("A3", "H6")]
    )
    rng = random.Random(42)

    # Bob: office -> coffee room -> office (ground truth, one step/second).
    path = (
        ["O1"] * 10
        + plan.shortest_path("O1", "Coffee")[1:]
        + ["Coffee"] * 8
        + plan.shortest_path("Coffee", "O1")[1:]
        + ["O1"] * 10
    )
    trace = simulate_tag(sensors, "bob", path, rng)
    detections = sum(1 for o in trace.observations if o)
    print(f"simulated {len(path)} timesteps; antennas fired on "
          f"{detections} of them")

    # --- 2. smooth into a Markovian stream ------------------------------
    stream = smooth_trace(plan, sensors, trace)
    t_mid = len(path) // 2
    mode, p = stream.marginal(t_mid).max_state()
    loc = stream.space.attribute_value(mode, "location")
    print(f"smoothed marginal at t={t_mid}: most likely at {loc} (p={p:.2f}); "
          f"ground truth {path[t_mid]}")

    # --- 3. archive with indexes ----------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        with Caldera(tmp) as db:
            db.register_dimension_table("LocationType", plan.dimension_table())
            db.archive(stream, layout="separated", mc_alpha=2,
                       join_tables=("LocationType",))
            print(f"archived {stream.name!r}: "
                  f"{len(db.storage_report())} database files")

            # --- 4. event queries ----------------------------------------
            # Fixed-length: "when did Bob enter the coffee room?"
            entered = "location=H3 -> location=Coffee"
            print(f"\nquery: {entered}")
            for method in ("naive", "btree"):
                result = db.query("bob", entered, method=method)
                peak = result.peak()
                print(f"  {method:>6}: peak p={peak[1]:.3f} at t={peak[0]} "
                      f"({result.stats.summary()})")

            # Auto-planned (the planner picks the B+Tree method):
            decision = db.explain("bob", entered)
            print(f"  planner chooses: {decision.name} — {decision.reason}")

            # Top-1 retrieval via the top-k B+Tree method:
            top = db.query("bob", entered, k=1)
            print(f"  top-1: {top.signal}")

            # Variable-length with a dimension predicate: "Bob left the
            # hallway and eventually reached ANY coffee room".
            coffee_break = (
                "dim(location,LocationType)=Hallway -> "
                "(!dim(location,LocationType)=CoffeeRoom)* "
                "dim(location,LocationType)=CoffeeRoom"
            )
            print(f"\nquery: {coffee_break}")
            for method in ("naive", "mc", "semi"):
                result = db.query("bob", coffee_break, method=method)
                peak = result.peak()
                print(f"  {method:>6}: peak p={peak[1]:.3f} at t={peak[0]} "
                      f"({result.stats.summary()})")


if __name__ == "__main__":
    main()
