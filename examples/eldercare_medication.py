"""Elder care: "Did Margot take her medication before breakfast?"

The paper's introduction motivates Markovian streams with elder-care
monitoring [25, 28]. This example models Margot's apartment as a
multi-attribute stream over (location, activity), inferred from noisy
object-interaction sensors, and answers the historical query above with
Caldera — plus a live alert via the Lahar streaming mode.

It exercises:

- multi-attribute state spaces (§3.4.1) with per-attribute indexes;
- cross-attribute Regular queries with Kleene closures;
- archived (Caldera) vs real-time (Lahar) processing of one stream;
- event extraction from the query signal.

Run: ``python examples/eldercare_medication.py``
"""

import random
import tempfile

from repro.core import Caldera, detect_events
from repro.hmm import HiddenMarkovModel, TabularEmission, smooth
from repro.lahar import StreamingQuery
from repro.probability import CPT, SparseDistribution
from repro.query import parse_query
from repro.streams import StateSpace

LOCATIONS = ["Bedroom", "Bathroom", "Kitchen", "LivingRoom"]
ACTIVITIES = ["resting", "medicating", "cooking", "eating"]

SPACE = StateSpace(
    ("location", "activity"),
    [(loc, act) for loc in LOCATIONS for act in ACTIVITIES],
)

# Activities only make sense in some rooms; transitions only between
# adjacent rooms — the model's physical constraints (§2.1).
ADJACENT = {
    "Bedroom": ["Bathroom", "LivingRoom"],
    "Bathroom": ["Bedroom", "Kitchen"],
    "Kitchen": ["Bathroom", "LivingRoom"],
    "LivingRoom": ["Bedroom", "Kitchen"],
}
PLAUSIBLE = {
    "Bedroom": ["resting"],
    "Bathroom": ["resting", "medicating"],
    "Kitchen": ["cooking", "eating", "medicating"],
    "LivingRoom": ["resting", "eating"],
}

# Object-interaction sensors: each fires for certain (location, activity)
# combinations, noisily.
SENSORS = {
    "pillbox": [("Bathroom", "medicating"), ("Kitchen", "medicating")],
    "stove": [("Kitchen", "cooking")],
    "fridge": [("Kitchen", "cooking"), ("Kitchen", "eating")],
    "couch": [("LivingRoom", "resting"), ("LivingRoom", "eating")],
    "bed": [("Bedroom", "resting")],
}


def build_hmm() -> HiddenMarkovModel:
    rows = {}
    for loc in LOCATIONS:
        for act in PLAUSIBLE[loc]:
            src = SPACE.state_id((loc, act))
            row = {src: 4.0}
            for act2 in PLAUSIBLE[loc]:
                if act2 != act:
                    row[SPACE.state_id((loc, act2))] = 1.0
            for loc2 in ADJACENT[loc]:
                for act2 in PLAUSIBLE[loc2]:
                    row[SPACE.state_id((loc2, act2))] = 0.3
            total = sum(row.values())
            rows[src] = {s: w / total for s, w in row.items()}
    transition = CPT(rows)

    emission_table = {}
    for sensor, combos in SENSORS.items():
        likes = {}
        for loc in LOCATIONS:
            for act in PLAUSIBLE[loc]:
                sid = SPACE.state_id((loc, act))
                likes[sid] = 0.9 if (loc, act) in combos else 0.01
        emission_table[sensor] = likes

    initial_states = [SPACE.state_id(("Bedroom", "resting"))]
    initial = SparseDistribution.uniform(initial_states)
    valid = sum(len(PLAUSIBLE[loc]) for loc in LOCATIONS)
    return HiddenMarkovModel(
        len(SPACE), initial, transition,
        TabularEmission(emission_table, default_uniform=True),
    )


def ground_truth_morning():
    """Margot's morning: wake, bathroom (meds), kitchen (cook, eat)."""
    return (
        [("Bedroom", "resting")] * 6
        + [("Bathroom", "medicating")] * 3
        + [("Bathroom", "resting")] * 2
        + [("Kitchen", "cooking")] * 5
        + [("Kitchen", "eating")] * 4
        + [("LivingRoom", "resting")] * 6
    )


def sample_observations(truth, rng):
    """Noisy sensor feed: the right sensor usually fires, sometimes none."""
    observations = []
    for loc, act in truth:
        fired = None
        for sensor, combos in SENSORS.items():
            if (loc, act) in combos and rng.random() < 0.85:
                fired = sensor
                break
        observations.append(fired)
    return observations


def main() -> None:
    rng = random.Random(11)
    truth = ground_truth_morning()
    observations = sample_observations(truth, rng)
    hmm = build_hmm()
    stream = smooth(hmm, observations, SPACE, name="margot", prune=1e-4)
    print(f"smoothed {len(stream)} timesteps of Margot's morning "
          f"({sum(1 for o in observations if o)} sensor firings)")

    medication_query = (
        "activity=medicating -> (!activity=eating)* activity=eating"
    )

    # --- real-time mode (Lahar): alert the caregiver as it happens -----
    live = StreamingQuery(SPACE)
    live.register(parse_query(medication_query), threshold=0.15,
                  name="meds-before-breakfast")
    alerts = list(live.start(stream.marginal(0)))
    for t in range(1, len(stream)):
        alerts.extend(live.advance(stream.cpt_into(t)))
    if alerts:
        first = alerts[0]
        print(f"\n[live] alert at t={first.time}: medication confirmed "
              f"before eating (p={first.probability:.2f})")
    else:
        print("\n[live] no alert fired — caregiver should check in")

    # --- archived mode (Caldera): the historical question ----------------
    with tempfile.TemporaryDirectory() as tmp:
        with Caldera(tmp) as db:
            db.archive(stream, mc_alpha=2)
            result = db.query("margot", medication_query)  # planner: mc
            print(f"\n[archive] planner used the {result.method!r} method; "
                  f"{result.stats.summary()}")
            events = detect_events(result, enter=0.15)
            for event in events:
                print(f"[archive] {event}")

            # The signal gives, per timestep t, P(the FIRST post-
            # medication meal happened at t). Those events are disjoint,
            # so their sum is the cumulative answer to the yes/no
            # question.
            from repro.core import expected_count

            answer = min(1.0, expected_count(result))
            verdict = "yes" if answer >= 0.5 else "uncertain"
            print(f"\nDid Margot take her medication before breakfast? "
                  f"{verdict} (cumulative p={answer:.2f})")

            # Cross-attribute query: medicated in the BATHROOM and then
            # eventually ate in the kitchen.
            fancy = (
                "location=Bathroom -> "
                "(!activity=eating)* activity=eating"
            )
            fancy_result = db.query("margot", fancy)
            peak = fancy_result.peak()
            print(f"bathroom-then-breakfast: p={peak[1]:.2f} at t={peak[0]}")


if __name__ == "__main__":
    main()
