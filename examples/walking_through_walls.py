"""Why correlations matter: the paper's "walking through walls" example.

§2.1: suppose at two consecutive timesteps Bob is in office O1 or O2,
each with probability 0.5, and the offices are not connected (you cannot
walk through the wall between them). Using the stream's correlations,
P(Bob moved O1 -> O2) = 0.5 * 0 = 0. Ignoring them,
P = 0.5 * 0.5 = 0.25 — "while Bob's ability to walk through walls bodes
well for his career as a superhero", it is wrong.

This example builds exactly that Markovian stream, runs the Entered-O2
query exactly (naive scan / B+Tree / MC index) and approximately
(semi-independent with a forced gap), and shows where the approximation
breaks.

Run: ``python examples/walking_through_walls.py``
"""

import tempfile

from repro.core import Caldera
from repro.probability import CPT, SparseDistribution
from repro.streams import MarkovianStream, single_attribute_space


def build_stream() -> MarkovianStream:
    """Timesteps: hallway, then a long O1/O2 dwell (t=1..6).

    Within the dwell Bob stays in whichever office he entered — the CPT
    has no O1->O2 row, encoding the wall.
    """
    space = single_attribute_space("location", ["H", "O1", "O2"])
    H, O1, O2 = 0, 1, 2
    m0 = SparseDistribution({H: 1.0})
    enter = CPT({H: {O1: 0.5, O2: 0.5}})
    stay = CPT({O1: {O1: 1.0}, O2: {O2: 1.0}})
    marginals = [m0, enter.apply(m0)]
    cpts = [enter]
    for _ in range(5):
        cpts.append(stay)
        marginals.append(stay.apply(marginals[-1]))
    return MarkovianStream("bob", space, marginals, cpts)


def main() -> None:
    stream = build_stream()
    t_last = len(stream) - 1
    print(f"stream: {len(stream)} timesteps; at t>=1 Bob is in O1 or O2 "
          "with probability 0.5 each, and the wall forbids O1 -> O2\n")

    with tempfile.TemporaryDirectory() as tmp:
        with Caldera(tmp) as db:
            db.archive(stream, mc_alpha=2)

            # Was Bob in O1 and then *eventually* in O2? Exactly: never.
            query = "location=O1 -> (!location=O2)* location=O2"
            print(f"query: {query}")
            for method in ("naive", "mc"):
                result = db.query("bob", query, method=method)
                p_end = result.probability_at(t_last)
                print(f"  {method:>6} (exact):  p(t={t_last}) = {p_end:.3f}")

            semi = db.query("bob", query, method="semi")
            p_semi = semi.probability_at(t_last)
            print(f"  {'semi':>6} (approx): p(t={t_last}) = {p_semi:.3f}")
            print()
            if p_semi <= 1e-9:
                print("here even the approximation is exact, because O1/O2 "
                      "timesteps are adjacent and Alg 5 reads adjacent CPTs "
                      "directly — the 'semi' in semi-independent.")

            # Force the independence assumption by making the relevant
            # timesteps non-adjacent: ask about O1 at the dwell's start
            # versus O2 at its end, with irrelevant evidence between.
            fixed = "location=O1 -> location=O2"
            exact2 = stream.interval_probability(
                1, [frozenset({1}), frozenset({2})]
            )
            marg_product = (stream.marginal(1).prob(1)
                            * stream.marginal(2).prob(2))
            print(f"\nfixed query O1 then O2 at (t=1, t=2):")
            print(f"  with correlations: {exact2:.3f}")
            print(f"  independence (marginal product): {marg_product:.3f}"
                  "   <- the superhero answer (0.25)")

            result = db.query("bob", fixed, method="btree")
            print(f"  Caldera's B+Tree method agrees with the exact answer: "
                  f"p(t=2) = {result.probability_at(2):.3f}")


if __name__ == "__main__":
    main()
