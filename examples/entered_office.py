"""Entered-Office detection on a day of simulated routine data.

Reproduces the paper's motivating scenario (Figs 3a and 4): a person
moves through a two-floor, 352-location building all day; RFID antennas
in the corridors catch glimpses of their tag. We smooth the readings,
archive the stream, and ask *"when did they enter their office?"* —
comparing the naive scan against the B+Tree access method and showing
the thresholdable query signal.

Run: ``python examples/entered_office.py``
"""

import random
import tempfile

from repro.core import Caldera
from repro.rfid import (
    HALLWAY,
    RFIDSensorModel,
    assign_people,
    default_deployment,
    routine_path,
    simulate_tag,
    smooth_trace,
    uw_building,
)

DURATION = 900  # timesteps (~15 minutes at 1 Hz)


def main() -> None:
    plan = uw_building()
    sensors = RFIDSensorModel(plan, default_deployment(plan))
    space = plan.state_space()
    rng = random.Random(7)
    print(f"building: {len(plan)} locations, "
          f"{len(sensors.antennas)} corridor antennas (the paper's scale)")

    person = assign_people(plan, 1, rng)[0]
    office = person.home_office
    doorway = next(
        n for n in plan.neighbors(office) if plan.kind_of(n) == HALLWAY
    )
    path = routine_path(plan, person, DURATION, rng)
    entries = [
        t for t in range(1, DURATION)
        if path[t] == office and path[t - 1] == doorway
    ]
    print(f"{person.name} lives in {office}; ground truth office entries "
          f"at t={entries}")

    trace = simulate_tag(sensors, person.name, path, rng)
    stream = smooth_trace(plan, sensors, trace, space=space, prune=1e-3)

    with tempfile.TemporaryDirectory() as tmp:
        with Caldera(tmp) as db:
            db.archive(stream, layout="separated", mc_alpha=2)
            query = f"location={doorway} -> location={office}"
            density = db.data_density(person.name, query)
            print(f"\nquery: {query}   (data density {density:.2f})")

            naive = db.query(person.name, query, method="naive", cold=True)
            btree = db.query(person.name, query, method="btree", cold=True)
            speedup = naive.stats.wall_time / max(btree.stats.wall_time, 1e-9)
            print(f"  naive scan: {naive.stats.summary()}")
            print(f"  B+Tree:     {btree.stats.summary()}  "
                  f"({speedup:.1f}x faster)")

            # The Fig-4-style signal: threshold to detect entry events.
            threshold = 0.1
            events = btree.above(threshold)
            print(f"\nquery signal above p={threshold}:")
            for t, p in events:
                bar = "#" * int(p * 40)
                truth = " <== ground-truth entry" if any(
                    abs(t - e) <= 2 for e in entries
                ) else ""
                print(f"  t={t:4d}  p={p:.3f} {bar}{truth}")
            if not events:
                peak = btree.peak()
                print(f"  (no event above threshold; peak p={peak[1]:.3f} "
                      f"at t={peak[0]})")

            # Top-k retrieval picks the same peaks without scanning.
            top3 = db.query(person.name, query, k=3)
            print(f"\ntop-3 matches: "
                  + ", ".join(f"t={t} (p={p:.3f})" for t, p in top3.signal))

            # The same question about a room the person rarely visits is
            # a *low-density* query — the regime where indexing shines
            # (the paper's bimodal-density observation, §4.1.2).
            errand = person.errand_rooms[0]
            errand_door = next(
                n for n in plan.neighbors(errand)
                if plan.kind_of(n) == HALLWAY
            )
            rare = f"location={errand_door} -> location={errand}"
            density = db.data_density(person.name, rare)
            naive = db.query(person.name, rare, method="naive", cold=True)
            btree = db.query(person.name, rare, method="btree", cold=True)
            speedup = naive.stats.wall_time / max(btree.stats.wall_time, 1e-9)
            print(f"\nlow-density query: {rare}   (density {density:.2f})")
            print(f"  naive scan: {naive.stats.summary()}")
            print(f"  B+Tree:     {btree.stats.summary()}  "
                  f"({speedup:.1f}x faster)")


if __name__ == "__main__":
    main()
