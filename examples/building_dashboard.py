"""Fleet dashboard: one question across every tracked person.

Archives several people's simulated daily routines, then fans a single
event query over all of them with ``Caldera.query_all`` — "who visited a
coffee room, and when?" — ranking people by the expected number of
visits and showing detected events per person. This is the multi-tag
deployment view (58 tags in the paper's dataset, §4.1.2) that a building
dashboard would render.

Run: ``python examples/building_dashboard.py``
"""

import tempfile

from repro.core import Caldera, detect_events, expected_count
from repro.rfid import (
    RFIDSensorModel,
    default_deployment,
    routine_dataset,
    uw_building,
)

PEOPLE = 4
DURATION = 500


def main() -> None:
    plan = uw_building()
    sensors = RFIDSensorModel(plan, default_deployment(plan))
    print(f"simulating {PEOPLE} people x {DURATION} timesteps in the "
          f"{len(plan)}-location building ...")
    streams = routine_dataset(plan, sensors, num_people=PEOPLE,
                              duration=DURATION, seed=29, prune=1e-3)

    with tempfile.TemporaryDirectory() as tmp:
        with Caldera(tmp) as db:
            db.register_dimension_table("LocationType", plan.dimension_table())
            for stream in streams:
                db.archive(stream, mc_alpha=2, join_tables=("LocationType",))

            # One dimension-predicate query, fanned over every stream.
            query = "dim(location,LocationType)=CoffeeRoom"
            results = db.query_all(query)

            print(f"\nwho visited a coffee room? (query: {query})\n")
            ranked = sorted(
                results.items(),
                key=lambda kv: -expected_count(kv[1]),
            )
            for name, result in ranked:
                visits = expected_count(result)
                events = detect_events(result, enter=0.3, max_gap=2)
                spans = ", ".join(
                    f"t={e.start}..{e.end} (p={e.peak_probability:.2f})"
                    for e in events[:4]
                )
                print(f"  {name}: expected coffee-room timesteps "
                      f"{visits:6.1f}; {len(events)} event(s) {spans}")

            # Drill into the most caffeinated person with a sequenced
            # query: hallway then (eventually) the coffee room.
            top_person = ranked[0][0]
            drill = (
                "dim(location,LocationType)=Hallway -> "
                "(!dim(location,LocationType)=CoffeeRoom)* "
                "dim(location,LocationType)=CoffeeRoom"
            )
            result = db.query(top_person, drill)
            peak = result.peak()
            print(f"\n{top_person}'s clearest hallway-to-coffee transition: "
                  f"t={peak[0]} (p={peak[1]:.2f}) — "
                  f"answered with the {result.method!r} method in "
                  f"{result.stats.wall_time * 1000:.1f} ms")


if __name__ == "__main__":
    main()
