"""Regular queries and their linear-NFA structure (§3).

A Regular query is a sequence of *links*; each link has a predicate
that one timestep must satisfy, optionally preceded by a Kleene loop
(``(φ)*`` — zero or more loop timesteps before the link's own). The
corresponding NFA is *linear*: states ``0 .. n`` for ``n`` links, state
``q`` meaning "the first ``q`` links have matched", with

* a self-loop on state 0 under ``true`` (a match may start anywhere),
* an edge ``q -> q+1`` under link ``q``'s predicate,
* a self-loop on state ``q`` under link ``q``'s Kleene-loop predicate
  (when present), and
* accept state ``n`` with no outgoing edges: acceptance at timestep
  ``t`` means "a match *ends* at ``t``" — the per-timestep event
  probability signal Reg computes.

Query text grammar (whitespace-separated, links joined by ``->``)::

    location=D -> location=R
    location=D -> (!location=R)* location=R
    dim(location,LocationType)=Hallway -> location in {O300,O301}
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List, Optional, Sequence

from ..errors import QueryError
from ..streams.schema import StateSpace
from .predicates import DimensionEquals, Equals, InSet, Not, Predicate


class Link:
    """One query link: a predicate, optionally preceded by a Kleene
    loop over another predicate."""

    def __init__(self, predicate: Predicate,
                 loop: Optional[Predicate] = None) -> None:
        self.predicate = predicate
        self.loop = loop

    @property
    def has_loop(self) -> bool:
        return self.loop is not None

    @property
    def has_positive_loop(self) -> bool:
        """A loop over a positive (indexable) predicate — the kind the
        conditioned MC index accelerates (§3.3.2)."""
        return self.loop is not None and not isinstance(self.loop, Not)

    def signature(self) -> str:
        if self.loop is None:
            return self.predicate.signature()
        return f"({self.loop.signature()})* {self.predicate.signature()}"

    def __repr__(self) -> str:
        return f"Link({self.signature()!r})"


class RegularQuery:
    """A parsed Regular query: an ordered list of links."""

    def __init__(self, links: Sequence[Link],
                 name: Optional[str] = None) -> None:
        self.links: List[Link] = list(links)
        if not self.links:
            raise QueryError("a query needs at least one link")
        if self.links[0].has_loop:
            # A leading loop is absorbed by the start state's implicit
            # true self-loop (matches may begin anywhere), so it adds
            # nothing but cost.
            raise QueryError("the first link cannot carry a Kleene loop")
        self.name = name if name is not None else self.signature()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.links)

    def signature(self) -> str:
        return " -> ".join(link.signature() for link in self.links)

    def predicates(self) -> List[Predicate]:
        """The per-link predicates, in order."""
        return [link.predicate for link in self.links]

    @property
    def is_fixed_length(self) -> bool:
        """No Kleene loops: every match spans exactly ``len(self)``
        consecutive timesteps."""
        return all(not link.has_loop for link in self.links)

    @property
    def has_positive_loops(self) -> bool:
        return any(link.has_positive_loop for link in self.links)

    def indexable_predicates(self) -> List[Predicate]:
        """Every distinct indexable predicate the query mentions — link
        predicates plus positive loop predicates (a negated loop's
        timesteps need no index support: any timestep qualifies unless
        the *base* predicate holds, and skipping is still sound because
        irrelevant gap timesteps satisfy the negation trivially)."""
        out: List[Predicate] = []
        seen: set = set()
        for link in self.links:
            candidates = [link.predicate]
            if link.has_positive_loop:
                candidates.append(link.loop)
            for predicate in candidates:
                if predicate.indexable and \
                        predicate.signature() not in seen:
                    seen.add(predicate.signature())
                    out.append(predicate)
        return out

    def relevant_state_sets(self, space: StateSpace) -> List[FrozenSet[int]]:
        """Matching-state sets of the indexable predicates (the state
        mass that makes a timestep *relevant*, §4.1.2)."""
        return [p.matching_states(space)
                for p in self.indexable_predicates()]

    def __repr__(self) -> str:
        return f"RegularQuery({self.signature()!r})"


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
_DIM_RE = re.compile(
    r"^dim\(\s*(?P<attr>[\w.]+)\s*,\s*(?P<table>[\w.]+)\s*\)"
    r"\s*=\s*(?P<value>\S+)$"
)
_EQ_RE = re.compile(r"^(?P<attr>[\w.]+)\s*=\s*(?P<value>\S+)$")
_IN_RE = re.compile(
    r"^(?P<attr>[\w.]+)\s+in\s+\{(?P<values>[^{}]*)\}$"
)
_LOOP_RE = re.compile(r"^\(\s*(?P<body>.+?)\s*\)\s*\*\s*(?P<rest>.+)$")


def _parse_atom(text: str,
                dimensions: Optional[Dict[str, Dict]]) -> Predicate:
    text = text.strip()
    negated = text.startswith("!")
    if negated:
        text = text[1:].strip()
    match = _DIM_RE.match(text)
    if match:
        table = match.group("table")
        mapping = (dimensions or {}).get(table)
        if mapping is None:
            raise QueryError(
                f"unknown dimension table {table!r} in predicate {text!r}"
            )
        predicate: Predicate = DimensionEquals(
            match.group("attr"), table, match.group("value"), mapping
        )
    elif (match := _IN_RE.match(text)) is not None:
        values = [v.strip() for v in match.group("values").split(",")
                  if v.strip()]
        predicate = InSet(match.group("attr"), values)
    elif (match := _EQ_RE.match(text)) is not None:
        predicate = Equals(match.group("attr"), match.group("value"))
    else:
        raise QueryError(f"cannot parse predicate {text!r}")
    return Not(predicate) if negated else predicate


def _parse_link(text: str,
                dimensions: Optional[Dict[str, Dict]]) -> Link:
    text = text.strip()
    if not text:
        raise QueryError("empty link in query")
    loop: Optional[Predicate] = None
    match = _LOOP_RE.match(text)
    if match:
        loop = _parse_atom(match.group("body"), dimensions)
        text = match.group("rest")
    return Link(_parse_atom(text, dimensions), loop)


def parse_query(
    text: str,
    dimensions: Optional[Dict[str, Dict]] = None,
    name: Optional[str] = None,
) -> RegularQuery:
    """Parse query text into a :class:`RegularQuery`.

    ``dimensions`` supplies dimension-table contents for ``dim(...)``
    predicates (the engine passes its catalog's tables).
    """
    parts = [p for p in text.split("->")]
    links = [_parse_link(part, dimensions) for part in parts]
    return RegularQuery(links, name=name if name is not None else text.strip())
