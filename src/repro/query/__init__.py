"""Regular event queries: predicates, query structure, parsing (§3)."""

from .predicates import (
    DimensionEquals,
    Equals,
    IndexTerm,
    InSet,
    Not,
    Predicate,
    TruePredicate,
)
from .regular import Link, RegularQuery, parse_query

__all__ = [
    "DimensionEquals",
    "Equals",
    "IndexTerm",
    "InSet",
    "Link",
    "Not",
    "Predicate",
    "RegularQuery",
    "TruePredicate",
    "parse_query",
]
