"""Query predicates over stream states (§3).

A predicate is a boolean condition on one timestep's state. The access
methods care about three things: which *states* satisfy it (to mask
CPTs and marginals), whether it is *indexable* (its satisfying mass is
the sum of a few BT_C/BT_P entries), and which *index terms* cover it —
``(indexed_attribute, value)`` pairs whose per-timestep indexed
probabilities sum to the predicate's marginal mass. A dimension
predicate (§3.4.1: ``dim(location, LocationType) = Hallway``) is
covered either by a join index over ``location/LocationType`` or, as a
fallback, by the union of base-attribute terms for every location the
dimension table maps to the wanted value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from ..errors import QueryError
from ..streams.schema import StateSpace


@dataclass(frozen=True)
class IndexTerm:
    """One secondary-index lookup key: an indexed attribute name
    (``location`` or ``location/Table``) and a value."""

    indexed_attr: str
    value: object


class Predicate:
    """Base class for timestep predicates."""

    #: Whether BT_C/BT_P entries can cover this predicate's mass.
    indexable = True

    def matching_states(self, space: StateSpace) -> FrozenSet[int]:
        raise NotImplementedError

    def signature(self) -> str:
        """Canonical text form — the identity used for deduplication and
        conditioned-index matching."""
        raise NotImplementedError

    def index_terms(self, space: StateSpace) -> List[IndexTerm]:
        """The preferred index terms covering this predicate."""
        raise NotImplementedError

    # Subclasses may add value_level_terms(space) as a fallback when the
    # preferred (join) index is absent; see QueryContext._terms_for.

    def __eq__(self, other) -> bool:
        return isinstance(other, Predicate) and \
            self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.signature()!r})"


class Equals(Predicate):
    """``attribute = value`` — the workhorse predicate."""

    def __init__(self, attribute: str, value) -> None:
        self.attribute = attribute
        self.value = value

    def matching_states(self, space: StateSpace) -> FrozenSet[int]:
        return space.states_with_value(self.attribute, self.value)

    def signature(self) -> str:
        return f"{self.attribute}={self.value}"

    def index_terms(self, space: StateSpace) -> List[IndexTerm]:
        return [IndexTerm(self.attribute, self.value)]


class InSet(Predicate):
    """``attribute in {v1, v2, ...}`` — a small disjunction; indexable
    because timestep states are disjoint, so the values' indexed
    probabilities sum exactly."""

    def __init__(self, attribute: str, values) -> None:
        self.attribute = attribute
        self.values = tuple(sorted(set(values), key=str))
        if not self.values:
            raise QueryError("empty value set in predicate")

    def matching_states(self, space: StateSpace) -> FrozenSet[int]:
        out: FrozenSet[int] = frozenset()
        for value in self.values:
            out |= space.states_with_value(self.attribute, value)
        return out

    def signature(self) -> str:
        inner = ",".join(str(v) for v in self.values)
        return f"{self.attribute} in {{{inner}}}"

    def index_terms(self, space: StateSpace) -> List[IndexTerm]:
        return [IndexTerm(self.attribute, v) for v in self.values]


class DimensionEquals(Predicate):
    """``dim(attribute, Table) = value`` — equality on the dimension
    value a star-schema table assigns to the attribute (§3.4.1)."""

    def __init__(self, attribute: str, table: str, value,
                 mapping: Optional[Dict] = None) -> None:
        self.attribute = attribute
        self.table = table
        self.value = value
        #: The dimension table contents; required for matching_states
        #: and the value-level fallback.
        self.mapping = mapping

    def _need_mapping(self) -> Dict:
        if self.mapping is None:
            raise QueryError(
                f"predicate {self.signature()!r} has no dimension table "
                f"bound — parse it with dimensions={{...}}"
            )
        return self.mapping

    def base_values(self) -> List:
        """The attribute values the table maps to the wanted dimension
        value."""
        mapping = self._need_mapping()
        return sorted(
            (v for v, dim in mapping.items() if dim == self.value), key=str
        )

    def matching_states(self, space: StateSpace) -> FrozenSet[int]:
        out: FrozenSet[int] = frozenset()
        for value in self.base_values():
            out |= space.states_with_value(self.attribute, value)
        return out

    def signature(self) -> str:
        return f"dim({self.attribute},{self.table})={self.value}"

    def index_terms(self, space: StateSpace) -> List[IndexTerm]:
        return [IndexTerm(f"{self.attribute}/{self.table}", self.value)]

    def value_level_terms(self, space: StateSpace) -> List[IndexTerm]:
        """Fallback when no join index exists: one term per base value
        (correct because states are disjoint within a timestep)."""
        vocab = space.vocabulary(self.attribute)
        return [IndexTerm(self.attribute, v)
                for v in self.base_values() if v in vocab]


class Not(Predicate):
    """Negation. Not indexable: the satisfying mass is a complement, so
    index entries (which record only nonzero positive mass) cannot
    cover it. Used for negated Kleene loops (``(!location=R)*``)."""

    indexable = False

    def __init__(self, base: Predicate) -> None:
        self.base = base

    def matching_states(self, space: StateSpace) -> FrozenSet[int]:
        return frozenset(range(len(space))) - self.base.matching_states(space)

    def signature(self) -> str:
        return f"!{self.base.signature()}"

    def index_terms(self, space: StateSpace) -> List[IndexTerm]:
        raise QueryError(f"predicate {self.signature()!r} is not indexable")


class TruePredicate(Predicate):
    """Matches every state (the implicit self-loop on the NFA's start
    state). Not indexable — every timestep is relevant to it."""

    indexable = False

    def matching_states(self, space: StateSpace) -> FrozenSet[int]:
        return frozenset(range(len(space)))

    def signature(self) -> str:
        return "true"

    def index_terms(self, space: StateSpace) -> List[IndexTerm]:
        raise QueryError("'true' is not indexable")
