"""Caldera: access methods for archived Markovian streams.

A from-scratch reproduction of *"Access Methods for Markovian Streams"*
(Letchner, Ré, Balazinska, Philipose — ICDE 2009 / UW TR #TR08-07-01).

The package is layered bottom-up:

- :mod:`repro.storage` — page-based B+ tree storage engine (BDB substitute);
- :mod:`repro.probability` — sparse distributions and CPTs;
- :mod:`repro.hmm` — HMMs, forward-backward smoothing, particle filtering;
- :mod:`repro.rfid` — building/antenna/tag simulator (not yet implemented;
  :mod:`repro.streams.synthetic` stands in for it today);
- :mod:`repro.streams` — the Markovian stream model and archive layouts;
- :mod:`repro.query` — predicates and Regular (linear-NFA) event queries;
- :mod:`repro.lahar` — the Reg operator (Lahar-style NFA probability);
- :mod:`repro.indexes` — BT_C, BT_P secondary indexes (MC index stubbed);
- :mod:`repro.access` — the paper's access methods (Algorithms 1-3 and the
  semi-independent approximation; Alg 5's MC traversal awaits the MC index);
- :mod:`repro.core` — the Caldera engine: catalog, planner, operators.

Quickstart: see ``examples/quickstart.py`` for an end-to-end walkthrough.
"""

__version__ = "1.0.0"

from .errors import (
    CatalogError,
    InferenceError,
    KeyEncodingError,
    PageError,
    PlanningError,
    QueryError,
    ReproError,
    StorageError,
    StreamError,
)

__all__ = [
    "Caldera",
    "CatalogError",
    "InferenceError",
    "KeyEncodingError",
    "PageError",
    "PlanningError",
    "QueryError",
    "ReproError",
    "StorageError",
    "StreamError",
    "__version__",
]


def __getattr__(name):
    # Lazy import of the engine keeps `import repro` light and avoids
    # import cycles while the package initializes.
    if name == "Caldera":
        from .core.engine import Caldera

        return Caldera
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
