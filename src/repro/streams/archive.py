"""The stream archive: Markovian streams on disk (§3.4.2).

Every archived stream is one or more B+ trees in the database's
:class:`~repro.storage.StorageEnvironment`, and every timestep access
is a keyed lookup — the Berkeley-DB access pattern of the paper, and
the cost model its layout experiments measure (a timestep read costs
one tree descent in *logical* page reads, whatever the OS cache does).
Three physical layouts trade that cost off differently:

``separated``
    Two trees, ``{name}__marg`` and ``{name}__cpt``, keyed by timestep.
    Marginal-only consumers (index builds, BT_C aggregation) touch only
    the small marginal tree; Reg-driven scans pay two lookups per step.

``cell``
    One tree, ``{name}__data``, one entry per timestep holding the
    marginal *and* the CPT arriving into it (the paper's co-clustered
    layout). One lookup per timestep for the access methods' hot path.

``packed``
    Like ``cell`` but K consecutive cells framed into one entry keyed by
    the frame's first timestep. A sequential scan costs ~1/K the logical
    reads of ``cell`` — one descent amortized over K timesteps — at the
    price of decoding (and, for point access, discarding) K cells.

All layouts store one metadata record under the reserved key ``(-1,)``
(timesteps are non-negative, so it sorts before every data key) with
the layout name, stream length, and pack factor — enough for
:func:`open_reader` to reopen an archive from its trees alone.
"""

from __future__ import annotations

import enum
import json
from typing import Iterator, List, Optional, Tuple, Union

from ..errors import CatalogError, StorageError, StreamError
from ..probability import CPT, SparseDistribution
from ..storage import BTree, StorageEnvironment, encode_key
from ..storage.record import pack_chunks, unpack_chunks
from .markovian import MarkovianStream
from .schema import StateSpace

#: Default frame size for the ``packed`` layout: big enough to amortize
#: the descent, small enough that a frame of typical RFID-scale cells
#: stays inline (no overflow chain) at the default page size.
DEFAULT_PACK = 8

#: Reserved metadata key — sorts before key (0,).
META_KEY = encode_key((-1,))


class Layout(enum.Enum):
    """Physical archive layout (§3.4.2)."""

    SEPARATED = "separated"
    CELL = "cell"
    #: The paper's name for the one-entry-per-timestep combined layout.
    CO_CLUSTERED = "cell"
    PACKED = "packed"

    @classmethod
    def parse(cls, value: Union["Layout", str]) -> "Layout":
        if isinstance(value, Layout):
            return value
        name = str(value).strip().lower().replace("-", "_")
        if name in ("co_clustered", "coclustered"):
            return cls.CELL
        for member in cls:
            if member.value == name:
                return member
        raise StreamError(
            f"unknown layout {value!r} (expected one of: separated, "
            f"cell/co_clustered, packed)"
        )


def marg_tree_name(stream: str) -> str:
    return f"{stream}__marg"


def cpt_tree_name(stream: str) -> str:
    return f"{stream}__cpt"


def data_tree_name(stream: str) -> str:
    return f"{stream}__data"


# ----------------------------------------------------------------------
# Cell encoding
# ----------------------------------------------------------------------
def _encode_cell(marginal: SparseDistribution, cpt: Optional[CPT]) -> bytes:
    """One timestep's archive cell: marginal + CPT-into (empty chunk at
    t = 0, which has no incoming correlation)."""
    return pack_chunks(
        [marginal.to_bytes(), b"" if cpt is None else cpt.to_bytes()]
    )


def _decode_cell(data: bytes) -> Tuple[bytes, bytes]:
    chunks, _ = unpack_chunks(data)
    if len(chunks) != 2:
        raise StorageError(f"bad archive cell: {len(chunks)} chunks")
    return chunks[0], chunks[1]


def _meta_value(layout: Layout, length: int, pack: int) -> bytes:
    return json.dumps(
        {"layout": layout.value, "length": length, "pack": pack}
    ).encode("utf-8")


def _read_meta(tree: BTree) -> Optional[dict]:
    data = tree.get(META_KEY)
    return None if data is None else json.loads(data.decode("utf-8"))


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def write_stream(
    env: StorageEnvironment,
    stream: MarkovianStream,
    layout: Union[Layout, str] = Layout.SEPARATED,
    pack: int = DEFAULT_PACK,
) -> "StreamReader":
    """Archive a stream under the chosen layout (bulk-loaded, flushed)
    and return a reader over it."""
    layout = Layout.parse(layout)
    length = len(stream)
    if layout is Layout.SEPARATED:
        marg = env.open_tree(marg_tree_name(stream.name))
        cpt = env.open_tree(cpt_tree_name(stream.name))
        marg.bulk_load(
            [(META_KEY, _meta_value(layout, length, 1))]
            + [
                (encode_key((t,)), m.to_bytes())
                for t, m in enumerate(stream.marginals)
            ]
        )
        cpt.bulk_load(
            (encode_key((t + 1,)), c.to_bytes())
            for t, c in enumerate(stream.cpts)
        )
        marg.flush()
        cpt.flush()
    elif layout is Layout.CELL:
        data = env.open_tree(data_tree_name(stream.name))
        data.bulk_load(
            [(META_KEY, _meta_value(layout, length, 1))]
            + [
                (encode_key((t,)), _encode_cell(m, c))
                for t, m, c in stream.iter_cells()
            ]
        )
        data.flush()
    elif layout is Layout.PACKED:
        if pack < 1:
            raise StreamError(f"pack factor must be >= 1, got {pack}")
        data = env.open_tree(data_tree_name(stream.name))
        items: List[Tuple[bytes, bytes]] = [
            (META_KEY, _meta_value(layout, length, pack))
        ]
        cells = list(stream.iter_cells())
        for start in range(0, length, pack):
            frame = cells[start:start + pack]
            chunks: List[bytes] = []
            for _, marginal, cpt in frame:
                chunks.append(marginal.to_bytes())
                chunks.append(b"" if cpt is None else cpt.to_bytes())
            items.append((encode_key((start,)), pack_chunks(chunks)))
        data.bulk_load(items)
        data.flush()
    else:  # pragma: no cover - exhaustive over Layout
        raise StreamError(f"unsupported layout {layout!r}")
    return open_reader(env, stream.name, stream.space, length, layout,
                       pack=pack)


# ----------------------------------------------------------------------
# Readers
# ----------------------------------------------------------------------
class StreamReader:
    """Uniform read API over an archived stream, any layout.

    Point access (``marginal(t)``, ``cpt_into(t)``) costs one tree
    descent — O(height) logical page reads. Sequential scans issue one
    keyed lookup per timestep (``separated``/``cell``) or per K-step
    frame (``packed``); that lookup count *is* the layout experiment's
    cost metric.
    """

    layout: Layout

    def __init__(self, name: str, space: StateSpace, length: int) -> None:
        self.name = name
        self.space = space
        self.length = length

    # -- point access --------------------------------------------------
    def marginal(self, t: int) -> SparseDistribution:
        raise NotImplementedError

    def cpt_into(self, t: int) -> CPT:
        """The CPT from ``t - 1`` into ``t`` (t >= 1)."""
        raise NotImplementedError

    def _check_time(self, t: int, lo: int = 0) -> None:
        if not lo <= t < self.length:
            raise StreamError(
                f"timestep {t} out of range for stream {self.name!r} "
                f"of length {self.length}"
            )

    def _clamp(self, start: int, stop: Optional[int],
               lo: int = 0) -> Tuple[int, int]:
        stop = self.length if stop is None else min(stop, self.length)
        return max(lo, start), stop

    # -- scans ---------------------------------------------------------
    def scan_marginals(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[Tuple[int, SparseDistribution]]:
        start, stop = self._clamp(start, stop)
        for t in range(start, stop):
            yield t, self.marginal(t)

    def scan_cpts(
        self, start: int = 1, stop: Optional[int] = None
    ) -> Iterator[Tuple[int, CPT]]:
        """Yield ``(t, cpt_into_t)`` for ``t`` in ``[max(start, 1), stop)``."""
        start, stop = self._clamp(start, stop, lo=1)
        for t in range(start, stop):
            yield t, self.cpt_into(t)

    def scan_cells(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[Tuple[int, SparseDistribution, Optional[CPT]]]:
        """Yield ``(t, marginal_t, cpt_into_t)`` (CPT None at t = 0)."""
        start, stop = self._clamp(start, stop)
        for t in range(start, stop):
            yield t, self.marginal(t), (None if t == 0 else self.cpt_into(t))

    # -- materialization ----------------------------------------------
    def materialize(self) -> MarkovianStream:
        """Read the whole archive back into memory."""
        marginals: List[SparseDistribution] = []
        cpts: List[CPT] = []
        for t, marginal, cpt in self.scan_cells():
            marginals.append(marginal)
            if t > 0:
                cpts.append(cpt)
        return MarkovianStream(self.name, self.space, marginals, cpts,
                               validate=False)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, length={self.length}, "
            f"layout={self.layout.value})"
        )


class SeparatedReader(StreamReader):
    layout = Layout.SEPARATED

    def __init__(self, marg: BTree, cpt: BTree, name: str,
                 space: StateSpace, length: int) -> None:
        super().__init__(name, space, length)
        self._marg = marg
        self._cpt = cpt

    def marginal(self, t: int) -> SparseDistribution:
        self._check_time(t)
        data = self._marg.get(encode_key((t,)))
        if data is None:
            raise StorageError(f"missing marginal at t={t}")
        return SparseDistribution.from_bytes(data)

    def cpt_into(self, t: int) -> CPT:
        self._check_time(t, lo=1)
        data = self._cpt.get(encode_key((t,)))
        if data is None:
            raise StorageError(f"missing CPT into t={t}")
        return CPT.from_bytes(data)


class _CombinedReader(StreamReader):
    """Shared scan plumbing for the cell-holding layouts: per-kind scans
    route through :meth:`scan_cells`, so a full scan touches each
    entry/frame exactly once instead of twice."""

    def scan_marginals(self, start=0, stop=None):
        for t, marginal, _ in self.scan_cells(start, stop):
            yield t, marginal

    def scan_cpts(self, start=1, stop=None):
        for t, _, cpt in self.scan_cells(max(1, start), stop):
            yield t, cpt


class CellReader(_CombinedReader):
    layout = Layout.CELL

    def __init__(self, data: BTree, name: str, space: StateSpace,
                 length: int) -> None:
        super().__init__(name, space, length)
        self._data = data

    def _cell(self, t: int) -> Tuple[bytes, bytes]:
        data = self._data.get(encode_key((t,)))
        if data is None:
            raise StorageError(f"missing archive cell at t={t}")
        return _decode_cell(data)

    def marginal(self, t: int) -> SparseDistribution:
        self._check_time(t)
        return SparseDistribution.from_bytes(self._cell(t)[0])

    def cpt_into(self, t: int) -> CPT:
        self._check_time(t, lo=1)
        return CPT.from_bytes(self._cell(t)[1])

    def scan_cells(self, start=0, stop=None):
        start, stop = self._clamp(start, stop)
        for t in range(start, stop):
            marg_bytes, cpt_bytes = self._cell(t)
            marginal = SparseDistribution.from_bytes(marg_bytes)
            cpt = None if t == 0 else CPT.from_bytes(cpt_bytes)
            yield t, marginal, cpt


class PackedReader(_CombinedReader):
    layout = Layout.PACKED

    def __init__(self, data: BTree, name: str, space: StateSpace,
                 length: int, pack: int) -> None:
        super().__init__(name, space, length)
        self._data = data
        self.pack = pack
        # One-frame cache: point access inside the last-touched frame
        # (marginal(t) then cpt_into(t), short interval walks) decodes
        # and fetches the frame once.
        self._cached_start = -1
        self._cached_chunks: List[bytes] = []

    def _frame(self, start: int) -> List[bytes]:
        """The raw chunk list [marg_0, cpt_0, marg_1, cpt_1, ...] of the
        frame beginning at timestep ``start`` (a multiple of pack)."""
        if start == self._cached_start:
            return self._cached_chunks
        data = self._data.get(encode_key((start,)))
        if data is None:
            raise StorageError(f"missing archive frame at t={start}")
        chunks, _ = unpack_chunks(data)
        if len(chunks) % 2:
            raise StorageError(f"bad archive frame at t={start}")
        self._cached_start = start
        self._cached_chunks = chunks
        return chunks

    def _cell_chunks(self, t: int) -> Tuple[bytes, bytes]:
        start = (t // self.pack) * self.pack
        chunks = self._frame(start)
        offset = 2 * (t - start)
        if offset + 1 >= len(chunks):
            raise StorageError(f"timestep {t} beyond frame at {start}")
        return chunks[offset], chunks[offset + 1]

    def marginal(self, t: int) -> SparseDistribution:
        self._check_time(t)
        return SparseDistribution.from_bytes(self._cell_chunks(t)[0])

    def cpt_into(self, t: int) -> CPT:
        self._check_time(t, lo=1)
        return CPT.from_bytes(self._cell_chunks(t)[1])

    def scan_cells(self, start=0, stop=None):
        start, stop = self._clamp(start, stop)
        for t in range(start, stop):
            marg_bytes, cpt_bytes = self._cell_chunks(t)
            marginal = SparseDistribution.from_bytes(marg_bytes)
            cpt = None if t == 0 else CPT.from_bytes(cpt_bytes)
            yield t, marginal, cpt


# ----------------------------------------------------------------------
# Opening
# ----------------------------------------------------------------------
def open_reader(
    env: StorageEnvironment,
    name: str,
    space: StateSpace,
    length: Optional[int] = None,
    layout: Optional[Union[Layout, str]] = None,
    pack: Optional[int] = None,
) -> StreamReader:
    """Open a reader over an archived stream.

    ``length``/``layout``/``pack`` normally come from the catalog; any
    left unspecified are recovered from the archive's metadata record.
    """
    layout = None if layout is None else Layout.parse(layout)
    if layout is None:
        if env.exists(data_tree_name(name)):
            meta = _read_meta(env.open_tree(data_tree_name(name)))
            if meta is None:
                raise CatalogError(f"stream {name!r} has no archive metadata")
            layout = Layout.parse(meta["layout"])
        elif env.exists(marg_tree_name(name)):
            layout = Layout.SEPARATED
        else:
            raise CatalogError(f"no archived stream named {name!r}")
    if layout is Layout.SEPARATED:
        marg = env.open_tree(marg_tree_name(name), create=False)
        if length is None:
            meta = _read_meta(marg)
            length = meta["length"] if meta else 0
        return SeparatedReader(
            marg, env.open_tree(cpt_tree_name(name), create=False),
            name, space, length,
        )
    data = env.open_tree(data_tree_name(name), create=False)
    if length is None or (layout is Layout.PACKED and pack is None):
        meta = _read_meta(data)
        if meta is None:
            raise CatalogError(f"stream {name!r} has no archive metadata")
        length = meta["length"] if length is None else length
        pack = meta.get("pack", DEFAULT_PACK) if pack is None else pack
    if layout is Layout.CELL:
        return CellReader(data, name, space, length)
    return PackedReader(data, name, space, length, pack or DEFAULT_PACK)
