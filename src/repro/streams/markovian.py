"""The Markovian stream model (§2).

A Markovian stream of length ``L`` is a sequence of per-timestep
marginal distributions ``m_0 .. m_{L-1}`` plus pairwise correlations:
one CPT per adjacent timestep pair, ``C_t : state(t) -> state(t+1)``.
Together they determine every interval's joint distribution under the
Markov assumption:

    P(x_s .. x_e) = m_s(x_s) * prod_{t=s..e-1} C_t(x_{t+1} | x_t)

The representation is *consistent* when applying each CPT to its source
marginal reproduces the next marginal — ``C_t.apply(m_t) == m_{t+1}``
— which is the contract inference layers (``repro.hmm``) guarantee and
the archive round-trips bit-exactly.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from ..errors import StreamError
from ..probability import CPT, SparseDistribution
from .schema import StateSpace

#: Tolerance for the consistency invariant check.
CONSISTENCY_TOL = 1e-6


class MarkovianStream:
    """An in-memory Markovian stream: marginals + pairwise CPTs.

    Parameters
    ----------
    name:
        Stream name (the archive key prefix).
    space:
        The state space marginals and CPTs are defined over.
    marginals:
        One :class:`SparseDistribution` per timestep.
    cpts:
        ``len(marginals) - 1`` CPTs; ``cpts[t]`` maps timestep ``t`` to
        ``t + 1``.
    validate:
        Check shape, normalization, and the consistency invariant at
        construction (pass ``False`` for streams built by construction,
        e.g. the smoother's output).
    """

    def __init__(
        self,
        name: str,
        space: StateSpace,
        marginals: Sequence[SparseDistribution],
        cpts: Sequence[CPT],
        validate: bool = True,
        tol: float = CONSISTENCY_TOL,
    ) -> None:
        self.name = name
        self.space = space
        self.marginals: List[SparseDistribution] = list(marginals)
        self.cpts: List[CPT] = list(cpts)
        if not self.marginals:
            raise StreamError("a stream needs at least one timestep")
        if len(self.cpts) != len(self.marginals) - 1:
            raise StreamError(
                f"{len(self.marginals)} marginals need "
                f"{len(self.marginals) - 1} CPTs, got {len(self.cpts)}"
            )
        if validate:
            self.validate(tol=tol)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.marginals)

    @property
    def length(self) -> int:
        """Timestep count — mirrors :attr:`StreamReader.length` so code
        can take either a stream or a reader."""
        return len(self.marginals)

    def marginal(self, t: int) -> SparseDistribution:
        if not 0 <= t < len(self.marginals):
            raise StreamError(f"timestep {t} out of range")
        return self.marginals[t]

    def cpt(self, t: int) -> CPT:
        """The CPT from timestep ``t`` to ``t + 1``."""
        if not 0 <= t < len(self.cpts):
            raise StreamError(f"no CPT out of timestep {t}")
        return self.cpts[t]

    def cpt_into(self, t: int) -> CPT:
        """The CPT from timestep ``t - 1`` into ``t`` (t >= 1) — the
        orientation the archive stores and Reg consumes."""
        if t < 1:
            raise StreamError("no CPT into timestep 0")
        return self.cpt(t - 1)

    def iter_cells(self) -> Iterator[Tuple[int, SparseDistribution, object]]:
        """Yield ``(t, marginal_t, cpt_into_t)`` with ``cpt_into_t`` None
        at ``t == 0`` — one archive cell per timestep."""
        for t, marginal in enumerate(self.marginals):
            yield t, marginal, (None if t == 0 else self.cpts[t - 1])

    # ------------------------------------------------------------------
    def validate(self, tol: float = CONSISTENCY_TOL) -> None:
        """Raise :class:`StreamError` unless every marginal is normalized
        over the space and the consistency invariant holds."""
        n = len(self.space)
        for t, marginal in enumerate(self.marginals):
            if any(not 0 <= s < n for s in marginal.support()):
                raise StreamError(
                    f"marginal at t={t} has states outside the space"
                )
            if abs(marginal.total_mass - 1.0) > tol:
                raise StreamError(
                    f"marginal at t={t} has mass {marginal.total_mass:.9f}"
                )
        for t, cpt in enumerate(self.cpts):
            pushed = cpt.apply(self.marginals[t])
            if not pushed.approx_equal(self.marginals[t + 1], tol=tol):
                raise StreamError(
                    f"inconsistent stream: C_{t}.apply(m_{t}) != m_{t + 1}"
                )

    # ------------------------------------------------------------------
    def interval_probability(
        self, start: int, state_sets: Sequence
    ) -> float:
        """P(x_start in S_0, x_start+1 in S_1, ...) for consecutive
        state sets — the joint probability of one concrete event
        pattern, evaluated by masked propagation (§2)."""
        sets = [frozenset(s) for s in state_sets]
        if not sets:
            return 0.0
        if start < 0 or start + len(sets) > len(self.marginals):
            raise StreamError(
                f"interval [{start}, {start + len(sets)}) out of range"
            )
        current = self.marginals[start].restrict_to(sets[0])
        for offset, states in enumerate(sets[1:], start=1):
            if not current:
                return 0.0
            cpt = self.cpts[start + offset - 1]
            current = cpt.apply(current).restrict_to(states)
        return current.total_mass

    def __repr__(self) -> str:
        return (
            f"MarkovianStream({self.name!r}, length={len(self)}, "
            f"states={len(self.space)})"
        )
