"""The database catalog: stream and dimension-table metadata.

One reserved tree (``__catalog``) per database maps stream names to
their :class:`StreamMeta` (length, layout, state space, built indexes)
and dimension-table names to their value mappings (§3.4.1). Everything
is JSON inside the tree, keyed through the order-preserving key codec
so ``list_streams`` is a prefix scan.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import CatalogError
from ..storage import StorageEnvironment, encode_key, prefix_upper_bound
from .archive import DEFAULT_PACK, Layout
from .schema import StateSpace

CATALOG_TREE = "__catalog"


@dataclass
class StreamMeta:
    """Catalog entry for one archived stream."""

    name: str
    length: int
    layout: Layout
    space: StateSpace
    pack: int = DEFAULT_PACK
    #: Built indexes: ``"btc:location"`` / ``"btp:location"`` /
    #: ``"mc"`` / ``"mcc:<signature>"`` -> parameters.
    indexes: Dict[str, Dict] = field(default_factory=dict)

    def to_json(self) -> bytes:
        return json.dumps({
            "name": self.name,
            "length": self.length,
            "layout": self.layout.value,
            "space": self.space.to_dict(),
            "pack": self.pack,
            "indexes": self.indexes,
        }).encode("utf-8")

    @classmethod
    def from_json(cls, data: bytes) -> "StreamMeta":
        obj = json.loads(data.decode("utf-8"))
        return cls(
            name=obj["name"],
            length=obj["length"],
            layout=Layout.parse(obj["layout"]),
            space=StateSpace.from_dict(obj["space"]),
            pack=obj.get("pack", DEFAULT_PACK),
            indexes=obj.get("indexes", {}),
        )


class Catalog:
    """Stream and dimension metadata of one database directory."""

    def __init__(self, env: StorageEnvironment) -> None:
        self._tree = env.open_tree(CATALOG_TREE)

    # -- keys ----------------------------------------------------------
    @staticmethod
    def _stream_key(name: str) -> bytes:
        return encode_key(("stream", name))

    @staticmethod
    def _dim_key(name: str) -> bytes:
        return encode_key(("dim", name))

    def _names_with_prefix(self, kind: str) -> List[str]:
        prefix = encode_key((kind,))
        out = []
        for key, _ in self._tree.range_items(prefix,
                                             prefix_upper_bound(prefix)):
            from ..storage.keyenc import decode_key

            out.append(decode_key(key)[1])
        return sorted(out)

    # -- streams -------------------------------------------------------
    def has_stream(self, name: str) -> bool:
        return self._tree.get(self._stream_key(name)) is not None

    def register_stream(self, meta: StreamMeta) -> None:
        if self.has_stream(meta.name):
            raise CatalogError(f"stream {meta.name!r} is already registered")
        self._tree.put(self._stream_key(meta.name), meta.to_json())
        self._tree.flush()

    def update_stream(self, meta: StreamMeta) -> None:
        if not self.has_stream(meta.name):
            raise CatalogError(f"unknown stream {meta.name!r}")
        self._tree.put(self._stream_key(meta.name), meta.to_json())
        self._tree.flush()

    def stream_meta(self, name: str) -> StreamMeta:
        data = self._tree.get(self._stream_key(name))
        if data is None:
            raise CatalogError(f"unknown stream {name!r}")
        return StreamMeta.from_json(data)

    def list_streams(self) -> List[str]:
        return self._names_with_prefix("stream")

    def drop_stream(self, name: str) -> None:
        if not self.has_stream(name):
            raise CatalogError(f"unknown stream {name!r}")
        self._tree.delete(self._stream_key(name))
        self._tree.flush()

    # -- dimension tables ----------------------------------------------
    def register_dimension(self, name: str, mapping: Dict,
                           replace: bool = False) -> None:
        if not replace and self._tree.get(self._dim_key(name)) is not None:
            raise CatalogError(
                f"dimension table {name!r} is already registered"
            )
        # Pairs, not an object: JSON objects force string keys.
        payload = json.dumps(
            [[k, v] for k, v in mapping.items()]
        ).encode("utf-8")
        self._tree.put(self._dim_key(name), payload)
        self._tree.flush()

    def dimension(self, name: str) -> Dict:
        data = self._tree.get(self._dim_key(name))
        if data is None:
            raise CatalogError(f"unknown dimension table {name!r}")
        return {k if not isinstance(k, list) else tuple(k): v
                for k, v in json.loads(data.decode("utf-8"))}

    def list_dimensions(self) -> List[str]:
        return self._names_with_prefix("dim")

    def drop_dimension(self, name: str) -> None:
        if self._tree.get(self._dim_key(name)) is None:
            raise CatalogError(f"unknown dimension table {name!r}")
        self._tree.delete(self._dim_key(name))
        self._tree.flush()
