"""Synthetic Markovian streams with controlled data density (§4.1.1).

The paper's scaling experiments concatenate fixed-length stream
*snippets*: a fraction ``density`` of snippets is *relevant* to the
benchmark query (its timesteps place probability mass on the query's
predicates) and the rest wander through background states the query
never mentions. Of the relevant snippets, ``match_rate`` contain a
strongly-correlated true match (enter the door, then the room) while
the remainder are near-misses (door and room mass present, but
anti-correlated — the person walks past). That gives independent
control of how often the index must *look* and how often a candidate
is *real*, without needing the full RFID simulator.

Streams are built forward — each marginal is the previous one pushed
through the step's CPT — so the consistency invariant holds exactly by
construction.

World model (single ``location`` attribute):

* ``C0 .. C{n-1}`` — background corridor cells,
* ``Door``       — the doorway of the monitored room,
* ``Room``       — the monitored room itself.

The benchmark query is :data:`ENTERED_ROOM_QUERY`:
``location=Door -> location=Room``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..probability import CPT, SparseDistribution
from .markovian import MarkovianStream
from .schema import StateSpace, single_attribute_space

#: The standard benchmark query over synthetic streams.
ENTERED_ROOM_QUERY = "location=Door -> location=Room"

DEFAULT_SNIPPET_LEN = 30
DEFAULT_NUM_CELLS = 8


def synthetic_space(num_cells: int = DEFAULT_NUM_CELLS) -> StateSpace:
    """The synthetic world's state space."""
    values = [f"C{i}" for i in range(num_cells)] + ["Door", "Room"]
    return single_attribute_space("location", values)


# ----------------------------------------------------------------------
# Step templates
# ----------------------------------------------------------------------
def _row_toward(rng: random.Random, targets: List[Tuple[int, float]],
                jitter: float = 0.05) -> SparseDistribution:
    """A stochastic row over ``targets`` with seeded probability jitter
    (so no two snippets are bit-identical)."""
    weights = [max(1e-3, w + rng.uniform(-jitter, jitter))
               for _, w in targets]
    total = sum(weights)
    return SparseDistribution(
        {s: w / total for (s, _), w in zip(targets, weights)}
    )


def _step(current: SparseDistribution,
          row_of: Dict[int, SparseDistribution],
          default_row: SparseDistribution) -> Tuple[CPT, SparseDistribution]:
    """Build the CPT for one step (a row for every current support
    state) and push the marginal through it."""
    cpt = CPT({x: row_of.get(x, default_row) for x in current.support()})
    return cpt, cpt.apply(current)


class _World:
    def __init__(self, space: StateSpace, rng: random.Random) -> None:
        self.space = space
        self.rng = rng
        loc = space.vocabulary("location")
        self.cells = [space.state_id((v,)) for v in loc.values()
                      if str(v).startswith("C")]
        self.door = space.state_id(("Door",))
        self.room = space.state_id(("Room",))

    def wander_row(self, around: int) -> SparseDistribution:
        """Drift among background cells near cell-index ``around``."""
        n = len(self.cells)
        return _row_toward(self.rng, [
            (self.cells[around % n], 0.55),
            (self.cells[(around + 1) % n], 0.30),
            (self.cells[(around - 1) % n], 0.15),
        ])


def _irrelevant_snippet(world: _World, length: int,
                        current: SparseDistribution,
                        cpts: List[CPT],
                        marginals: List[SparseDistribution]) -> \
        SparseDistribution:
    """Background wandering: zero mass on Door/Room at every step."""
    here = world.rng.randrange(len(world.cells))
    for _ in range(length):
        row = world.wander_row(here)
        cpt, current = _step(current, {}, row)
        cpts.append(cpt)
        marginals.append(current)
        here += world.rng.choice((-1, 0, 1))
    return current


def _relevant_snippet(world: _World, length: int, match: bool,
                      current: SparseDistribution,
                      cpts: List[CPT],
                      marginals: List[SparseDistribution]) -> \
        SparseDistribution:
    """Alternate door-approach / room steps so (nearly) every timestep
    has Door or Room mass. ``match`` controls whether the Door -> Room
    transition is strongly correlated (a true sighting) or
    anti-correlated (a walk-past near-miss)."""
    rng = world.rng
    door, room = world.door, world.room
    near = world.cells[rng.randrange(len(world.cells))]
    for step in range(length):
        if step % 2 == 0:
            # Move toward the door, wherever we are.
            row = _row_toward(rng, [(door, 0.70), (near, 0.30)])
            cpt, current = _step(current, {}, row)
        else:
            # From the door: enter the room (match) or walk past
            # (near-miss, room mass arrives only via the uncorrelated
            # background row).
            if match:
                door_row = _row_toward(rng, [(room, 0.85), (near, 0.15)])
                other_row = _row_toward(rng, [(near, 0.85), (room, 0.15)])
            else:
                door_row = _row_toward(rng, [(near, 0.93), (room, 0.07)])
                other_row = _row_toward(rng, [(near, 0.80), (room, 0.20)])
            cpt, current = _step(current, {door: door_row}, other_row)
        cpts.append(cpt)
        marginals.append(current)
    return current


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------
def synthetic_stream(
    name: str = "synthetic",
    num_snippets: int = 50,
    snippet_len: int = DEFAULT_SNIPPET_LEN,
    density: float = 0.1,
    match_rate: float = 1.0,
    seed: int = 7,
    num_cells: int = DEFAULT_NUM_CELLS,
    space: Optional[StateSpace] = None,
) -> MarkovianStream:
    """Concatenate ``num_snippets`` seeded snippets of ``snippet_len``
    timesteps each; ``density`` of them are relevant to
    :data:`ENTERED_ROOM_QUERY` and ``match_rate`` of *those* contain a
    true correlated match. Deterministic for a given seed."""
    if space is None:
        space = synthetic_space(num_cells)
    rng = random.Random(seed)
    world = _World(space, rng)

    num_relevant = round(density * num_snippets)
    num_matches = round(match_rate * num_relevant)
    # Spread relevant snippets deterministically across the stream.
    relevant_at = set(rng.sample(range(num_snippets),
                                 num_relevant)) if num_relevant else set()
    match_at = set(rng.sample(sorted(relevant_at),
                              num_matches)) if num_matches else set()

    start = SparseDistribution.point(world.cells[0])
    marginals: List[SparseDistribution] = [start]
    cpts: List[CPT] = []
    current = start
    first = True
    for snippet in range(num_snippets):
        length = snippet_len - 1 if first else snippet_len
        first = False
        if snippet in relevant_at:
            current = _relevant_snippet(world, length,
                                        snippet in match_at,
                                        current, cpts, marginals)
        else:
            current = _irrelevant_snippet(world, length, current,
                                          cpts, marginals)
    stream = MarkovianStream(name, space, marginals, cpts, validate=False)
    return stream


def routine_stream(
    name: str = "routine",
    num_snippets: int = 40,
    snippet_len: int = DEFAULT_SNIPPET_LEN,
    near_misses: int = 3,
    seed: int = 11,
    num_cells: int = DEFAULT_NUM_CELLS,
) -> MarkovianStream:
    """A Fig 4-style signal stream: exactly one true room entry among a
    handful of walk-past near-misses in a long background routine — the
    workload whose probability signal should show one dominant peak."""
    space = synthetic_space(num_cells)
    rng = random.Random(seed)
    world = _World(space, rng)

    if num_snippets < 3:
        raise ValueError("routine_stream needs num_snippets >= 3")
    # Interior slots only (the first and last snippets stay background);
    # clamp the near-miss count to what fits.
    near_misses = max(0, min(near_misses, num_snippets - 3))
    slots = rng.sample(range(1, num_snippets - 1), near_misses + 1)
    match_slot = slots[0]
    near_slots = set(slots[1:])

    start = SparseDistribution.point(world.cells[0])
    marginals: List[SparseDistribution] = [start]
    cpts: List[CPT] = []
    current = start
    first = True
    for snippet in range(num_snippets):
        length = snippet_len - 1 if first else snippet_len
        first = False
        if snippet == match_slot or snippet in near_slots:
            # One short relevant burst inside an otherwise-background
            # snippet, so the signal stays sparse.
            burst = 4
            current = _irrelevant_snippet(world, length - burst, current,
                                          cpts, marginals)
            current = _relevant_snippet(world, burst,
                                        snippet == match_slot,
                                        current, cpts, marginals)
        else:
            current = _irrelevant_snippet(world, length, current,
                                          cpts, marginals)
    return MarkovianStream(name, space, marginals, cpts, validate=False)
