"""Stream schemas: the discrete state space of a Markovian stream.

A Markovian stream's per-timestep random variable ranges over a finite
set of *states*; each state assigns one value to each stream attribute
(§2: the RFID streams have a single ``location`` attribute, but the
model — and the secondary indexes — are defined over arbitrary
attribute tuples). The :class:`StateSpace` fixes the enumeration: state
ids are dense integers ``0..n-1``, which is what the probability layer
(:class:`~repro.probability.SparseDistribution`, sparse CPTs) and the
order-preserving index keys are built on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..errors import StreamError


class Vocabulary:
    """The ordered set of values one attribute takes, with dense integer
    codes (the ``value_code`` component of BT_C / BT_P search keys).

    Codes follow sorted value order (by ``str``), so they are stable
    across sessions for a given value set.
    """

    def __init__(self, values: Iterable) -> None:
        self._values: List = sorted(set(values), key=str)
        self._codes: Dict[object, int] = {
            v: i for i, v in enumerate(self._values)
        }

    def values(self) -> List:
        return list(self._values)

    def code(self, value) -> int:
        try:
            return self._codes[value]
        except KeyError:
            raise StreamError(f"value {value!r} not in vocabulary") from None

    def __contains__(self, value) -> bool:
        return value in self._codes

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"Vocabulary({self._values!r})"


class StateSpace:
    """A fixed enumeration of the joint states of a stream's attributes.

    Parameters
    ----------
    attributes:
        Attribute names, e.g. ``("location",)`` or
        ``("location", "activity")``.
    states:
        One value tuple per state (arity must match ``attributes``);
        the tuple's position is the state id.
    """

    def __init__(
        self,
        attributes: Sequence[str],
        states: Sequence[Tuple],
    ) -> None:
        self.attributes: Tuple[str, ...] = tuple(attributes)
        if not self.attributes:
            raise StreamError("a state space needs at least one attribute")
        normalized: List[Tuple] = []
        for values in states:
            tup = tuple(values) if isinstance(values, (tuple, list)) \
                else (values,)
            if len(tup) != len(self.attributes):
                raise StreamError(
                    f"state {values!r} has arity {len(tup)}, expected "
                    f"{len(self.attributes)}"
                )
            normalized.append(tup)
        if len(set(normalized)) != len(normalized):
            raise StreamError("duplicate states in state space")
        if not normalized:
            raise StreamError("a state space needs at least one state")
        self._states: List[Tuple] = normalized
        self._ids: Dict[Tuple, int] = {s: i for i, s in enumerate(normalized)}
        self._vocabularies: Dict[str, Vocabulary] = {}
        self._by_value: Dict[Tuple[str, object], FrozenSet[int]] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._states)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, StateSpace)
            and self.attributes == other.attributes
            and self._states == other._states
        )

    def __hash__(self) -> int:
        return hash((self.attributes, tuple(self._states)))

    def state_id(self, values) -> int:
        """The id of one state, given its value tuple (or, for a
        single-attribute space, the bare value)."""
        tup = tuple(values) if isinstance(values, (tuple, list)) else (values,)
        try:
            return self._ids[tup]
        except KeyError:
            raise StreamError(f"no such state: {values!r}") from None

    def state_values(self, state_id: int) -> Tuple:
        try:
            return self._states[state_id]
        except IndexError:
            raise StreamError(f"state id {state_id} out of range") from None

    def states(self) -> List[Tuple]:
        return list(self._states)

    def _attr_pos(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise StreamError(f"no such attribute: {attribute!r}") from None

    def attribute_value(self, state_id: int, attribute: str):
        """One attribute's value in one state."""
        return self.state_values(state_id)[self._attr_pos(attribute)]

    def vocabulary(self, attribute: str) -> Vocabulary:
        """All values ``attribute`` takes across the space (cached)."""
        vocab = self._vocabularies.get(attribute)
        if vocab is None:
            pos = self._attr_pos(attribute)
            vocab = Vocabulary(s[pos] for s in self._states)
            self._vocabularies[attribute] = vocab
        return vocab

    def states_with_value(self, attribute: str, value) -> FrozenSet[int]:
        """The state ids where ``attribute == value`` (cached; empty
        frozenset for values outside the vocabulary)."""
        key = (attribute, value)
        cached = self._by_value.get(key)
        if cached is None:
            pos = self._attr_pos(attribute)
            cached = frozenset(
                i for i, s in enumerate(self._states) if s[pos] == value
            )
            self._by_value[key] = cached
        return cached

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "attributes": list(self.attributes),
            "states": [list(s) for s in self._states],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "StateSpace":
        return cls(data["attributes"], [tuple(s) for s in data["states"]])

    def __repr__(self) -> str:
        return (
            f"StateSpace(attributes={self.attributes!r}, "
            f"states={len(self._states)})"
        )


def single_attribute_space(attribute: str, values: Sequence) -> StateSpace:
    """The common case: one attribute, one state per value, state ids in
    the order given (the RFID streams' ``location`` space)."""
    return StateSpace((attribute,), [(v,) for v in values])
