"""JSON interchange for Markovian streams (``repro import``/``export``).

The format is self-describing — name, state space, marginals, CPTs —
with probabilities as plain floats and sparse structures as pair lists
(JSON objects would force string keys)."""

from __future__ import annotations

import json
from typing import IO, Union

from ..probability import CPT, SparseDistribution
from .markovian import MarkovianStream
from .schema import StateSpace

FORMAT_VERSION = 1


def stream_to_dict(stream: MarkovianStream) -> dict:
    return {
        "version": FORMAT_VERSION,
        "name": stream.name,
        "space": stream.space.to_dict(),
        "marginals": [
            sorted(m.items()) for m in stream.marginals
        ],
        "cpts": [
            [[src, sorted(row.items())] for src, row in sorted(c.rows())]
            for c in stream.cpts
        ],
    }


def stream_from_dict(data: dict) -> MarkovianStream:
    space = StateSpace.from_dict(data["space"])
    marginals = [
        SparseDistribution({int(s): p for s, p in pairs})
        for pairs in data["marginals"]
    ]
    cpts = [
        CPT({
            int(src): SparseDistribution({int(d): p for d, p in row})
            for src, row in rows
        })
        for rows in data["cpts"]
    ]
    return MarkovianStream(data["name"], space, marginals, cpts,
                           validate=False)


def dump_stream(stream: MarkovianStream, dest: Union[str, IO]) -> None:
    """Write a stream as JSON to a path or open text file."""
    if isinstance(dest, str):
        with open(dest, "w", encoding="utf-8") as fh:
            json.dump(stream_to_dict(stream), fh)
    else:
        json.dump(stream_to_dict(stream), dest)


def load_stream(source: Union[str, IO]) -> MarkovianStream:
    """Read a stream from a JSON path or open text file."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    else:
        data = json.load(source)
    return stream_from_dict(data)
