"""Markovian streams: schema, in-memory model, on-disk archive, catalog,
and synthetic workload generation (§2, §3.4, §4.1.1)."""

from .archive import (
    DEFAULT_PACK,
    Layout,
    StreamReader,
    open_reader,
    write_stream,
)
from .catalog import Catalog, StreamMeta
from .markovian import CONSISTENCY_TOL, MarkovianStream
from .schema import StateSpace, Vocabulary, single_attribute_space
from .serde import dump_stream, load_stream
from .synthetic import (
    ENTERED_ROOM_QUERY,
    routine_stream,
    synthetic_space,
    synthetic_stream,
)

__all__ = [
    "CONSISTENCY_TOL",
    "Catalog",
    "DEFAULT_PACK",
    "ENTERED_ROOM_QUERY",
    "Layout",
    "MarkovianStream",
    "StateSpace",
    "StreamMeta",
    "StreamReader",
    "Vocabulary",
    "dump_stream",
    "load_stream",
    "open_reader",
    "routine_stream",
    "single_attribute_space",
    "synthetic_space",
    "synthetic_stream",
    "write_stream",
]
