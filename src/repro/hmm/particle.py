"""Sample-based (particle) inference over HMMs.

This is the class of algorithms the paper uses to illustrate Markovian
stream generation (Fig 2): *samples* — guesses about the hidden state —
move through the state space at each timestep and congregate in regions
consistent with the sensor readings; marginals are sample counts divided
by the number of samples.

:func:`particle_smooth` runs a bootstrap particle filter with systematic
resampling, then traces each surviving particle's genealogy backward to
obtain equally-weighted smoothed trajectories. Marginals are per-timestep
trajectory counts; CPTs are per-timestep transition counts. (Genealogy
smoothing degenerates for timesteps far in the past relative to the
number of particles — the well-known path-degeneracy effect — which is
why the exact :func:`~repro.hmm.forward_backward.smooth` is the default
stream generator in this repo; the particle path exists to reproduce the
paper's sample-based narrative and for cross-validation in tests.)
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import InferenceError
from ..probability import CPT, SparseDistribution
from ..streams.markovian import MarkovianStream
from ..streams.schema import StateSpace
from .model import HiddenMarkovModel, _sample


def particle_filter(
    hmm: HiddenMarkovModel,
    observations: Sequence,
    num_particles: int = 500,
    rng: Optional[random.Random] = None,
    on_impossible: str = "skip",
) -> Tuple[List[List[int]], List[List[int]]]:
    """Run a bootstrap particle filter.

    Returns ``(particles, ancestors)`` where ``particles[t]`` is the list
    of particle states after resampling at timestep ``t`` and
    ``ancestors[t][i]`` is the index at ``t-1`` of particle ``i``'s
    parent (``ancestors[0]`` is all ``-1``).
    """
    if num_particles <= 0:
        raise InferenceError("num_particles must be positive")
    if not observations:
        raise InferenceError("need at least one observation")
    rng = rng if rng is not None else random.Random(0)

    particles: List[List[int]] = []
    ancestors: List[List[int]] = []

    states = [_sample(hmm.initial, rng) for _ in range(num_particles)]
    weights = _weight(hmm, states, observations[0], on_impossible)
    idx = _systematic_resample(weights, rng)
    particles.append([states[i] for i in idx])
    ancestors.append([-1] * num_particles)

    for t in range(1, len(observations)):
        prev = particles[-1]
        proposed = []
        for state in prev:
            row = hmm.transition.row(state)
            if not row:
                raise InferenceError(f"state {state} has no outgoing transitions")
            proposed.append(_sample(row, rng))
        weights = _weight(hmm, proposed, observations[t], on_impossible)
        idx = _systematic_resample(weights, rng)
        particles.append([proposed[i] for i in idx])
        ancestors.append(list(idx))
    return particles, ancestors


def particle_smooth(
    hmm: HiddenMarkovModel,
    observations: Sequence,
    space: StateSpace,
    name: str = "stream",
    num_particles: int = 500,
    rng: Optional[random.Random] = None,
    on_impossible: str = "skip",
) -> MarkovianStream:
    """Smooth observations into a Markovian stream via particle genealogy."""
    particles, ancestors = particle_filter(
        hmm, observations, num_particles=num_particles, rng=rng,
        on_impossible=on_impossible,
    )
    T = len(particles)
    n = len(particles[0])

    # Trace each final particle's ancestry into a full trajectory.
    trajectories = [[0] * T for _ in range(n)]
    current = list(range(n))
    for t in range(T - 1, -1, -1):
        for i in range(n):
            trajectories[i][t] = particles[t][current[i]]
        if t > 0:
            current = [ancestors[t][c] for c in current]

    # Count marginals and transitions.
    marginals: List[SparseDistribution] = []
    for t in range(T):
        counts: Dict[int, int] = {}
        for traj in trajectories:
            counts[traj[t]] = counts.get(traj[t], 0) + 1
        marginals.append(SparseDistribution.from_counts(counts))

    cpts: List[CPT] = []
    for t in range(T - 1):
        pair_counts: Dict[int, Dict[int, int]] = {}
        for traj in trajectories:
            row = pair_counts.setdefault(traj[t], {})
            row[traj[t + 1]] = row.get(traj[t + 1], 0) + 1
        rows = {
            src: {dst: c / sum(row.values()) for dst, c in row.items()}
            for src, row in pair_counts.items()
        }
        cpts.append(CPT(rows))

    return MarkovianStream(name, space, marginals, cpts, validate=False)


def _weight(
    hmm: HiddenMarkovModel, states: Sequence[int], observation, on_impossible: str
) -> List[float]:
    like = hmm.evidence_vector(observation)
    if like is None:
        return [1.0] * len(states)
    weights = [like.prob(s) for s in states]
    if sum(weights) <= 0.0:
        if on_impossible == "raise":
            raise InferenceError("all particles have zero likelihood")
        return [1.0] * len(states)
    return weights


def _systematic_resample(weights: Sequence[float], rng: random.Random) -> List[int]:
    """Systematic resampling: low-variance, O(n)."""
    n = len(weights)
    total = sum(weights)
    if total <= 0.0:
        raise InferenceError("cannot resample zero-mass weights")
    step = total / n
    u = rng.random() * step
    idx: List[int] = []
    acc = 0.0
    j = 0
    for i in range(n):
        acc += weights[i]
        while j < n and u + j * step < acc:
            idx.append(i)
            j += 1
    while len(idx) < n:  # numerical slack
        idx.append(n - 1)
    return idx
