"""Hidden Markov Model definition (§2.1, [Rabiner 29]).

An HMM infers a sequence of hidden states (e.g., Bob's locations) from a
sequence of observations (e.g., RFID tag reads). It combines:

- *physical constraints* — the sparse transition CPT only connects
  adjacent locations (you cannot walk through walls);
- *statistical likelihoods* — the emission model scores each observation
  against each candidate state.

Emission models are pluggable: the RFID layer supplies one driven by
antenna geometry; tests use :class:`TabularEmission`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Protocol, Sequence

from ..errors import InferenceError
from ..probability import CPT, SparseDistribution


class EmissionModel(Protocol):
    """Scores observations against hidden states."""

    def likelihood(self, observation) -> Mapping[int, float]:
        """Per-state likelihood ``p(observation | state)``.

        States omitted from the mapping have zero likelihood, *except*
        that an empty mapping means "uninformative observation" (all
        states equally likely) — the convention used for missing sensor
        readings.
        """
        ...


class TabularEmission:
    """Emission model backed by an explicit table.

    Parameters
    ----------
    table:
        ``observation_symbol -> {state_id -> likelihood}``.
    default_uniform:
        If true, unknown symbols are treated as uninformative rather than
        raising.
    """

    def __init__(
        self,
        table: Mapping[Hashable, Mapping[int, float]],
        default_uniform: bool = False,
    ) -> None:
        self._table: Dict[Hashable, Dict[int, float]] = {
            obs: dict(row) for obs, row in table.items()
        }
        self._default_uniform = default_uniform

    def likelihood(self, observation) -> Mapping[int, float]:
        row = self._table.get(observation)
        if row is None:
            if self._default_uniform or observation is None:
                return {}
            raise InferenceError(f"unknown observation symbol: {observation!r}")
        return row


class HiddenMarkovModel:
    """A discrete HMM over integer state ids.

    Parameters
    ----------
    num_states:
        Size of the hidden state space (ids ``0 .. num_states-1``).
    initial:
        Prior distribution over the initial hidden state.
    transition:
        Sparse transition CPT; every state reachable by ``initial`` or a
        transition must have a row.
    emission:
        An :class:`EmissionModel`.
    """

    def __init__(
        self,
        num_states: int,
        initial: SparseDistribution,
        transition: CPT,
        emission: EmissionModel,
    ) -> None:
        if num_states <= 0:
            raise InferenceError("num_states must be positive")
        if not initial.is_normalized(tol=1e-6):
            raise InferenceError(
                f"initial distribution mass {initial.total_mass:.6f} != 1"
            )
        for state in initial.support():
            if not 0 <= state < num_states:
                raise InferenceError(f"initial state {state} out of range")
        if not transition.is_stochastic(tol=1e-6):
            raise InferenceError("transition CPT rows must each sum to 1")
        self.num_states = num_states
        self.initial = initial
        self.transition = transition
        self.emission = emission

    # ------------------------------------------------------------------
    def evidence_vector(self, observation) -> Optional[SparseDistribution]:
        """Likelihoods as a sparse vector, or ``None`` if uninformative."""
        row = self.emission.likelihood(observation)
        if not row:
            return None
        vec = SparseDistribution(row)
        if not vec:
            return None
        return vec

    def simulate(self, length: int, rng) -> Sequence[int]:
        """Sample a hidden state trajectory of the given length."""
        if length <= 0:
            raise InferenceError("length must be positive")
        path = [_sample(self.initial, rng)]
        for _ in range(length - 1):
            row = self.transition.row(path[-1])
            if not row:
                raise InferenceError(f"state {path[-1]} has no outgoing transitions")
            path.append(_sample(row, rng))
        return path


def _sample(dist: SparseDistribution, rng) -> int:
    """Draw one state from a sparse distribution using ``rng.random()``."""
    u = rng.random() * dist.total_mass
    acc = 0.0
    last = None
    for state, p in dist.items():
        acc += p
        last = state
        if u <= acc:
            return state
    if last is None:
        raise InferenceError("cannot sample from an empty distribution")
    return last
