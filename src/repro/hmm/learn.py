"""HMM parameter learning: sequence likelihood and Baum-Welch.

The paper treats HMM construction as orthogonal (§2.1, citing Rabiner's
tutorial), but a deployment needs to *fit* the model: transition
probabilities from observed movement patterns, emission probabilities
from sensor characteristics. This module provides the standard tools:

- :func:`log_likelihood` — the forward algorithm's normalizer:
  ``log p(o_1..o_T)`` under a model (model comparison, convergence
  monitoring);
- :func:`baum_welch` — expectation-maximization over one or more
  observation sequences, re-estimating the initial distribution, the
  transition CPT (restricted to the existing support — physical
  constraints like walls are never invented away), and optionally a
  :class:`~repro.hmm.model.TabularEmission` table.

Likelihoods are computed with per-step rescaling (no underflow on long
sequences); EM is guaranteed not to decrease the data likelihood, which
the tests assert.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..errors import InferenceError
from ..probability import CPT, SparseDistribution
from .model import EmissionModel, HiddenMarkovModel, TabularEmission


def _forward_scaled(
    hmm: HiddenMarkovModel, observations: Sequence
) -> Tuple[List[SparseDistribution], float]:
    """Scaled forward pass; returns (filtered alphas, log-likelihood)."""
    if not observations:
        raise InferenceError("need at least one observation")
    alphas: List[SparseDistribution] = []
    log_like = 0.0
    current = hmm.initial
    for t, obs in enumerate(observations):
        if t > 0:
            current = hmm.transition.apply(alphas[-1])
        like = hmm.evidence_vector(obs)
        if like is None:
            weighted = current
        else:
            weighted = SparseDistribution(
                {s: p * like.prob(s) for s, p in current.items()
                 if like.prob(s) > 0.0}
            )
        mass = weighted.total_mass
        if mass <= 0.0:
            raise InferenceError(f"impossible evidence at timestep {t}")
        log_like += math.log(mass)
        alphas.append(weighted.scale(1.0 / mass))
    return alphas, log_like


def log_likelihood(hmm: HiddenMarkovModel, observations: Sequence) -> float:
    """``log p(observations)`` under the model (forward algorithm)."""
    return _forward_scaled(hmm, observations)[1]


def baum_welch(
    hmm: HiddenMarkovModel,
    sequences: Sequence[Sequence],
    iterations: int = 10,
    learn_emissions: bool = False,
    pseudocount: float = 1e-6,
    tol: float = 1e-6,
) -> Tuple[HiddenMarkovModel, List[float]]:
    """Fit HMM parameters to observation sequences by EM.

    Parameters
    ----------
    hmm:
        The starting model. Transition re-estimation is restricted to
        the support of its transition CPT (zero entries stay zero — the
        floorplan's physical constraints are data, not parameters).
    sequences:
        One or more observation sequences.
    iterations:
        Maximum EM iterations.
    learn_emissions:
        Also re-estimate the emission table. Requires the model's
        emission to be a :class:`TabularEmission`; observations must be
        hashable symbols (``None`` entries are treated as missing and do
        not contribute to emission counts).
    pseudocount:
        Dirichlet smoothing added to every permitted count, keeping the
        support intact when an arc is unobserved.
    tol:
        Stop early when the total log-likelihood improves by less.

    Returns
    -------
    (fitted model, per-iteration total log-likelihoods) — the list has
    one entry per completed iteration and is non-decreasing (within
    floating-point tolerance).
    """
    if not sequences or any(len(s) == 0 for s in sequences):
        raise InferenceError("need non-empty observation sequences")
    if iterations < 1:
        raise InferenceError("iterations must be >= 1")
    if learn_emissions and not isinstance(hmm.emission, TabularEmission):
        raise InferenceError(
            "learn_emissions requires a TabularEmission model"
        )

    current = hmm
    history: List[float] = []
    for _ in range(iterations):
        total_ll, current = _em_step(current, sequences, learn_emissions,
                                     pseudocount)
        if history and total_ll < history[-1] - 1e-9:
            # Should not happen (EM guarantee); guard against numerics.
            break
        improved = not history or total_ll - history[-1] > tol
        history.append(total_ll)
        if not improved and len(history) > 1:
            break
    return current, history


def _em_step(
    hmm: HiddenMarkovModel,
    sequences: Sequence[Sequence],
    learn_emissions: bool,
    pseudocount: float,
) -> Tuple[float, HiddenMarkovModel]:
    """One E+M step; returns (log-likelihood of the *input* model,
    re-estimated model)."""
    init_counts: Dict[int, float] = {}
    trans_counts: Dict[int, Dict[int, float]] = {}
    emit_counts: Dict[Hashable, Dict[int, float]] = {}
    total_ll = 0.0

    for observations in sequences:
        alphas, ll = _forward_scaled(hmm, observations)
        total_ll += ll
        T = len(observations)
        likes = [hmm.evidence_vector(o) for o in observations]

        # Scaled backward pass over the filtered supports.
        betas: List[Optional[SparseDistribution]] = [None] * T
        for t in range(T - 2, -1, -1):
            nxt = betas[t + 1]
            like = likes[t + 1]
            acc: Dict[int, float] = {}
            for x in alphas[t].support():
                total = 0.0
                for y, p in hmm.transition.row(x).items():
                    w = p
                    if like is not None:
                        ly = like.prob(y)
                        if ly <= 0.0:
                            continue
                        w *= ly
                    if nxt is not None:
                        by = nxt.prob(y)
                        if by <= 0.0:
                            continue
                        w *= by
                    total += w
                if total > 0.0:
                    acc[x] = total
            if not acc:
                raise InferenceError(
                    "EM backward pass vanished; evidence inconsistent"
                )
            top = max(acc.values())
            betas[t] = SparseDistribution(
                {x: v / top for x, v in acc.items()}
            )

        # Gamma / xi accumulation.
        for t in range(T):
            beta = betas[t]
            if beta is None:
                gamma = alphas[t]
            else:
                gamma = SparseDistribution(
                    {s: p * beta.prob(s) for s, p in alphas[t].items()
                     if beta.prob(s) > 0.0}
                ).normalize()
            if t == 0:
                for s, p in gamma.items():
                    init_counts[s] = init_counts.get(s, 0.0) + p
            if learn_emissions and observations[t] is not None:
                row = emit_counts.setdefault(observations[t], {})
                for s, p in gamma.items():
                    row[s] = row.get(s, 0.0) + p
            if t < T - 1:
                like = likes[t + 1]
                nxt = betas[t + 1]
                raw: Dict[Tuple[int, int], float] = {}
                for x, ax in alphas[t].items():
                    for y, p in hmm.transition.row(x).items():
                        w = ax * p
                        if like is not None:
                            ly = like.prob(y)
                            if ly <= 0.0:
                                continue
                            w *= ly
                        if nxt is not None:
                            by = nxt.prob(y)
                            if by <= 0.0:
                                continue
                            w *= by
                        if w > 0.0:
                            raw[(x, y)] = w
                z = sum(raw.values())
                if z > 0.0:
                    for (x, y), w in raw.items():
                        row = trans_counts.setdefault(x, {})
                        row[y] = row.get(y, 0.0) + w / z

    # ---- M step --------------------------------------------------------
    new_initial = SparseDistribution(
        {s: c for s, c in init_counts.items()}
    ).normalize()

    new_rows: Dict[int, Dict[int, float]] = {}
    for x, permitted in hmm.transition.rows():
        counts = trans_counts.get(x, {})
        row = {y: counts.get(y, 0.0) + pseudocount for y in permitted}
        total = sum(row.values())
        new_rows[x] = {y: c / total for y, c in row.items()}
    new_transition = CPT(new_rows)

    emission: EmissionModel = hmm.emission
    if learn_emissions:
        table: Dict[Hashable, Dict[int, float]] = {}
        for symbol, row in emit_counts.items():
            table[symbol] = {
                s: c + pseudocount for s, c in row.items() if c > 0.0
            }
        emission = TabularEmission(table, default_uniform=True)

    fitted = HiddenMarkovModel(
        hmm.num_states, new_initial, new_transition, emission
    )
    return total_ll, fitted
