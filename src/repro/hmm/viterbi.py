"""Viterbi decoding: the single most likely hidden trajectory.

Not part of the paper's query pipeline (Caldera queries the full
posterior, not a point estimate), but standard HMM tooling that the
examples use to sanity-check simulated ground truth against smoothed
streams.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..errors import InferenceError
from .model import HiddenMarkovModel


def viterbi(hmm: HiddenMarkovModel, observations: Sequence) -> List[int]:
    """Return the maximum a-posteriori state sequence.

    Works in log space over the sparse transition structure. ``None``
    observations (or uninformative evidence) leave all states equally
    likely at that step.
    """
    if not observations:
        raise InferenceError("need at least one observation")

    def log_evidence(t: int) -> Optional[Dict[int, float]]:
        vec = hmm.evidence_vector(observations[t])
        if vec is None:
            return None
        return {s: math.log(p) for s, p in vec.items()}

    like0 = log_evidence(0)
    scores: Dict[int, float] = {}
    back: List[Dict[int, int]] = []
    for state, p in hmm.initial.items():
        lp = math.log(p)
        if like0 is not None:
            le = like0.get(state)
            if le is None:
                continue
            lp += le
        scores[state] = lp
    if not scores:
        raise InferenceError("impossible evidence at timestep 0")

    for t in range(1, len(observations)):
        like = log_evidence(t)
        nxt: Dict[int, float] = {}
        ptr: Dict[int, int] = {}
        for src, score in scores.items():
            for dst, p in hmm.transition.row(src).items():
                cand = score + math.log(p)
                if like is not None:
                    le = like.get(dst)
                    if le is None:
                        continue
                    cand += le
                if dst not in nxt or cand > nxt[dst]:
                    nxt[dst] = cand
                    ptr[dst] = src
        if not nxt:
            raise InferenceError(f"impossible evidence at timestep {t}")
        scores = nxt
        back.append(ptr)

    best = max(scores, key=scores.get)
    path = [best]
    for ptr in reversed(back):
        path.append(ptr[path[-1]])
    path.reverse()
    return path
