"""Forward-backward (Bayesian) smoothing of observation sequences.

This is the offline post-processing step of the paper's pipeline (Fig 1):
raw sensor readings go in, a *Markovian stream* — smoothed marginals plus
pairwise conditional probability tables — comes out.

Given an HMM and observations ``o_0 .. o_{T-1}``:

- forward:   ``alpha_t(x) ∝ p(x_t = x, o_{0..t})``
- backward:  ``beta_t(x)  ∝ p(o_{t+1..T-1} | x_t = x)``
- smoothed marginal: ``gamma_t ∝ alpha_t * beta_t``
- pairwise joint: ``xi_t(x,y) ∝ alpha_t(x) A(x,y) L_{t+1}(y) beta_{t+1}(y)``

The stream CPT row for source ``x`` is ``xi_t(x, ·)`` normalized; by
construction ``gamma_{t+1} = gamma_t · C_t`` exactly, which is the
consistency invariant :class:`~repro.streams.markovian.MarkovianStream`
validates.

Supports are pruned below ``prune`` (then renormalized) to keep the
archived stream sparse — mirroring how sample-based inference naturally
yields small supports (Fig 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import InferenceError
from ..probability import CPT, SparseDistribution
from ..streams.markovian import MarkovianStream
from ..streams.schema import StateSpace
from .model import HiddenMarkovModel


def smooth(
    hmm: HiddenMarkovModel,
    observations: Sequence,
    space: StateSpace,
    name: str = "stream",
    prune: float = 1e-6,
    on_impossible: str = "skip",
) -> MarkovianStream:
    """Smooth observations into a Markovian stream.

    Parameters
    ----------
    hmm:
        The model; its state ids must match ``space``.
    observations:
        One observation per timestep. ``None`` (or anything the emission
        model scores as uninformative) marks a gap in sensor coverage.
    space:
        State space attached to the output stream.
    name:
        Output stream name.
    prune:
        Smoothed-marginal probabilities below this are dropped and the
        distributions renormalized.
    on_impossible:
        What to do when an observation has zero likelihood under every
        reachable state: ``"skip"`` treats it as missing (robust default
        for noisy deployments), ``"raise"`` raises
        :class:`~repro.errors.InferenceError`.
    """
    if not observations:
        raise InferenceError("need at least one observation (may be None)")
    if on_impossible not in ("skip", "raise"):
        raise InferenceError(f"bad on_impossible mode: {on_impossible}")
    if len(space) < hmm.num_states:
        raise InferenceError(
            f"state space has {len(space)} states but HMM has {hmm.num_states}"
        )

    T = len(observations)
    likes: List[Optional[SparseDistribution]] = [
        hmm.evidence_vector(o) for o in observations
    ]

    # The backward pass can *numerically* rule out an observation: over
    # hundreds of steps the dynamic range inside a (per-step rescaled)
    # beta vector exceeds float range, the low-probability branch
    # underflows to exact zero, and a later reading that only that branch
    # explains leaves no consistent state. When that happens we treat the
    # conflicting observation as missing (the same robustness policy as
    # the forward pass) and rerun, so forward and backward always use the
    # same evidence.
    for _attempt in range(max(3, T)):
        try:
            return _smooth_once(hmm, likes, space, name, prune)
        except _BackwardConflict as conflict:
            if on_impossible == "raise":
                raise InferenceError(
                    f"evidence at timestep {conflict.time} is inconsistent "
                    "with the rest of the stream"
                ) from None
            likes[conflict.time] = None
    raise InferenceError("smoothing failed to converge after retries")


class _BackwardConflict(Exception):
    """Internal: the backward pass found no state explaining timestep t."""

    def __init__(self, time: int) -> None:
        self.time = time


#: Beta entries below ``max * _BETA_PRUNE`` are dropped: their posterior
#: contribution is negligible and keeping them only feeds underflow.
_BETA_PRUNE = 1e-120


def _smooth_once(
    hmm: HiddenMarkovModel,
    likes: List[Optional[SparseDistribution]],
    space: StateSpace,
    name: str,
    prune: float,
) -> MarkovianStream:
    T = len(likes)

    # ---- forward pass ------------------------------------------------
    alphas: List[SparseDistribution] = []
    current = hmm.initial
    for t in range(T):
        if t > 0:
            current = hmm.transition.apply(alphas[-1])
        weighted = _apply_evidence(current, likes[t])
        if not weighted:
            raise _BackwardConflict(t)  # forward-impossible evidence
        alphas.append(weighted.normalize())

    # ---- backward pass -----------------------------------------------
    betas: List[Optional[SparseDistribution]] = [None] * T
    betas[T - 1] = None  # None encodes the all-ones vector
    for t in range(T - 2, -1, -1):
        nxt = betas[t + 1]
        like = likes[t + 1]
        # beta_t(x) = sum_y A(x,y) * L_{t+1}(y) * beta_{t+1}(y)
        acc: Dict[int, float] = {}
        for x, row in hmm.transition.rows():
            total = 0.0
            for y, p in row.items():
                w = p
                if like is not None:
                    ly = like.prob(y)
                    if ly <= 0.0:
                        continue
                    w *= ly
                if nxt is not None:
                    by = nxt.prob(y)
                    if by <= 0.0:
                        continue
                    w *= by
                total += w
            if total > 0.0:
                acc[x] = total
        if not acc:
            # No state at t explains the (numerically surviving) future:
            # the observation at t+1 conflicts; retry without it.
            raise _BackwardConflict(t + 1)
        # Rescale for stability and drop posterior-negligible entries —
        # their relative magnitude only feeds underflow (see smooth()).
        top = max(acc.values())
        floor = top * _BETA_PRUNE
        betas[t] = SparseDistribution(
            {x: v / top for x, v in acc.items() if v >= floor}
        )

    # ---- smoothed marginals and pairwise CPTs --------------------------
    gammas: List[SparseDistribution] = []
    for t in range(T):
        beta = betas[t]
        gamma = alphas[t] if beta is None else _pointwise(alphas[t], beta)
        if not gamma:
            raise InferenceError(f"smoothed marginal vanished at timestep {t}")
        gammas.append(gamma.normalize())

    supports = [_pruned_support(g, prune) for g in gammas]

    cpts: List[CPT] = []
    for t in range(T - 1):
        like = likes[t + 1]
        beta_next = betas[t + 1]
        rows: Dict[int, Dict[int, float]] = {}
        for x in supports[t]:
            alpha_x = alphas[t].prob(x)
            if alpha_x <= 0.0:
                continue
            row_out: Dict[int, float] = {}
            for y, p in hmm.transition.row(x).items():
                if y not in supports[t + 1]:
                    continue
                w = p
                if like is not None:
                    ly = like.prob(y)
                    if ly <= 0.0:
                        continue
                    w *= ly
                if beta_next is not None:
                    by = beta_next.prob(y)
                    if by <= 0.0:
                        continue
                    w *= by
                if w > 0.0:
                    row_out[y] = w
            if row_out:
                total = sum(row_out.values())
                rows[x] = {y: w / total for y, w in row_out.items()}
        cpts.append(CPT(rows))

    # Repair dangling sources: drop support states with no surviving
    # successor (pruning may have removed them all), walking backward so
    # repairs cascade; then rebuild each CPT restricted to the repaired
    # supports with rows renormalized.
    for t in range(T - 2, -1, -1):
        alive = frozenset(
            x
            for x in supports[t]
            if any(y in supports[t + 1] for y in cpts[t].row(x).support())
        )
        if not alive:
            raise InferenceError(f"pruning emptied the support at timestep {t}")
        supports[t] = alive
    for t in range(T - 1):
        rows: Dict[int, Dict[int, float]] = {}
        for x in supports[t]:
            row = {
                y: p
                for y, p in cpts[t].row(x).items()
                if y in supports[t + 1]
            }
            total = sum(row.values())
            if total > 0.0:
                rows[x] = {y: p / total for y, p in row.items()}
        cpts[t] = CPT(rows)

    # Final marginals: renormalize the pruned gamma at t=0, then propagate
    # through the CPTs so that the stream's consistency invariant holds
    # exactly.
    marginals: List[SparseDistribution] = [
        gammas[0].restrict_to(supports[0]).normalize()
    ]
    for t in range(T - 1):
        marginals.append(cpts[t].apply(marginals[-1]))

    return MarkovianStream(name, space, marginals, cpts, validate=False)


def _apply_evidence(
    prior: SparseDistribution, like: Optional[SparseDistribution]
) -> SparseDistribution:
    if like is None:
        return prior
    return SparseDistribution(
        {s: p * like.prob(s) for s, p in prior.items() if like.prob(s) > 0.0}
    )


def _pointwise(a: SparseDistribution, b: SparseDistribution) -> SparseDistribution:
    return SparseDistribution(
        {s: p * b.prob(s) for s, p in a.items() if b.prob(s) > 0.0}
    )


def _pruned_support(dist: SparseDistribution, prune: float) -> frozenset:
    kept = frozenset(s for s, p in dist.items() if p >= prune)
    if kept:
        return kept
    return frozenset({dist.max_state()[0]})
