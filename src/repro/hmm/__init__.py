"""HMMs and inference: the Markovian-stream generation pipeline (Fig 1).

- :class:`HiddenMarkovModel`, :class:`TabularEmission` — model definition;
- :func:`smooth` — exact forward-backward smoothing (default generator);
- :func:`particle_filter`, :func:`particle_smooth` — sample-based
  inference (the paper's Fig 2 narrative);
- :func:`viterbi` — MAP decoding for sanity checks.
"""

from .forward_backward import smooth
from .learn import baum_welch, log_likelihood
from .model import EmissionModel, HiddenMarkovModel, TabularEmission
from .particle import particle_filter, particle_smooth
from .viterbi import viterbi

__all__ = [
    "EmissionModel",
    "HiddenMarkovModel",
    "TabularEmission",
    "baum_welch",
    "log_likelihood",
    "particle_filter",
    "particle_smooth",
    "smooth",
    "viterbi",
]
