"""Algorithm 1: the naïve full-stream-scan access method.

The baseline every other method is measured against (§3): initialize Reg
with the first marginal, then push every CPT of the stream through it.
Reads one marginal and ``M - 1`` CPTs regardless of the query.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import AccessMethod, AccessStats, QueryContext


class NaiveScan(AccessMethod):
    """Full sequential scan of the archived stream (Algorithm 1)."""

    name = "naive"

    def _execute(self, ctx: QueryContext, stats: AccessStats):
        reg = ctx.new_reg()
        signal: List[Tuple[int, float]] = []

        p = reg.initialize(ctx.reader.marginal(ctx.start))
        stats.reg_initializations += 1
        stats.marginals_read += 1
        signal.append((ctx.start, p))

        for t, cpt in ctx.reader.scan_cpts(ctx.start + 1, ctx.stop):
            p = reg.update(cpt)
            stats.cpts_read += 1
            signal.append((t, p))
        stats.reg_updates = reg.updates_performed
        return signal, 0
