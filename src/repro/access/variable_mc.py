"""Algorithm 4: the MC-index access method for variable-length queries (§3.3).

One BT_C cursor per (indexable) query predicate is advanced in parallel;
their union enumerates the *relevant* timesteps — the only inputs on
which the query NFA can change state. Between consecutive relevant
timesteps the method asks the MC index for the composed CPT spanning the
gap and performs a single span update, so an arbitrarily long stretch of
irrelevant data costs ``O(log(gap))`` CPT multiplications instead of a
scan.

Per §3.4.1, this method requires index coverage of *all* attributes
involved in the query's predicates (otherwise relevant timesteps could
be missed and correctness lost) — the planner falls back to a naive scan
when coverage is missing.

Positive (non-negated) Kleene loops are handled two ways:

- exact mode (default): timesteps matching the loop predicate are
  relevant and processed step by step, with plain span updates across
  truly irrelevant gaps — exact output at every relevant timestep;
- conditioned mode (``use_conditioned=True``, §3.3.2): maximal runs of
  timesteps relevant *only* to the loop predicate are crossed in one
  update using the predicate-conditioned MC index; the query signal is
  then emitted at run boundaries only (the summarized interior is not
  enumerated).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import PlanningError
from .base import AccessMethod, AccessStats, QueryContext


def collect_relevant_events(ctx: QueryContext, predicates):
    """Merged relevant timesteps within the context's window: a sorted
    list of ``(t, matched_pred_ids)``.

    Raises :class:`PlanningError` unless every predicate is covered by a
    BT_C index (the §3.4.1 requirement).
    """
    events: Dict[int, Set[int]] = {}
    for idx, predicate in enumerate(predicates):
        cursor = ctx.chrono_cursor(predicate)  # raises if uncovered
        ok = cursor.seek(ctx.start)
        while ok and cursor.time < ctx.stop:
            events.setdefault(cursor.time, set()).add(idx)
            ok = cursor.next()
    return sorted(events.items())


class VariableMC(AccessMethod):
    """The MC-index access method (Algorithm 4)."""

    name = "mc"

    def __init__(self, use_conditioned: bool = False) -> None:
        self.use_conditioned = use_conditioned

    def _execute(self, ctx: QueryContext, stats: AccessStats):
        query = ctx.query
        reader = ctx.reader
        if ctx.mc is None:
            raise PlanningError("the MC-index method needs the MC index")
        predicates = query.indexable_predicates()
        events = collect_relevant_events(ctx, predicates)
        if not events:
            return [], 0

        # Positive-loop bookkeeping for conditioned mode.
        loop_state: Optional[int] = None  # 0-based link index / NFA state q
        loop_pred_id: Optional[int] = None
        conditioned = None
        if self.use_conditioned and query.has_positive_loops:
            loop_links = [
                q for q, link in enumerate(query.links) if link.has_positive_loop
            ]
            if len(loop_links) > 1:
                raise PlanningError(
                    "conditioned skipping supports a single positive Kleene "
                    "loop; run the MC method in exact mode instead"
                )
            loop_state = loop_links[0]
            loop_sig = query.links[loop_state].loop.signature()
            conditioned = ctx.mc_conditioned.get(loop_sig)
            if conditioned is None:
                raise PlanningError(
                    f"conditioned MC index for {loop_sig} is not built"
                )
            for idx, predicate in enumerate(predicates):
                if predicate.signature() == loop_sig:
                    loop_pred_id = idx
                    break

        reg = ctx.new_reg()
        signal: List[Tuple[int, float]] = []
        t_prev: Optional[int] = None
        skipped_loop_run = False

        for pos, (t, matched) in enumerate(events):
            if self.use_conditioned and loop_pred_id is not None:
                # Defer pure loop-interior events: relevant only to the
                # loop predicate, adjacent on both sides to the run.
                if (
                    matched == {loop_pred_id}
                    and pos + 1 < len(events)
                    and events[pos + 1][0] == t + 1
                    and t_prev is not None
                ):
                    skipped_loop_run = True
                    continue

            if t_prev is None:
                p = reg.initialize(reader.marginal(t))
                stats.reg_initializations += 1
                stats.marginals_read += 1
            else:
                gap = t - t_prev
                if gap == 1 and not skipped_loop_run:
                    p = reg.update(reader.cpt_into(t))
                    stats.cpts_read += 1
                    stats.reg_updates += 1
                else:
                    plain = ctx.mc.compute_cpt(
                        t_prev, t, reader,
                        min_level=ctx.mc_min_level, stats=stats.mc_lookups,
                    )
                    if skipped_loop_run:
                        cond = conditioned.compute_conditioned_cpt(
                            t_prev, t, reader,
                            min_level=ctx.mc_min_level, stats=stats.mc_lookups,
                        )
                        p = reg.update_loop_span(loop_state, plain, cond, span=gap)
                    else:
                        p = reg.update_span(plain, span=gap)
                    stats.reg_updates += 1
            signal.append((t, p))
            t_prev = t
            skipped_loop_run = False
        return signal, 0
