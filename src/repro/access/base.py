"""Shared plumbing for Caldera's access methods (the Ex operator, §3).

An access method consumes a :class:`QueryContext` — the archived stream
reader plus whatever indexes exist — and produces a :class:`QueryResult`:
the query-probability signal (pairs ``(t, p)``; absent timesteps have
probability zero) together with detailed cost accounting
(:class:`AccessStats`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import PlanningError
from ..indexes.btc import BTCIndex, PredicateChronoCursor
from ..indexes.btp import BTPIndex, PredicateProbCursor
from ..indexes.mc import MCIndex, MCLookupStats
from ..lahar.reg import Reg
from ..query.predicates import Predicate
from ..query.regular import RegularQuery
from ..storage.stats import IOStats
from ..streams.archive import StreamReader


@dataclass
class AccessStats:
    """Cost accounting for one access-method execution."""

    wall_time: float = 0.0
    io: IOStats = field(default_factory=IOStats)
    reg_initializations: int = 0
    reg_updates: int = 0
    marginals_read: int = 0
    cpts_read: int = 0
    intervals_processed: int = 0
    candidates_examined: int = 0
    candidates_pruned: int = 0
    mc_lookups: MCLookupStats = field(default_factory=MCLookupStats)

    def summary(self) -> str:
        return (
            f"{self.wall_time * 1000:.1f} ms, "
            f"{self.io.logical_reads} logical / {self.io.physical_reads} "
            f"physical page reads, {self.reg_updates} Reg updates"
        )


@dataclass
class QueryResult:
    """The output of one access-method execution."""

    method: str
    query_name: str
    signal: List[Tuple[int, float]]
    stats: AccessStats
    #: Number of candidate match intervals identified (fixed-length methods).
    match_count: int = 0

    def probability_at(self, t: int) -> float:
        """The query probability at one timestep (0 when not emitted)."""
        for ts, p in self.signal:
            if ts == t:
                return p
        return 0.0

    def as_dict(self) -> Dict[int, float]:
        return dict(self.signal)

    def top(self, k: int) -> List[Tuple[int, float]]:
        """The k highest-probability timesteps, by decreasing probability."""
        return sorted(self.signal, key=lambda tp: (-tp[1], tp[0]))[:k]

    def above(self, threshold: float) -> List[Tuple[int, float]]:
        """All (t, p) with ``p >= threshold``, chronologically."""
        return [(t, p) for t, p in self.signal if p >= threshold]

    def peak(self) -> Optional[Tuple[int, float]]:
        """The single highest-probability timestep."""
        tops = self.top(1)
        return tops[0] if tops else None


class QueryContext:
    """Everything an access method needs to run one query.

    Parameters
    ----------
    reader:
        The archived stream.
    query:
        The Regular query.
    btc / btp:
        Available secondary indexes, keyed by indexed-attribute name
        (``location`` or ``location/LocationType``).
    mc:
        The plain MC index, if built.
    mc_conditioned:
        Predicate-conditioned MC indexes keyed by predicate signature.
    mc_min_level:
        Lowest MC level the method may use (Fig 11a's level-omission
        experiment); raw level-0 steps always remain available.
    start / stop:
        Optional time window: only matches *ending* in ``[start, stop)``
        are computed, and fixed-length matches must lie entirely inside
        the window. Defaults to the whole stream.
    """

    def __init__(
        self,
        reader: StreamReader,
        query: RegularQuery,
        btc: Optional[Dict[str, BTCIndex]] = None,
        btp: Optional[Dict[str, BTPIndex]] = None,
        mc: Optional[MCIndex] = None,
        mc_conditioned: Optional[Dict[str, MCIndex]] = None,
        mc_min_level: int = 1,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> None:
        self.reader = reader
        self.query = query
        self.space = reader.space
        self.btc = dict(btc or {})
        self.btp = dict(btp or {})
        self.mc = mc
        self.mc_conditioned = dict(mc_conditioned or {})
        self.mc_min_level = mc_min_level
        self.start = max(0, start)
        self.stop = reader.length if stop is None else min(stop, reader.length)
        if self.start >= self.stop:
            raise PlanningError(
                f"empty query window [{start}, {stop}) for stream of "
                f"length {reader.length}"
            )

    # ------------------------------------------------------------------
    def btc_terms_for(self, predicate: Predicate):
        """The BT_C index terms covering ``predicate``, resolved against
        the available indexes (join index preferred, value-level
        fallback); None when the predicate cannot be covered."""
        return self._terms_for(predicate, self.btc)

    def btp_terms_for(self, predicate: Predicate):
        """Like :meth:`btc_terms_for` but over BT_P indexes."""
        return self._terms_for(predicate, self.btp)

    def _terms_for(self, predicate: Predicate, available: Dict):
        if not predicate.indexable:
            return None
        terms = predicate.index_terms(self.space)
        if all(term.indexed_attr in available for term in terms):
            return terms
        fallback = getattr(predicate, "value_level_terms", None)
        if fallback is not None:
            terms = fallback(self.space)
            if all(term.indexed_attr in available for term in terms):
                return terms
        return None

    def chrono_cursor(self, predicate: Predicate) -> PredicateChronoCursor:
        terms = self.btc_terms_for(predicate)
        if terms is None:
            raise PlanningError(
                f"no BT_C index covers predicate {predicate.signature()}"
            )
        return PredicateChronoCursor(
            lambda term: self.btc[term.indexed_attr], terms
        )

    def prob_cursor(self, predicate: Predicate) -> PredicateProbCursor:
        terms = self.btp_terms_for(predicate)
        if terms is None:
            raise PlanningError(
                f"no BT_P index covers predicate {predicate.signature()}"
            )
        return PredicateProbCursor(
            lambda term: self.btp[term.indexed_attr], terms
        )

    def new_reg(self) -> Reg:
        return Reg(self.query, self.space)


class AccessMethod:
    """Base class: a physical implementation of the Ex operator."""

    name = "abstract"

    def run(self, ctx: QueryContext) -> QueryResult:
        """Execute, timing the run and capturing the I/O delta."""
        stats = AccessStats()
        io_source = self._io_stats(ctx)
        snap = io_source.snapshot() if io_source is not None else None
        t0 = time.perf_counter()
        signal, match_count = self._execute(ctx, stats)
        stats.wall_time = time.perf_counter() - t0
        if snap is not None:
            stats.io = io_source.delta(snap)
        return QueryResult(
            method=self.name,
            query_name=ctx.query.name,
            signal=signal,
            stats=stats,
            match_count=match_count,
        )

    # ------------------------------------------------------------------
    def _execute(self, ctx: QueryContext, stats: AccessStats):
        raise NotImplementedError

    @staticmethod
    def _io_stats(ctx: QueryContext) -> Optional[IOStats]:
        # All trees of one environment share a stats object; grab it from
        # any tree the reader owns.
        for attr in ("_cpt", "_marg", "_data"):
            tree = getattr(ctx.reader, attr, None)
            if tree is not None:
                return tree.stats
        return None
