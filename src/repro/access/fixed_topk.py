"""Algorithm 3: the top-k B+Tree access method (§3.2).

Adapts the Threshold Algorithm (Fagin et al.) to Markovian streams using
the key upper-bound observation: within a length-``n`` interval, the
marginal probability of the ``i``-th link predicate at the ``i``-th
timestep bounds the interval's match probability from above (an event
cannot be more likely than any of its components).

Sorted access pops ``(prob, timestep)`` entries from the BT_P cursors of
all link predicates in globally decreasing probability. Each pop anchors
a candidate interval; the algorithm terminates when the best remaining
sorted-access probability cannot beat the current ``k``-th best match
(Alg 3, lines 5-6). Candidates are pruned when any link's marginal at
its aligned position is zero (line 9); the optional *enhanced* bound
prunes on the product of all link marginals (an ablation knob, not in
the paper's pseudocode).

Also supports *threshold* queries (return every match with probability
``>= tau``) by fixing the termination bound at ``tau``.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set, Tuple

from ..errors import PlanningError, QueryError
from .base import AccessMethod, AccessStats, QueryContext


class FixedTopK(AccessMethod):
    """The top-k B+Tree access method (Algorithm 3).

    Parameters
    ----------
    k:
        Number of matches to return (ignored when ``threshold`` given).
    threshold:
        Alternative mode: return all matches with probability >= this.
    enhanced_pruning:
        Also prune candidates whose *minimum* link-marginal bound cannot
        beat the current k-th best — sound, since a match can be no more
        likely than any of its components, and stronger than the paper's
        line-9 nonzero check (off by default for fidelity; the
        ``bench_ablation_topk_bound`` benchmark measures its effect).
    """

    name = "topk"

    def __init__(
        self,
        k: int = 1,
        threshold: Optional[float] = None,
        enhanced_pruning: bool = False,
    ) -> None:
        if threshold is None and k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if threshold is not None and not 0.0 < threshold <= 1.0:
            raise QueryError(f"threshold out of (0, 1]: {threshold}")
        self.k = k
        self.threshold = threshold
        self.enhanced_pruning = enhanced_pruning

    # ------------------------------------------------------------------
    def _execute(self, ctx: QueryContext, stats: AccessStats):
        query = ctx.query
        if not query.is_fixed_length:
            raise QueryError(
                "the top-k B+Tree method handles fixed-length queries "
                f"only; {query.name!r} has Kleene loops"
            )
        n = len(query)
        predicates = query.predicates()
        phi_sets = [p.matching_states(ctx.space) for p in predicates]

        cursors = []
        for i, predicate in enumerate(predicates):
            terms = ctx.btp_terms_for(predicate)
            if terms is None:
                raise PlanningError(
                    "the top-k method requires BT_P coverage of every "
                    f"link; missing for {predicate.signature()}"
                )
            cursors.append((i, ctx.prob_cursor(predicate)))
        bound_multiplier = max(c.bound_multiplier for _, c in cursors)

        # best: min-heap of (p, t) holding the current top k.
        best: List[Tuple[float, int]] = []
        seen: Set[int] = set()
        reg = ctx.new_reg()

        def kth_best() -> float:
            if self.threshold is not None:
                return self.threshold
            if len(best) < self.k:
                return 0.0
            return best[0][0]

        while True:
            # Globally highest remaining sorted-access entry.
            top_i = None
            top_prob = -1.0
            for i, cursor in cursors:
                p = cursor.peek_prob()
                if p is not None and p > top_prob:
                    top_prob = p
                    top_i = i
            if top_i is None:
                break  # all cursors exhausted
            if top_prob * bound_multiplier <= kth_best():
                break  # TA termination (Alg 3, lines 5-6)
            i, cursor = next(c for c in cursors if c[0] == top_i)
            prob, t = cursor.pop()
            start = t - i
            if start < ctx.start or start + n > ctx.stop:
                continue
            if start in seen:
                continue
            seen.add(start)
            stats.candidates_examined += 1

            # Line 9: every link's marginal at its aligned position must
            # be nonzero (optionally: their product must beat the bar).
            bounds: List[float] = []
            pruned = False
            for j in range(n):
                marginal = ctx.reader.marginal(start + j)
                stats.marginals_read += 1
                mass = marginal.mass_on(phi_sets[j])
                if mass <= 0.0:
                    pruned = True
                    break
                bounds.append(mass)
            if not pruned and self.enhanced_pruning:
                if min(bounds) <= kth_best():
                    pruned = True
            if pruned:
                stats.candidates_pruned += 1
                continue

            # Lines 10-12: evaluate the interval through Reg.
            p = reg.initialize(ctx.reader.marginal(start))
            stats.reg_initializations += 1
            stats.marginals_read += 1
            for _t, cpt in ctx.reader.scan_cpts(start + 1, start + n):
                p = reg.update(cpt)
                stats.cpts_read += 1
                stats.reg_updates += 1
            match_time = start + n - 1
            if self.threshold is not None:
                if p >= self.threshold:
                    heapq.heappush(best, (p, match_time))
            else:
                if len(best) < self.k:
                    heapq.heappush(best, (p, match_time))
                elif p > best[0][0]:
                    heapq.heapreplace(best, (p, match_time))
            stats.intervals_processed += 1

        signal = sorted(((t, p) for p, t in best))
        return signal, len(best)
