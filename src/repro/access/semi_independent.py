"""Algorithm 5: the approximate semi-independent access method (§3.4.3).

Like the MC-index method, one cursor per query predicate enumerates the
relevant timesteps. Correlations between *adjacent* relevant timesteps
are read directly from the raw stream (one CPT access — the same cost as
reading a marginal, hence "semi"-independent); correlations across
longer gaps are replaced by the independence assumption, which needs
only the marginal at the new timestep.

No accuracy guarantees: ignoring correlations can inflate probabilities
substantially (§2.1's walking-through-walls example), and on some
streams the method misidentifies the maximum-probability timestep
(§4.3.2). Its appeal is speed: no MC index to store or query.

Documented approximation bound (what *is* guaranteed, and what
``tests/access/test_differential.py`` checks):

1. the emitted support is exactly the relevant-event set — the same
   timesteps the exact MC method emits;
2. every emitted value is a valid probability in ``[0, 1]`` (up to
   float round-off);
3. the signal is *exact* on any prefix of the event list in which
   consecutive relevant timesteps are adjacent — the independence
   approximation is applied only when crossing a gap of two or more
   timesteps, so until the first such gap the method reduces to the
   naive evaluation restricted to relevant timesteps.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .base import AccessMethod, AccessStats, QueryContext
from .variable_mc import collect_relevant_events


class SemiIndependent(AccessMethod):
    """The semi-independent access method (Algorithm 5)."""

    name = "semi"

    def _execute(self, ctx: QueryContext, stats: AccessStats):
        reader = ctx.reader
        predicates = ctx.query.indexable_predicates()
        events = collect_relevant_events(ctx, predicates)
        if not events:
            return [], 0

        reg = ctx.new_reg()
        signal: List[Tuple[int, float]] = []
        t_prev: Optional[int] = None
        for t, _matched in events:
            if t_prev is None:
                p = reg.initialize(reader.marginal(t))
                stats.reg_initializations += 1
                stats.marginals_read += 1
            elif t == t_prev + 1:
                # Adjacent: the exact CPT is one access away (line 9).
                p = reg.update(reader.cpt_into(t))
                stats.cpts_read += 1
                stats.reg_updates += 1
            else:
                # Distant: independence approximation (line 11).
                p = reg.update_independent(reader.marginal(t), span=t - t_prev)
                stats.marginals_read += 1
                stats.reg_updates += 1
            signal.append((t, p))
            t_prev = t
        return signal, 0
