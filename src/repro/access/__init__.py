"""Caldera's access methods: the five physical Ex implementations (§3).

========================  =========  ===============================
Class                     Algorithm  Query class
========================  =========  ===============================
:class:`NaiveScan`        Alg 1      any (baseline)
:class:`FixedBTree`       Alg 2      fixed-length
:class:`FixedTopK`        Alg 3      fixed-length, top-k / threshold
:class:`VariableMC`       Alg 4      any (needs full index coverage)
:class:`SemiIndependent`  Alg 5      any (approximate)
========================  =========  ===============================
"""

from .base import AccessMethod, AccessStats, QueryContext, QueryResult
from .fixed_btree import FixedBTree, merge_intervals
from .fixed_topk import FixedTopK
from .naive import NaiveScan
from .semi_independent import SemiIndependent
from .variable_mc import VariableMC, collect_relevant_events

__all__ = [
    "AccessMethod",
    "AccessStats",
    "FixedBTree",
    "FixedTopK",
    "NaiveScan",
    "QueryContext",
    "QueryResult",
    "SemiIndependent",
    "VariableMC",
    "collect_relevant_events",
    "merge_intervals",
]
