"""Algorithm 2: the B+Tree access method for fixed-length queries (§3.1).

A fixed-length query of ``n`` links matches only length-``n`` intervals.
One BT_C cursor per link predicate is advanced in a *temporally-aware
merge join*: the cursors *intersect* when they reference ``n``
consecutive timesteps in link order — each intersection anchors a
candidate interval. Overlapping candidate intervals are merged before
being pushed through Reg, so shared timesteps are processed once (the
feature that lets this method beat top-k on dense overlapping data,
§4.2.2).

Links whose predicate has no covering index relax the intersection (they
accept any timestep), per §3.1's "one or more predicates are not
indexed" note — but at least one link must be indexed.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import PlanningError, QueryError
from .base import AccessMethod, AccessStats, QueryContext


class FixedBTree(AccessMethod):
    """The B+Tree access method (Algorithm 2).

    ``merge_overlapping`` (default on, per §3.1) combines overlapping
    candidate intervals before running Reg; disabling it processes every
    candidate interval independently — the ablation knob for
    ``bench_ablation_merge``.
    """

    name = "btree"

    def __init__(self, merge_overlapping: bool = True) -> None:
        self.merge_overlapping = merge_overlapping

    def _execute(self, ctx: QueryContext, stats: AccessStats):
        query = ctx.query
        if not query.is_fixed_length:
            raise QueryError(
                "the B+Tree method handles fixed-length queries only; "
                f"{query.name!r} has Kleene loops"
            )
        n = len(query)

        cursors = []  # (link offset, cursor)
        for i, predicate in enumerate(query.predicates()):
            terms = ctx.btc_terms_for(predicate)
            if terms is not None:
                cursors.append((i, ctx.chrono_cursor(predicate)))
        if not cursors:
            raise PlanningError(
                "no link of the query is covered by a BT_C index; "
                "use the naive scan"
            )

        anchors = self._intersect(cursors, n, ctx.start, ctx.stop)
        stats.candidates_examined = len(anchors)
        if self.merge_overlapping:
            intervals = merge_intervals(anchors, n)
        else:
            intervals = [(s, s + n - 1) for s in anchors]

        reg = ctx.new_reg()
        emitted: dict = {}
        for start, end in intervals:
            p = reg.initialize(ctx.reader.marginal(start))
            stats.reg_initializations += 1
            stats.marginals_read += 1
            # In unmerged mode overlapping intervals revisit timesteps; a
            # timestep's true probability is the best (complete-alignment)
            # value, so keep the max.
            emitted[start] = max(p, emitted.get(start, 0.0))
            for t, cpt in ctx.reader.scan_cpts(start + 1, end + 1):
                p = reg.update(cpt)
                stats.cpts_read += 1
                stats.reg_updates += 1
                emitted[t] = max(p, emitted.get(t, 0.0))
            stats.intervals_processed += 1
        signal: List[Tuple[int, float]] = sorted(emitted.items())
        return signal, len(anchors)

    # ------------------------------------------------------------------
    @staticmethod
    def _intersect(cursors, n: int, start: int, stop: int) -> List[int]:
        """Anchor timesteps ``s`` such that every indexed link ``i`` has
        an entry at ``s + i`` (the cursors' intersection, §3.1), with the
        interval ``[s, s+n-1]`` inside the ``[start, stop)`` window."""
        anchors: List[int] = []
        s = start
        while s + n <= stop:
            aligned = True
            new_s = s
            for i, cursor in cursors:
                if not cursor.advance_to(s + i):
                    return anchors  # some cursor exhausted
                candidate = cursor.time - i
                if candidate > new_s:
                    new_s = candidate
                if cursor.time != s + i:
                    aligned = False
            if aligned:
                anchors.append(s)
                s += 1
            else:
                s = max(new_s, s + 1)
        return anchors


def merge_intervals(anchors: List[int], n: int) -> List[Tuple[int, int]]:
    """Merge candidate intervals ``[s, s+n-1]`` that overlap or abut, so
    each stream timestep is processed at most once (§3.1)."""
    merged: List[Tuple[int, int]] = []
    for s in anchors:
        start, end = s, s + n - 1
        if merged and start <= merged[-1][1] + 1:
            prev_start, prev_end = merged[-1]
            merged[-1] = (prev_start, max(prev_end, end))
        else:
            merged.append((start, end))
    return merged
