"""Secondary indexes on Markovian streams: BT_C, BT_P, and the MC index."""

from .base import (
    IndexedAttribute,
    btc_tree_name,
    btp_tree_name,
    mc_tree_name,
    resolve_indexed_attribute,
)
from .btc import BTCIndex, ChronoCursor, PredicateChronoCursor
from .btp import BTPIndex, PredicateProbCursor, ProbCursor
from .builder import build_btc, build_btp, build_mc, open_btc, open_btp, open_mc
from .mc import MCIndex, MCLookupStats

__all__ = [
    "BTCIndex",
    "BTPIndex",
    "ChronoCursor",
    "IndexedAttribute",
    "MCIndex",
    "MCLookupStats",
    "PredicateChronoCursor",
    "PredicateProbCursor",
    "ProbCursor",
    "btc_tree_name",
    "btp_tree_name",
    "build_btc",
    "build_btp",
    "build_mc",
    "mc_tree_name",
    "open_btc",
    "open_btp",
    "open_mc",
    "resolve_indexed_attribute",
]
