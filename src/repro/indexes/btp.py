"""BT_P: the probability-ordered secondary index (§3.2).

Search keys are ``(attribute_value, probability, time)`` with the
probability component stored *descending* (via the
:class:`~repro.storage.keyenc.Desc` encoding), so a forward cursor scan
enumerates a value's timesteps from most to least probable — the sorted
access the Threshold-Algorithm-style top-k method (Algorithm 3) needs.

As in BT_C, the indexed probability of a dimension value is the sum over
attribute values mapping to it (§3.4.1), so join-indexed predicates get
exact sorted access with a single cursor.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Optional, Tuple

from ..errors import QueryError
from ..storage import BTree, Desc, encode_key, prefix_upper_bound
from ..storage.keyenc import decode_key
from .base import IndexedAttribute


class BTPIndex:
    """One BT_P index: a B+ tree over ``(value_code, Desc(prob), time)``."""

    def __init__(self, tree: BTree, indexed: IndexedAttribute) -> None:
        self.tree = tree
        self.indexed = indexed

    def build(self, marginals: Iterable[Tuple[int, "SparseDistribution"]]) -> int:
        """Populate from ``(t, marginal)`` pairs; returns entry count."""
        items: List[Tuple[bytes, bytes]] = []
        for t, marginal in marginals:
            for value, prob in self.indexed.aggregate(marginal).items():
                key = encode_key((self.indexed.code(value), Desc(prob), t))
                items.append((key, b""))
        items.sort(key=lambda kv: kv[0])
        self.tree.bulk_load(items)
        self.tree.flush()
        return len(items)

    def scan_value(self, value) -> Iterator[Tuple[float, int]]:
        """Yield ``(prob, t)`` in decreasing probability for one value."""
        if not self.indexed.has_value(value):
            return
        code = self.indexed.code(value)
        prefix = encode_key((code,))
        for key, _ in self.tree.range_items(prefix, prefix_upper_bound(prefix)):
            decoded = decode_key(key)
            yield decoded[1], decoded[2]


class ProbCursor:
    """Descending-probability cursor for one attribute value."""

    def __init__(self, index: BTPIndex, value) -> None:
        if not index.indexed.has_value(value):
            self._cursor = None
        else:
            code = index.indexed.code(value)
            prefix = encode_key((code,))
            self._lo = prefix
            self._hi = prefix_upper_bound(prefix)
            self._cursor = index.tree.cursor()
        self._prob = 0.0
        self._time: Optional[int] = None
        self._done = self._cursor is None
        self._started = False

    @property
    def valid(self) -> bool:
        return not self._done and self._time is not None

    @property
    def prob(self) -> float:
        if not self.valid:
            raise QueryError("probability cursor is exhausted")
        return self._prob

    @property
    def time(self) -> int:
        if not self.valid:
            raise QueryError("probability cursor is exhausted")
        return self._time

    def first(self) -> bool:
        """Position on the highest-probability entry."""
        if self._cursor is None:
            return False
        self._started = True
        return self._load(self._cursor.seek(self._lo))

    def next(self) -> bool:
        if self._cursor is None or self._done:
            return False
        if not self._started:
            return self.first()
        return self._load(self._cursor.next())

    def _load(self, ok: bool) -> bool:
        if not ok or self._cursor.key >= self._hi:
            self._done = True
            self._time = None
            return False
        decoded = decode_key(self._cursor.key)
        self._prob = decoded[1]
        self._time = decoded[2]
        return True


class PredicateProbCursor:
    """Sorted access for one predicate: entries from all of its index
    terms, merged in decreasing probability order (Alg 3, line 4).

    When a predicate is covered by a single term (equality predicates,
    or dimension predicates with a join index — whose entries already
    store the *summed* predicate probability), each popped probability is
    exactly the predicate's marginal at that timestep. With multiple
    terms (e.g. an un-joined ``InSet``), the popped value-level
    probability is a per-term bound; :attr:`bound_multiplier` reports the
    factor (number of terms) by which the threshold test must inflate it
    to stay sound.
    """

    def __init__(self, index_for_term, terms) -> None:
        self._cursors: List[ProbCursor] = [
            ProbCursor(index_for_term(term), term.value) for term in terms
        ]
        self._heap: List[Tuple[float, int, int]] = []
        self._started = False
        self.bound_multiplier = max(1, len(self._cursors))

    def _start(self) -> None:
        self._started = True
        for i, cursor in enumerate(self._cursors):
            if cursor.first():
                heapq.heappush(self._heap, (-cursor.prob, cursor.time, i))

    def pop(self) -> Optional[Tuple[float, int]]:
        """The next (prob, time) in decreasing probability, or None."""
        if not self._started:
            self._start()
        if not self._heap:
            return None
        neg_prob, t, i = heapq.heappop(self._heap)
        cursor = self._cursors[i]
        if cursor.next():
            heapq.heappush(self._heap, (-cursor.prob, cursor.time, i))
        return -neg_prob, t

    def peek_prob(self) -> Optional[float]:
        """The highest remaining probability (the TA threshold input)."""
        if not self._started:
            self._start()
        if not self._heap:
            return None
        return -self._heap[0][0]
