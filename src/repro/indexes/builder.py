"""Index construction and opening helpers.

These functions tie the index classes to a storage environment and the
stream archive. The Caldera engine calls them and records the built
indexes in the catalog; they are also usable standalone (see the tests
and benchmarks, which build indexes directly).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..errors import CatalogError
from ..query.predicates import Predicate
from ..storage import StorageEnvironment
from ..streams.archive import StreamReader
from ..streams.schema import StateSpace
from .base import (
    btc_tree_name,
    btp_tree_name,
    mc_tree_name,
    resolve_indexed_attribute,
)
from .btc import BTCIndex
from .btp import BTPIndex
from .mc import MCIndex


def build_btc(
    env: StorageEnvironment,
    stream_name: str,
    space: StateSpace,
    indexed_attr: str,
    marginals: Iterable[Tuple[int, "SparseDistribution"]],
    dimensions: Optional[Dict[str, Dict]] = None,
) -> BTCIndex:
    """Build a BT_C index over the given indexed attribute."""
    name = btc_tree_name(stream_name, indexed_attr)
    if env.exists(name):
        raise CatalogError(f"index {name!r} already exists")
    indexed = resolve_indexed_attribute(space, indexed_attr, dimensions)
    index = BTCIndex(env.open_tree(name), indexed)
    index.build(marginals)
    return index


def open_btc(
    env: StorageEnvironment,
    stream_name: str,
    space: StateSpace,
    indexed_attr: str,
    dimensions: Optional[Dict[str, Dict]] = None,
) -> BTCIndex:
    """Open an existing BT_C index."""
    name = btc_tree_name(stream_name, indexed_attr)
    indexed = resolve_indexed_attribute(space, indexed_attr, dimensions)
    return BTCIndex(env.open_tree(name, create=False), indexed)


def build_btp(
    env: StorageEnvironment,
    stream_name: str,
    space: StateSpace,
    indexed_attr: str,
    marginals: Iterable[Tuple[int, "SparseDistribution"]],
    dimensions: Optional[Dict[str, Dict]] = None,
) -> BTPIndex:
    """Build a BT_P index over the given indexed attribute."""
    name = btp_tree_name(stream_name, indexed_attr)
    if env.exists(name):
        raise CatalogError(f"index {name!r} already exists")
    indexed = resolve_indexed_attribute(space, indexed_attr, dimensions)
    index = BTPIndex(env.open_tree(name), indexed)
    index.build(marginals)
    return index


def open_btp(
    env: StorageEnvironment,
    stream_name: str,
    space: StateSpace,
    indexed_attr: str,
    dimensions: Optional[Dict[str, Dict]] = None,
) -> BTPIndex:
    """Open an existing BT_P index."""
    name = btp_tree_name(stream_name, indexed_attr)
    indexed = resolve_indexed_attribute(space, indexed_attr, dimensions)
    return BTPIndex(env.open_tree(name, create=False), indexed)


def build_mc(
    env: StorageEnvironment,
    stream_name: str,
    reader: StreamReader,
    alpha: int = 2,
    predicate: Optional[Predicate] = None,
    space: Optional[StateSpace] = None,
) -> MCIndex:
    """Build the MC index (or a predicate-conditioned variant).

    The build runs under an ``mc.build`` span on the environment's
    tracer (wall time + page-write delta land in the environment
    registry), and the index's ``mc.*`` counters are bound to the same
    registry.
    """
    signature = predicate.signature() if predicate is not None else None
    name = mc_tree_name(stream_name, signature)
    if env.exists(name):
        raise CatalogError(f"index {name!r} already exists")
    accept = None
    if predicate is not None:
        if space is None:
            raise CatalogError("conditioned MC index needs the state space")
        accept = predicate.matching_states(space)
    index = MCIndex(env.open_tree(name), alpha, reader.length,
                    accept_states=accept, registry=env.metrics)
    with env.tracer().span("mc.build", tree=name, alpha=alpha,
                           conditioned=predicate is not None):
        index.build(reader)
    return index


def open_mc(
    env: StorageEnvironment,
    stream_name: str,
    alpha: int,
    length: int,
    predicate: Optional[Predicate] = None,
    space: Optional[StateSpace] = None,
) -> MCIndex:
    """Open an existing MC index (its stored metadata, when present,
    must agree with the requested alpha/length/conditioning)."""
    signature = predicate.signature() if predicate is not None else None
    name = mc_tree_name(stream_name, signature)
    accept = None
    if predicate is not None:
        if space is None:
            raise CatalogError("conditioned MC index needs the state space")
        accept = predicate.matching_states(space)
    index = MCIndex(env.open_tree(name, create=False), alpha, length,
                    accept_states=accept, registry=env.metrics)
    index.verify_meta()
    return index
