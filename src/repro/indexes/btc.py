"""BT_C: the chronological secondary index (§3.1).

Search keys are ``(attribute_value, time)``; within one attribute value,
entries are ordered chronologically — the layout that makes the
temporally-aware merge join of Algorithm 2 a linear cursor walk. Entry
values store the summed marginal probability of the attribute value at
that timestep (only nonzero probabilities are indexed, which is what
makes skipping exact: a timestep absent from every relevant value's
entries has zero mass on every query predicate).
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Optional, Tuple

from ..errors import QueryError
from ..storage import BTree, encode_key, prefix_upper_bound
from ..storage.keyenc import decode_key
from .base import IndexedAttribute

_PROB = struct.Struct("<d")


class BTCIndex:
    """One BT_C index: a B+ tree over ``(value_code, time)`` keys."""

    def __init__(self, tree: BTree, indexed: IndexedAttribute) -> None:
        self.tree = tree
        self.indexed = indexed

    # ------------------------------------------------------------------
    def build(self, marginals: Iterable[Tuple[int, "SparseDistribution"]]) -> int:
        """Populate from ``(t, marginal)`` pairs; returns entry count.

        Entries are accumulated and bulk-loaded sorted by key.
        """
        items: List[Tuple[bytes, bytes]] = []
        for t, marginal in marginals:
            for value, prob in self.indexed.aggregate(marginal).items():
                key = encode_key((self.indexed.code(value), t))
                items.append((key, _PROB.pack(prob)))
        items.sort(key=lambda kv: kv[0])
        self.tree.bulk_load(items)
        self.tree.flush()
        return len(items)

    # ------------------------------------------------------------------
    def lookup(self, value, t: int) -> Optional[float]:
        """The indexed probability of ``value`` at ``t`` (None if zero)."""
        if not self.indexed.has_value(value):
            return None
        data = self.tree.get(encode_key((self.indexed.code(value), t)))
        if data is None:
            return None
        return _PROB.unpack(data)[0]

    def scan_value(
        self, value, start_time: int = 0
    ) -> Iterator[Tuple[int, float]]:
        """Yield ``(t, prob)`` chronologically for one attribute value."""
        if not self.indexed.has_value(value):
            return
        code = self.indexed.code(value)
        prefix = encode_key((code,))
        lo = encode_key((code, start_time))
        hi = prefix_upper_bound(prefix)
        for key, data in self.tree.range_items(lo, hi):
            t = decode_key(key)[1]
            yield t, _PROB.unpack(data)[0]


class ChronoCursor:
    """Cursor over one value's (time, prob) entries, with seek/advance."""

    def __init__(self, index: BTCIndex, value) -> None:
        self._index = index
        if not index.indexed.has_value(value):
            self._cursor = None
            self._code = None
        else:
            self._code = index.indexed.code(value)
            self._cursor = index.tree.cursor()
            self._hi = prefix_upper_bound(encode_key((self._code,)))
        self._time: Optional[int] = None
        self._prob = 0.0
        self._done = self._cursor is None

    @property
    def valid(self) -> bool:
        return not self._done and self._time is not None

    @property
    def time(self) -> int:
        if not self.valid:
            raise QueryError("chrono cursor is exhausted")
        return self._time

    @property
    def prob(self) -> float:
        if not self.valid:
            raise QueryError("chrono cursor is exhausted")
        return self._prob

    def seek(self, t: int) -> bool:
        """Position on the first entry with time >= t."""
        if self._cursor is None:
            return False
        ok = self._cursor.seek(encode_key((self._code, t)))
        return self._load(ok)

    def next(self) -> bool:
        if self._cursor is None or self._done:
            return False
        return self._load(self._cursor.next())

    def _load(self, ok: bool) -> bool:
        if not ok or self._cursor.key >= self._hi:
            self._done = True
            self._time = None
            return False
        self._time = decode_key(self._cursor.key)[1]
        self._prob = _PROB.unpack(self._cursor.value)[0]
        return True


class PredicateChronoCursor:
    """Merged chronological cursor over all index terms of one predicate.

    Yields each relevant timestep once, with the predicate's summed
    marginal probability at that timestep, in increasing time order —
    the cursor abstraction Algorithms 2 and 4 advance in parallel.
    """

    def __init__(self, index_for_term, terms) -> None:
        """``index_for_term(term) -> BTCIndex`` resolves each term's index."""
        self._cursors: List[ChronoCursor] = [
            ChronoCursor(index_for_term(term), term.value) for term in terms
        ]
        self._time: Optional[int] = None
        self._prob = 0.0
        self._started = False

    @property
    def valid(self) -> bool:
        return self._time is not None

    @property
    def time(self) -> int:
        if self._time is None:
            raise QueryError("predicate cursor is exhausted")
        return self._time

    @property
    def prob(self) -> float:
        if self._time is None:
            raise QueryError("predicate cursor is exhausted")
        return self._prob

    def seek(self, t: int) -> bool:
        """Position on the first relevant timestep >= t."""
        for cursor in self._cursors:
            cursor.seek(t)
        self._started = True
        return self._aggregate()

    def next(self) -> bool:
        """Advance past the current timestep."""
        if not self._started:
            return self.seek(0)
        if self._time is None:
            return False
        current = self._time
        for cursor in self._cursors:
            while cursor.valid and cursor.time <= current:
                cursor.next()
        return self._aggregate()

    def advance_to(self, t: int) -> bool:
        """Position on the first relevant timestep >= t (forward only)."""
        if not self._started:
            return self.seek(t)
        if self._time is not None and self._time >= t:
            return True
        for cursor in self._cursors:
            while cursor.valid and cursor.time < t:
                # Cheap skip via seek when far away; linear next otherwise.
                if t - cursor.time > 8:
                    cursor.seek(t)
                else:
                    cursor.next()
        return self._aggregate()

    def _aggregate(self) -> bool:
        times = [c.time for c in self._cursors if c.valid]
        if not times:
            self._time = None
            self._prob = 0.0
            return False
        t = min(times)
        self._time = t
        self._prob = sum(c.prob for c in self._cursors if c.valid and c.time == t)
        return True
