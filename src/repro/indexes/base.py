"""Shared machinery for secondary indexes.

An *indexed attribute* is either a base stream attribute (``location``)
or a star-schema join attribute (``location/LocationType`` — the
attribute's value mapped through a dimension table, §3.4.1). Both kinds
index, per timestep, the summed marginal probability of each attribute
value; a join index thereby materializes the paper's
``(D.a, M.time)`` / ``(D.a, M.prob)`` search keys without modifying the
stream.

Tree naming: ``{stream}__btc__{attr}`` and ``{stream}__btp__{attr}``
with ``/`` sanitized to ``@`` for the filesystem.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import CatalogError, QueryError
from ..probability import SparseDistribution
from ..streams.schema import StateSpace

JOIN_SEPARATOR = "/"


class IndexedAttribute:
    """Resolves attribute values and their integer key codes for one
    (possibly dimension-joined) indexed attribute."""

    def __init__(
        self,
        name: str,
        value_of_state: Callable[[int], object],
        codes: Dict[object, int],
    ) -> None:
        self.name = name
        self._value_of_state = value_of_state
        self._codes = codes

    # ------------------------------------------------------------------
    @classmethod
    def base(cls, space: StateSpace, attribute: str) -> "IndexedAttribute":
        """Index directly on a stream attribute's values."""
        vocab = space.vocabulary(attribute)

        def value_of(state_id: int):
            return space.attribute_value(state_id, attribute)

        codes = {v: vocab.code(v) for v in vocab.values()}
        return cls(attribute, value_of, codes)

    @classmethod
    def joined(
        cls,
        space: StateSpace,
        attribute: str,
        table_name: str,
        mapping: Dict,
    ) -> "IndexedAttribute":
        """Index on the dimension value of a stream attribute (join index).

        States whose attribute value is missing from the dimension table
        have no dimension value and are not indexed.
        """
        codes = {v: i for i, v in enumerate(sorted(set(mapping.values()), key=str))}

        def value_of(state_id: int):
            return mapping.get(space.attribute_value(state_id, attribute))

        return cls(f"{attribute}{JOIN_SEPARATOR}{table_name}", value_of, codes)

    # ------------------------------------------------------------------
    @property
    def is_join(self) -> bool:
        return JOIN_SEPARATOR in self.name

    def code(self, value) -> int:
        try:
            return self._codes[value]
        except KeyError:
            raise QueryError(
                f"value {value!r} is not indexed under {self.name!r}"
            ) from None

    def has_value(self, value) -> bool:
        return value in self._codes

    def value_of_state(self, state_id: int):
        """The indexed value for one state id (None = not indexed)."""
        return self._value_of_state(state_id)

    def aggregate(self, marginal: SparseDistribution) -> Dict[object, float]:
        """Per indexed value, the summed marginal probability (§3.4.1:
        tuples at one timestep are disjoint, so summation is exact)."""
        out: Dict[object, float] = {}
        for state, p in marginal.items():
            value = self._value_of_state(state)
            if value is None:
                continue
            out[value] = out.get(value, 0.0) + p
        return out


def resolve_indexed_attribute(
    space: StateSpace,
    name: str,
    dimensions: Optional[Dict[str, Dict]] = None,
) -> IndexedAttribute:
    """Build an :class:`IndexedAttribute` from its name.

    ``name`` is a base attribute or ``attr/DimensionTable``; join names
    require the dimension table to be present in ``dimensions``.
    """
    if JOIN_SEPARATOR in name:
        attribute, table = name.split(JOIN_SEPARATOR, 1)
        mapping = (dimensions or {}).get(table)
        if mapping is None:
            raise CatalogError(
                f"join index {name!r} needs dimension table {table!r}"
            )
        return IndexedAttribute.joined(space, attribute, table, mapping)
    return IndexedAttribute.base(space, name)


def sanitize(name: str) -> str:
    """Make an indexed-attribute name filesystem-safe."""
    return name.replace(JOIN_SEPARATOR, "@")


def btc_tree_name(stream: str, indexed_attr: str) -> str:
    """Storage-tree name of a stream's BT_C index over one attribute."""
    return f"{stream}__btc__{sanitize(indexed_attr)}"


def btp_tree_name(stream: str, indexed_attr: str) -> str:
    """Storage-tree name of a stream's BT_P index over one attribute."""
    return f"{stream}__btp__{sanitize(indexed_attr)}"


def mc_tree_name(stream: str, predicate_signature: Optional[str] = None) -> str:
    """Storage-tree name of a stream's MC index (or, given a predicate
    signature, of its conditioned variant)."""
    if predicate_signature is None:
        return f"{stream}__mc"
    import hashlib

    digest = hashlib.sha1(predicate_signature.encode("utf-8")).hexdigest()[:12]
    return f"{stream}__mcc__{digest}"
