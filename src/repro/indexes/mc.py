"""The Markov-chain (MC) index — interface stub (§4.2.2).

The MC index stores CPTs composed across power-of-``alpha`` spans so a
gap of ``g`` timesteps costs O(log_alpha g) lookups instead of ``g``
CPT reads. This module currently ships only the interface: the stats
dataclass :class:`MCLookupStats` (wired through
:class:`repro.access.base.AccessStats`) and an :class:`MCIndex` whose
build/compute methods raise until the MC PR lands. The variable-length
access method (:mod:`repro.access.variable_mc`) therefore cannot run
yet; the engine defaults to ``mc_alpha=None`` and the fixed-length
methods are fully functional without it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional


@dataclass
class MCLookupStats:
    """Counters for MC-index traversal during one query."""

    #: Stored span-CPT records fetched from the index.
    lookups: int = 0
    #: CPT compositions performed to cover a gap.
    compositions: int = 0
    #: Raw per-timestep CPTs read because no span record covered them.
    base_cpts_read: int = 0

    def merge(self, other: "MCLookupStats") -> None:
        self.lookups += other.lookups
        self.compositions += other.compositions
        self.base_cpts_read += other.base_cpts_read


class MCIndex:
    """Placeholder for the MC index. Construction (so catalogs and
    engines can reference it) works; building or querying raises."""

    def __init__(self, tree, alpha: int, length: int,
                 accept_states: Optional[FrozenSet[int]] = None) -> None:
        if alpha < 2:
            raise ValueError(f"MC index alpha must be >= 2, got {alpha}")
        self.tree = tree
        self.alpha = alpha
        self.length = length
        #: For conditioned variants: the loop predicate's matching states.
        self.accept_states = accept_states

    @property
    def is_conditioned(self) -> bool:
        return self.accept_states is not None

    def _unimplemented(self) -> "NotImplementedError":
        return NotImplementedError(
            "the MC index is not implemented yet; run the engine with "
            "mc_alpha=None (gaps fall back to per-timestep CPT reads)"
        )

    def build(self, reader) -> None:
        raise self._unimplemented()

    def compute_cpt(self, start: int, end: int, reader, *,
                    min_level: int = 1,
                    stats: Optional[MCLookupStats] = None):
        """Compose the CPT spanning ``start -> end`` from index records."""
        raise self._unimplemented()

    def compute_conditioned_cpt(self, start: int, end: int, reader, *,
                                min_level: int = 1,
                                stats: Optional[MCLookupStats] = None):
        """Like :meth:`compute_cpt`, but every interior timestep is
        conditioned on the accept-state predicate holding."""
        raise self._unimplemented()
