"""The Markov-chain (MC) index (§4.2.2, Algorithm 4).

The MC index precomputes chain-rule CPT products across power-of-alpha
spans so that a gap of ``g`` irrelevant timesteps costs
``O(log_alpha g)`` keyed lookups instead of ``g`` sequential CPT reads
— the piece that makes variable-length (Kleene) queries viable at
archive scale.

Record layout
-------------
One B+ tree per index, bulk-loaded bottom-up through the storage
engine. A record at key ``encode_key((level, start))`` stores the
composed CPT spanning ``start -> start + alpha**level``; records exist
for every level ``1 .. max_level`` at starts aligned to the level's
span (``start % alpha**level == 0``) whose span fits inside the stream
(``start + alpha**level <= length - 1``). ``max_level`` is the largest
level with at least one full span, so total storage is the geometric
series ``sum_l (L - 1) / alpha**l  <  (L - 1) / (alpha - 1)`` records.
A metadata record under the reserved key ``encode_key((-1,))`` (sorts
before every data key) makes the index self-describing: alpha, stream
length, level count, and the conditioning accept set.

Gap traversal
-------------
:meth:`MCIndex.compute_cpt` covers an arbitrary ``[start, end)`` span
by greedy descent: at each position it takes the *largest* stored span
that is aligned at the position and still fits before ``end``, falling
back to a raw per-timestep CPT read from the archive when only levels
below ``min_level`` would fit (``min_level`` reproduces Fig 11(a)'s
level-omission experiment; raw level-0 steps always remain available).
Both sides of the canonical decomposition use at most ``alpha - 1``
pieces per level, so the piece count is bounded by
``2 * (alpha - 1) * ceil(log_alpha g)`` and grows logarithmically in
the gap; ``tests/indexes/test_mc_costs.py`` pins the exact constants.

Conditioned variant (§3.3.2)
----------------------------
A conditioned MC index is built for one positive Kleene-loop
predicate: every base CPT is first masked to destinations inside the
predicate's accept set (``CPT.mask_destinations``), then composed.
Masking commutes with composition — masking the destination of one
piece masks the interior state of the concatenation — so span records
store the fully-masked product and arbitrary spans compose exactly.
:meth:`MCIndex.compute_conditioned_cpt` assembles the CPT that crosses
one maximal Kleene run ``start -> end``: masked records over the run's
*interior* (``start+1 .. end-1``) plus the raw, unmasked final step
into ``end`` — the boundary timestep is a real query event whose
symbol the Reg operator classifies (loop continues, link advances, or
match dies), so it must not be conditioned away. The result is
deliberately *sub*-stochastic: row mass is the probability of
satisfying the predicate at every interior timestep, and the lost mass
is exactly the probability of leaving the loop — what
:meth:`repro.lahar.reg.Reg.update_loop_span` needs to split kept and
exited mass in one update. Renormalizing the rows
(``normalize=True``) yields §3.3.2's conditional distribution
``P(x_end | x_start, predicate held throughout the interior)`` when
that form is wanted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import CatalogError, StreamError
from ..obs.metrics import NullRegistry
from ..probability import CPT
from ..storage import encode_key

#: Reserved metadata key — level -1 sorts before every (level, start).
META_KEY = encode_key((-1,))


@dataclass
class MCLookupStats:
    """Counters for MC-index traversal during one query."""

    #: Stored span-CPT records fetched from the index.
    lookups: int = 0
    #: CPT compositions performed to cover a gap.
    compositions: int = 0
    #: Raw per-timestep CPTs read because no span record covered them.
    base_cpts_read: int = 0

    def merge(self, other: "MCLookupStats") -> None:
        self.lookups += other.lookups
        self.compositions += other.compositions
        self.base_cpts_read += other.base_cpts_read

    @property
    def pieces(self) -> int:
        """Total pieces composed to cover the gaps (index + raw)."""
        return self.lookups + self.base_cpts_read


def max_level_for(alpha: int, length: int) -> int:
    """The highest level with at least one full span: the largest
    ``l >= 1`` with ``alpha**l <= length - 1`` (0 when even the level-1
    span does not fit)."""
    level = 0
    span = alpha
    while span <= length - 1:
        level += 1
        span *= alpha
    return level


class MCIndex:
    """The MC index over one archived stream (plain or conditioned)."""

    def __init__(self, tree, alpha: int, length: int,
                 accept_states: Optional[FrozenSet[int]] = None,
                 registry=None) -> None:
        if alpha < 2:
            raise ValueError(f"MC index alpha must be >= 2, got {alpha}")
        self.tree = tree
        self.alpha = alpha
        self.length = length
        #: For conditioned variants: the loop predicate's matching states.
        self.accept_states = (
            None if accept_states is None else frozenset(accept_states)
        )
        self.max_level = max_level_for(alpha, length)
        self._registry = registry if registry is not None else NullRegistry()
        labels = {"tree": getattr(tree, "name", "mc")}
        self._c_lookups = self._registry.counter("mc.lookups", **labels)
        self._c_base = self._registry.counter("mc.base_cpts", **labels)
        self._c_compose = self._registry.counter("mc.compositions", **labels)
        self._c_records = self._registry.counter("mc.records_built", **labels)

    @property
    def is_conditioned(self) -> bool:
        return self.accept_states is not None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, reader) -> int:
        """Bulk-load every span record from the archived stream.

        Level 1 is composed in one streaming pass over the base CPTs;
        each higher level composes ``alpha`` records of the level below
        (never re-reading the archive). Returns the number of span
        records written.
        """
        if reader.length != self.length:
            raise CatalogError(
                f"MC index built for length {self.length} over a reader "
                f"of length {reader.length}"
            )
        accept = self.accept_states
        items: List[Tuple[bytes, bytes]] = [(META_KEY, self._meta_value())]
        records = 0

        # Level 1: stream the base CPTs, emit one record per alpha steps.
        span = self.alpha
        level_cpts: Dict[int, CPT] = {}
        if self.max_level >= 1:
            acc: Optional[CPT] = None
            start = 0
            for t, cpt in reader.scan_cpts():
                if accept is not None:
                    cpt = cpt.mask_destinations(accept)
                acc = cpt if acc is None else acc.compose(cpt)
                if t == start + span:
                    level_cpts[start] = acc
                    acc = None
                    start = t
            for s in sorted(level_cpts):
                items.append((encode_key((1, s)), level_cpts[s].to_bytes()))
            records += len(level_cpts)

        # Levels 2 .. max_level: compose alpha spans of the level below.
        for level in range(2, self.max_level + 1):
            below = span
            span *= self.alpha
            higher: Dict[int, CPT] = {}
            for start in range(0, self.length - span, span):
                acc = level_cpts[start]
                for i in range(1, self.alpha):
                    acc = acc.compose(level_cpts[start + i * below])
                higher[start] = acc
            for s in sorted(higher):
                items.append((encode_key((level, s)), higher[s].to_bytes()))
            records += len(higher)
            level_cpts = higher

        self.tree.bulk_load(items)
        self.tree.flush()
        self._c_records.inc(records)
        return records

    def _meta_value(self) -> bytes:
        meta = {
            "alpha": self.alpha,
            "length": self.length,
            "max_level": self.max_level,
            "conditioned": self.is_conditioned,
        }
        if self.accept_states is not None:
            meta["accept_states"] = sorted(self.accept_states)
        return json.dumps(meta).encode("utf-8")

    def read_meta(self) -> Optional[dict]:
        """The stored metadata record (None on a never-built tree)."""
        data = self.tree.get(META_KEY)
        return None if data is None else json.loads(data.decode("utf-8"))

    def verify_meta(self) -> None:
        """Raise :class:`~repro.errors.CatalogError` when the stored
        metadata disagrees with how the index was opened."""
        meta = self.read_meta()
        if meta is None:
            return  # not built yet (or pre-metadata index)
        mismatches = []
        if meta.get("alpha") != self.alpha:
            mismatches.append(f"alpha {meta.get('alpha')} != {self.alpha}")
        if meta.get("length") != self.length:
            mismatches.append(f"length {meta.get('length')} != {self.length}")
        if meta.get("conditioned", False) != self.is_conditioned:
            mismatches.append("conditioned/plain mismatch")
        if mismatches:
            raise CatalogError(
                f"MC index {self.tree.name!r} metadata mismatch: "
                + "; ".join(mismatches)
            )

    # ------------------------------------------------------------------
    # Gap traversal
    # ------------------------------------------------------------------
    def compute_cpt(self, start: int, end: int, reader, *,
                    min_level: int = 1,
                    stats: Optional[MCLookupStats] = None) -> CPT:
        """Compose the CPT spanning ``start -> end`` from index records
        (plus raw CPT reads below ``min_level``)."""
        if self.is_conditioned:
            raise CatalogError(
                "this MC index is conditioned; use compute_conditioned_cpt"
            )
        return self._compute(start, end, reader, min_level, stats,
                             masked=False)

    def compute_conditioned_cpt(self, start: int, end: int, reader, *,
                                min_level: int = 1,
                                stats: Optional[MCLookupStats] = None,
                                normalize: bool = False) -> CPT:
        """The CPT crossing one conditioned Kleene run ``start -> end``
        (§3.3.2): interior transitions (into ``start+1 .. end-1``)
        masked to the accept-state predicate, the final step into
        ``end`` unmasked (the boundary event's symbol is classified by
        Reg, so conditioning it away would drop loop exits). The result
        is sub-stochastic — lost row mass = probability of leaving the
        loop — unless ``normalize=True`` rescales each row to §3.3.2's
        conditional distribution."""
        if not self.is_conditioned:
            raise CatalogError(
                "this MC index is not conditioned; build it with a "
                "predicate (conditioned_predicates=... on archive())"
            )
        if not 0 <= start < end <= self.length - 1:
            raise StreamError(
                f"MC span [{start}, {end}] outside stream of length "
                f"{self.length}"
            )
        final = reader.cpt_into(end)
        if end - start == 1:
            result = final
            if stats is not None:
                stats.base_cpts_read += 1
            self._c_base.inc()
        else:
            interior = self._compute(start, end - 1, reader, min_level,
                                     stats, masked=True)
            result = interior.compose(final)
            if stats is not None:
                stats.base_cpts_read += 1
                stats.compositions += 1
            self._c_base.inc()
            self._c_compose.inc()
        return result.normalize_rows() if normalize else result

    def _compute(self, start: int, end: int, reader, min_level: int,
                 stats: Optional[MCLookupStats], masked: bool) -> CPT:
        if not 0 <= start < end <= self.length - 1:
            raise StreamError(
                f"MC span [{start}, {end}] outside stream of length "
                f"{self.length}"
            )
        min_level = max(1, min_level)
        result: Optional[CPT] = None
        lookups = base = compositions = 0
        cur = start
        while cur < end:
            piece = None
            level = self.max_level
            span = self.alpha ** level
            while level >= min_level:
                if cur % span == 0 and cur + span <= end:
                    piece = self._fetch(level, cur)
                    lookups += 1
                    cur += span
                    break
                span //= self.alpha
                level -= 1
            if piece is None:
                # Only levels below min_level (or none) fit: raw step.
                piece = reader.cpt_into(cur + 1)
                if masked:
                    piece = piece.mask_destinations(self.accept_states)
                base += 1
                cur += 1
            if result is None:
                result = piece
            else:
                result = result.compose(piece)
                compositions += 1
        if stats is not None:
            stats.lookups += lookups
            stats.base_cpts_read += base
            stats.compositions += compositions
        self._c_lookups.inc(lookups)
        self._c_base.inc(base)
        self._c_compose.inc(compositions)
        return result

    def _fetch(self, level: int, start: int) -> CPT:
        data = self.tree.get(encode_key((level, start)))
        if data is None:
            raise CatalogError(
                f"MC index {self.tree.name!r} is missing record "
                f"(level={level}, start={start}); was it built?"
            )
        return CPT.from_bytes(data)
