"""The Reg operator: per-timestep Regular-query match probability (§3).

Reg runs a Regular query's linear NFA over a Markovian stream and
emits, at every consumed timestep ``t``, the probability that a match
*ends* at ``t``. Exactness comes from determinization: a concrete
state path visits, at each timestep, a well-defined *set* of NFA
states (subset construction over the linear NFA of
:mod:`repro.query.regular`, with the start state always present — a
match may begin anywhere). Reg therefore partitions the stream's
probability mass by ``(NFA state set, stream state)`` and pushes that
joint mass through each timestep's CPT; the emitted probability is the
total mass in sets containing the accept state. No path is counted
twice, because the set is a deterministic function of the path.

Two implementations share the compiled query machinery:

* :class:`Reg` — the production kernel. The joint mass is a dense
  NumPy matrix ``V[set, stream-state]`` in fixed full-space
  coordinates; one timestep is ``V @ B`` (``B`` the CPT densified in
  one chained-``fromiter`` scatter) followed by a regrouping of
  destination columns into their successor sets — columns are classed
  once, at construction, by *symbol mask* (which predicates each
  stream state satisfies), so the per-step Python cost is
  O(sets × distinct masks) plus one O(nnz) densification, not
  O(sets × nnz). The reference pays O(nnz) dict arithmetic *per live
  set*, so the kernel pulls ahead as queries grow links and loops
  (more live sets) and as supports widen.
* :class:`ReferenceReg` — a dict-of-dicts pure-Python implementation
  of the same semantics, kept slow and obvious for property testing;
  on narrow supports with single-link queries it is competitive, which
  is why the benchmarks measure the kernel on wide-support streams.

Both support the span operations of Algorithms 4 & 5: collapsing over
irrelevant gaps (only the start state and negated-loop states survive
a timestep with zero mass on every indexable predicate), conditioned
loop spans, and the independence approximation.
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..probability import CPT, SparseDistribution
from ..query.predicates import Not, Predicate
from ..query.regular import RegularQuery
from ..streams.schema import StateSpace


class QueryMachine:
    """A Regular query compiled against a state space: per-stream-state
    symbol masks and the cached subset-construction transition.

    NFA states are ``0 .. n`` (state q = "first q links matched");
    a DFA state is a bitmask of NFA states with bit 0 always set.
    The accept bit ``n`` has no outgoing transitions, so acceptance
    expires after one step — exactly "a match ends here".
    """

    def __init__(self, query: RegularQuery, space: StateSpace) -> None:
        self.query = query
        self.space = space
        self.n = len(query)

        predicates: List[Predicate] = []
        bit_of: Dict[str, int] = {}

        def bit_for(predicate: Predicate) -> int:
            sig = predicate.signature()
            if sig not in bit_of:
                bit_of[sig] = len(predicates)
                predicates.append(predicate)
            return bit_of[sig]

        self._link_bits = [bit_for(link.predicate) for link in query.links]
        #: per NFA state q: (predicate bit, negated) of its self-loop.
        self._loop_specs: List[Optional[Tuple[int, bool]]] = []
        for link in query.links:
            if link.loop is None:
                self._loop_specs.append(None)
            elif isinstance(link.loop, Not):
                self._loop_specs.append((bit_for(link.loop.base), True))
            else:
                self._loop_specs.append((bit_for(link.loop), False))

        self.state_mask = [0] * len(space)
        for bit, predicate in enumerate(predicates):
            for s in predicate.matching_states(space):
                self.state_mask[s] |= 1 << bit

        self.start_set = 1  # {NFA state 0}
        self.accept_bit = 1 << self.n
        # NFA states that survive an irrelevant timestep (zero mass on
        # every indexable predicate): the start state, and any state
        # whose self-loop is a *negated* predicate — trivially satisfied
        # when the base predicate has zero mass.
        keep = 1
        for q, spec in enumerate(self._loop_specs):
            if spec is not None and spec[1]:
                keep |= 1 << q
        self._collapse_mask = keep
        self._delta: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    def mask_of(self, state_id: int) -> int:
        return self.state_mask[state_id]

    def step(self, set_bits: int, mask_bits: int) -> int:
        """The successor DFA state after consuming a symbol with the
        given predicate mask (cached)."""
        key = (set_bits, mask_bits)
        out = self._delta.get(key)
        if out is None:
            out = 1
            for q in range(self.n):
                if set_bits >> q & 1:
                    if mask_bits >> self._link_bits[q] & 1:
                        out |= 1 << (q + 1)
                    spec = self._loop_specs[q]
                    if spec is not None and \
                            bool(mask_bits >> spec[0] & 1) != spec[1]:
                        out |= 1 << q
            self._delta[key] = out
        return out

    def collapse(self, set_bits: int) -> int:
        """The DFA state surviving a gap of irrelevant timesteps."""
        return (set_bits & self._collapse_mask) | 1

    def is_accepting(self, set_bits: int) -> bool:
        return bool(set_bits & self.accept_bit)


# ----------------------------------------------------------------------
# Vectorized kernel
# ----------------------------------------------------------------------
class Reg:
    """The NumPy-vectorized Reg kernel (the production implementation)."""

    def __init__(self, query: RegularQuery, space: StateSpace,
                 machine: Optional[QueryMachine] = None) -> None:
        self.query = query
        self.space = space
        self._m = machine if machine is not None else \
            QueryMachine(query, space)
        #: Number of update operations performed since construction.
        self.updates_performed = 0
        self._n = len(space)
        mask_arr = np.asarray(self._m.state_mask, dtype=np.int64)
        #: Columns grouped by symbol mask — fixed for the machine's
        #: life, so classification never touches per-state masks again.
        self._groups: List[Tuple[int, np.ndarray]] = [
            (int(mv), np.flatnonzero(mask_arr == mv))
            for mv in np.unique(mask_arr)
        ]
        #: Per-column group index and flat column ids, for the scatter.
        self._group_of = np.searchsorted(
            np.asarray([mv for mv, _ in self._groups], dtype=np.int64),
            mask_arr,
        )
        self._col_ids = np.arange(self._n, dtype=np.int64)
        #: DFA set -> per-group destination signature (int64 array).
        self._sig: Dict[int, np.ndarray] = {}
        self._sets: List[int] = []
        self._V = np.zeros((0, self._n))

    # -- state helpers -------------------------------------------------
    def _accept_mass(self) -> float:
        total = 0.0
        for i, s in enumerate(self._sets):
            if self._m.is_accepting(s):
                total += float(self._V[i].sum())
        return total

    def _signature(self, set_bits: int) -> np.ndarray:
        """The per-group destination sets of one source set (cached)."""
        sig = self._sig.get(set_bits)
        if sig is None:
            step = self._m.step
            sig = self._sig[set_bits] = np.fromiter(
                (step(set_bits, mb) for mb, _ in self._groups),
                np.int64, len(self._groups),
            )
        return sig

    def _classify(self, mids: Sequence[int], W: np.ndarray) -> None:
        """Regroup the mass rows ``W`` (one per source set in ``mids``)
        into the successor DFA states given by the destination symbols:
        one ``bincount`` scatter over flat (destination set, column)
        indices, so no per-set Python work beyond a signature lookup."""
        if not mids:
            self._sets = []
            self._V = np.zeros((0, self._n))
            return
        D = np.vstack([self._signature(s) for s in mids])
        dsts, inv = np.unique(D, return_inverse=True)
        out_col = inv.reshape(D.shape)[:, self._group_of]
        flat = out_col * self._n + self._col_ids
        self._V = np.bincount(
            flat.ravel(), weights=W.ravel(),
            minlength=len(dsts) * self._n,
        ).reshape(len(dsts), self._n)
        self._sets = [int(s) for s in dsts]
        self._prune()

    def _prune(self) -> None:
        """Drop exactly-empty rows (mass is nonnegative, so a zero sum
        means identically zero)."""
        if not self._sets:
            return
        live = np.flatnonzero(self._V.sum(axis=1) > 0.0)
        if len(live) < len(self._sets):
            self._sets = [self._sets[i] for i in live]
            self._V = self._V[live]

    def _collapse_rows(self) -> None:
        """Merge rows into their gap-collapsed DFA states."""
        acc: Dict[int, np.ndarray] = {}
        for i, s in enumerate(self._sets):
            mid = self._m.collapse(s)
            if mid in acc:
                acc[mid] = acc[mid] + self._V[i]
            else:
                acc[mid] = self._V[i].copy()
        self._sets = list(acc.keys())
        self._V = np.vstack(list(acc.values())) if acc else \
            np.zeros((0, self._n))

    def _dense(self, cpt: CPT) -> np.ndarray:
        """The CPT as a dense (n, n) transition block: one chained
        ``fromiter`` per coordinate stream plus one scatter, so every
        per-entry step runs at C speed."""
        B = np.zeros((self._n, self._n))
        rows = list(cpt.rows())
        if not rows:
            return B
        lens = np.fromiter((len(r) for _, r in rows), np.int64, len(rows))
        nnz = int(lens.sum())
        if not nnz:
            return B
        src = np.repeat(
            np.fromiter((x for x, _ in rows), np.int64, len(rows)), lens)
        dst = np.fromiter(
            chain.from_iterable(r for _, r in rows), np.int64, nnz)
        vals = np.fromiter(
            chain.from_iterable(r.values() for _, r in rows),
            np.float64, nnz)
        B[src, dst] = vals
        return B

    def _scatter(self, marginal: SparseDistribution) -> np.ndarray:
        ids, vals = marginal.as_arrays()
        vec = np.zeros(self._n)
        vec[ids] = vals
        return vec

    # -- API -----------------------------------------------------------
    def initialize(self, marginal: SparseDistribution) -> float:
        """Start a fresh run on the first timestep's marginal; returns
        the match probability at that timestep."""
        self._classify([self._m.start_set],
                       self._scatter(marginal).reshape(1, -1))
        return self._accept_mass()

    def update(self, cpt: CPT) -> float:
        """Consume one timestep via its incoming CPT; returns the match
        probability at the new timestep."""
        self.updates_performed += 1
        if not self._sets:
            return 0.0
        self._classify(self._sets, self._V @ self._dense(cpt))
        return self._accept_mass()

    def update_batch(self, cpts: Sequence[CPT]) -> List[float]:
        """Consume several consecutive timesteps in one pass (e.g. a
        packed archive frame)."""
        out: List[float] = []
        for cpt in cpts:
            out.append(self.update(cpt))
        return out

    def update_span(self, cpt: CPT, span: int = 1) -> float:
        """Consume a span of ``span`` timesteps whose interior is
        irrelevant, via the composed CPT (Algorithm 4's gap jump)."""
        if span > 1:
            self._collapse_rows()
        return self.update(cpt)

    def update_independent(self, marginal: SparseDistribution,
                           span: int = 1) -> float:
        """Consume a distant timestep under the independence
        approximation (Algorithm 5): each set's mass is redistributed
        by the new marginal."""
        self.updates_performed += 1
        if not self._sets:
            return 0.0
        if span > 1:
            self._collapse_rows()
        totals = self._V.sum(axis=1)
        probs = self._scatter(marginal)
        self._classify(self._sets, np.outer(totals, probs))
        return self._accept_mass()

    def update_loop_span(self, loop_state: int, plain: CPT, cond: CPT,
                         span: int = 1) -> float:
        """Cross a run of timesteps relevant only to a positive Kleene
        loop at NFA state ``loop_state`` (§3.3.2): mass whose paths
        satisfied the loop predicate throughout (per the conditioned
        CPT) keeps the loop state; the rest collapses like a plain gap."""
        self.updates_performed += 1
        if not self._sets:
            return 0.0
        m = self._m
        qbit = 1 << loop_state
        B_plain = self._dense(plain)
        B_cond = B_plain if cond is plain else self._dense(cond)
        mids: List[int] = []
        rows: List[np.ndarray] = []
        for i, s in enumerate(self._sets):
            mid = m.collapse(s)
            if s & qbit:
                kept = self._V[i] @ B_cond
                exited = np.maximum(self._V[i] @ B_plain - kept, 0.0)
                mids.extend((mid | qbit, mid))
                rows.extend((kept, exited))
            else:
                mids.append(mid)
                rows.append(self._V[i] @ B_plain)
        self._classify(mids, np.vstack(rows))
        return self._accept_mass()


# ----------------------------------------------------------------------
# Pure-Python reference
# ----------------------------------------------------------------------
class ReferenceReg:
    """Dict-based reference implementation of Reg — same semantics as
    :class:`Reg`, no NumPy, kept for property testing."""

    def __init__(self, query: RegularQuery, space: StateSpace,
                 machine: Optional[QueryMachine] = None) -> None:
        self.query = query
        self.space = space
        self._m = machine if machine is not None else \
            QueryMachine(query, space)
        self.updates_performed = 0
        self._mass: Dict[int, Dict[int, float]] = {}

    # -- helpers -------------------------------------------------------
    def _accept_mass(self) -> float:
        return sum(
            sum(dist.values())
            for s, dist in self._mass.items() if self._m.is_accepting(s)
        )

    @staticmethod
    def _add(bucket: Dict[int, Dict[int, float]], s: int, x: int,
             p: float) -> None:
        row = bucket.setdefault(s, {})
        row[x] = row.get(x, 0.0) + p

    def _classify(self, propagated: List[Tuple[int, Dict[int, float]]]) \
            -> None:
        m = self._m
        new: Dict[int, Dict[int, float]] = {}
        for mid, dist in propagated:
            for y, p in dist.items():
                if p != 0.0:
                    self._add(new, m.step(mid, m.mask_of(y)), y, p)
        self._mass = new

    def _collapse(self) -> None:
        merged: Dict[int, Dict[int, float]] = {}
        for s, dist in self._mass.items():
            for x, p in dist.items():
                self._add(merged, self._m.collapse(s), x, p)
        self._mass = merged

    @staticmethod
    def _apply(cpt: CPT, dist: Dict[int, float]) -> Dict[int, float]:
        out: Dict[int, float] = {}
        for x, px in dist.items():
            if x in cpt:
                for y, pr in cpt.row(x).items():
                    out[y] = out.get(y, 0.0) + px * pr
        return out

    # -- API -----------------------------------------------------------
    def initialize(self, marginal: SparseDistribution) -> float:
        m = self._m
        self._mass = {}
        for x, p in marginal.items():
            self._add(self._mass, m.step(m.start_set, m.mask_of(x)), x, p)
        return self._accept_mass()

    def update(self, cpt: CPT) -> float:
        self.updates_performed += 1
        self._classify(
            [(s, self._apply(cpt, dist)) for s, dist in self._mass.items()]
        )
        return self._accept_mass()

    def update_batch(self, cpts: Sequence[CPT]) -> List[float]:
        return [self.update(cpt) for cpt in cpts]

    def update_span(self, cpt: CPT, span: int = 1) -> float:
        if span > 1:
            self._collapse()
        return self.update(cpt)

    def update_independent(self, marginal: SparseDistribution,
                           span: int = 1) -> float:
        self.updates_performed += 1
        if span > 1:
            self._collapse()
        totals = {s: sum(d.values()) for s, d in self._mass.items()}
        self._classify([
            (s, {y: total * py for y, py in marginal.items()})
            for s, total in totals.items()
        ])
        return self._accept_mass()

    def update_loop_span(self, loop_state: int, plain: CPT, cond: CPT,
                         span: int = 1) -> float:
        self.updates_performed += 1
        m = self._m
        qbit = 1 << loop_state
        propagated: List[Tuple[int, Dict[int, float]]] = []
        for s, dist in self._mass.items():
            mid = m.collapse(s)
            if s & qbit:
                kept = self._apply(cond, dist)
                full = self._apply(plain, dist)
                exited = {
                    y: max(full.get(y, 0.0) - kept.get(y, 0.0), 0.0)
                    for y in full
                }
                propagated.append((mid | qbit, kept))
                propagated.append((mid, exited))
            else:
                propagated.append((mid, self._apply(plain, dist)))
        self._classify(propagated)
        return self._accept_mass()
