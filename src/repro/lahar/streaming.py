"""Streaming (online) query evaluation over a live Markovian stream.

The archive-side access methods (:mod:`repro.access`) answer queries
over history; :class:`StreamingQuery` is the other half of Lahar's
story — queries registered *before* the data arrives, evaluated
incrementally as each timestep's CPT is appended. Each registered
query keeps one :class:`~repro.lahar.reg.Reg` instance warm; an
:class:`Alert` fires whenever a query's match probability at the
just-consumed timestep reaches its threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..probability import CPT, SparseDistribution
from ..query.regular import RegularQuery
from ..streams.schema import StateSpace
from .reg import Reg


@dataclass(frozen=True)
class Alert:
    """One threshold crossing: query ``name`` matched at timestep
    ``time`` with the given probability."""

    name: str
    time: int
    probability: float


class _Registration:
    def __init__(self, query: RegularQuery, threshold: float,
                 name: str, space: StateSpace) -> None:
        self.query = query
        self.threshold = threshold
        self.name = name
        self.reg = Reg(query, space)


class StreamingQuery:
    """A set of standing Regular queries over one incoming stream."""

    def __init__(self, space: StateSpace) -> None:
        self.space = space
        self._registrations: List[_Registration] = []
        self._time: Optional[int] = None

    @property
    def time(self) -> Optional[int]:
        """The last consumed timestep, or None before :meth:`start`."""
        return self._time

    def register(self, query: RegularQuery, threshold: float = 0.0,
                 name: Optional[str] = None) -> None:
        """Add a standing query; must be called before :meth:`start`."""
        if self._time is not None:
            raise RuntimeError(
                "register() must be called before the stream starts"
            )
        self._registrations.append(
            _Registration(query, threshold,
                          name if name is not None else query.name,
                          self.space)
        )

    def _alerts(self, probs: List[float]) -> Iterator[Alert]:
        for registration, p in zip(self._registrations, probs):
            if p >= registration.threshold:
                yield Alert(registration.name, self._time, p)

    def start(self, marginal: SparseDistribution) -> Iterator[Alert]:
        """Consume the stream's first timestep (its marginal)."""
        self._time = 0
        return self._alerts([
            r.reg.initialize(marginal) for r in self._registrations
        ])

    def advance(self, cpt: CPT) -> Iterator[Alert]:
        """Consume the next timestep via its incoming CPT."""
        if self._time is None:
            raise RuntimeError("advance() before start()")
        self._time += 1
        return self._alerts([
            r.reg.update(cpt) for r in self._registrations
        ])
