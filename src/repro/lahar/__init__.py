"""Lahar query processing: the Reg operator and streaming queries (§3)."""

from .reg import QueryMachine, ReferenceReg, Reg
from .streaming import Alert, StreamingQuery

__all__ = [
    "Alert",
    "QueryMachine",
    "ReferenceReg",
    "Reg",
    "StreamingQuery",
]
