"""The Caldera engine: catalog-backed archiving, planning, and querying."""

from .engine import Caldera
from .events import (
    ApproximationReport,
    Event,
    approximation_report,
    detect_events,
    expected_count,
    find_peaks,
    signal_correlation,
)
from .planner import PlanDecision, method_by_name, plan

__all__ = [
    "ApproximationReport",
    "Caldera",
    "Event",
    "PlanDecision",
    "approximation_report",
    "detect_events",
    "expected_count",
    "find_peaks",
    "method_by_name",
    "plan",
    "signal_correlation",
]
