"""Event extraction from query-probability signals.

A Regular query yields a probability signal ``(t, p)`` (Fig 4). The
paper's applications detect *events* from this signal with "simple
thresholding (e.g. Bob is entering an office if p > 0.3)". This module
packages that last step:

- :func:`detect_events` — hysteresis thresholding: an event starts when
  the signal rises to ``enter`` and ends when it falls below ``exit``,
  merging jittery consecutive peaks into single detections;
- :func:`find_peaks` — local maxima above a floor, with a minimum
  separation (non-maximum suppression);
- :func:`expected_count` — the expected number of matching timesteps
  (the sum of the signal), a useful aggregate for dashboards.

All functions accept either a :class:`~repro.access.base.QueryResult`
or a raw ``[(t, p), ...]`` signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..access.base import QueryResult
from ..errors import QueryError


@dataclass(frozen=True)
class Event:
    """One detected event: a maximal above-threshold excursion."""

    start: int
    end: int
    peak_time: int
    peak_probability: float

    @property
    def duration(self) -> int:
        return self.end - self.start + 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Event[t={self.start}..{self.end}, "
            f"peak p={self.peak_probability:.3f} @ {self.peak_time}]"
        )


SignalLike = Union[QueryResult, Sequence[Tuple[int, float]]]


def _signal(source: SignalLike) -> List[Tuple[int, float]]:
    if isinstance(source, QueryResult):
        pairs = source.signal
    else:
        pairs = list(source)
    out = sorted(pairs)
    for t, p in out:
        if p < -1e-9 or p > 1.0 + 1e-6:
            raise QueryError(f"signal probability out of range at t={t}: {p}")
    return out


def detect_events(
    source: SignalLike,
    enter: float = 0.3,
    exit: Optional[float] = None,
    max_gap: int = 0,
) -> List[Event]:
    """Hysteresis thresholding of a query signal into events.

    Parameters
    ----------
    enter:
        An event opens when the probability reaches this value.
    exit:
        The event stays open until the probability drops below this
        (default ``enter / 2``); hysteresis absorbs jitter around the
        threshold.
    max_gap:
        Additionally merge events separated by at most this many
        timesteps (useful when the access method emits sparse signals).
    """
    if not 0.0 < enter <= 1.0:
        raise QueryError(f"enter threshold out of (0, 1]: {enter}")
    exit = exit if exit is not None else enter / 2.0
    if not 0.0 <= exit <= enter:
        raise QueryError(f"exit threshold must lie in [0, enter]: {exit}")
    signal = _signal(source)

    events: List[Event] = []
    open_start: Optional[int] = None
    peak_t = 0
    peak_p = -1.0
    last_t: Optional[int] = None

    def close(end_t: int) -> None:
        events.append(Event(open_start, end_t, peak_t, peak_p))

    for t, p in signal:
        if open_start is None:
            if p >= enter:
                open_start = t
                peak_t, peak_p = t, p
                last_t = t
        else:
            # Sparse signals: a missing timestep means probability 0
            # there, so a hole wider than max_gap closes the event.
            if last_t is not None and t - last_t > max_gap + 1:
                close(last_t)
                open_start = None
                if p >= enter:
                    open_start = t
                    peak_t, peak_p = t, p
                    last_t = t
                continue
            if p < exit:
                close(last_t if last_t is not None else t)
                open_start = None
            else:
                if p > peak_p:
                    peak_t, peak_p = t, p
                last_t = t
    if open_start is not None and last_t is not None:
        close(last_t)
    return events


def find_peaks(
    source: SignalLike,
    floor: float = 0.0,
    min_separation: int = 1,
) -> List[Tuple[int, float]]:
    """Local maxima above ``floor``, at least ``min_separation`` apart.

    Peaks are returned chronologically; when two candidate peaks are
    closer than ``min_separation``, the higher one survives.
    """
    if min_separation < 1:
        raise QueryError(f"min_separation must be >= 1: {min_separation}")
    signal = _signal(source)
    if not signal:
        return []
    values = dict(signal)

    candidates = []
    for i, (t, p) in enumerate(signal):
        if p <= floor:
            continue
        left = values.get(t - 1, 0.0)
        right = values.get(t + 1, 0.0)
        if p >= left and p > right:
            candidates.append((t, p))

    # Non-maximum suppression by probability.
    chosen: List[Tuple[int, float]] = []
    for t, p in sorted(candidates, key=lambda tp: -tp[1]):
        if all(abs(t - ct) >= min_separation for ct, _ in chosen):
            chosen.append((t, p))
    chosen.sort()
    return chosen


def expected_count(source: SignalLike) -> float:
    """The expected number of matching timesteps: ``sum_t p(t)``."""
    return sum(p for _, p in _signal(source))


@dataclass(frozen=True)
class ApproximationReport:
    """How well an approximate signal tracks an exact one (§4.3.2)."""

    peak_found: bool
    peak_time: int
    peak_exact: float
    peak_approx: float
    rel_error_at_peak: float
    max_raw_error: float
    mean_raw_error: float


def approximation_report(
    exact: SignalLike, approx: SignalLike
) -> Optional[ApproximationReport]:
    """Compare an approximate query signal against the exact one.

    Returns ``None`` when the exact signal is empty or all-zero (there
    is no peak to judge). ``peak_found`` reports whether the approximate
    signal's argmax coincides with the exact one — the property the
    paper highlights for the semi-independent method.
    """
    exact_map = dict(_signal(exact))
    approx_map = dict(_signal(approx))
    if not exact_map or max(exact_map.values()) <= 1e-12:
        return None
    peak_t = max(exact_map, key=exact_map.get)
    approx_peak_t = (
        max(approx_map, key=approx_map.get) if approx_map else None
    )
    peak_exact = exact_map[peak_t]
    peak_approx = approx_map.get(peak_t, 0.0)
    raw_errors = [
        abs(approx_map.get(t, 0.0) - p) for t, p in exact_map.items()
    ]
    return ApproximationReport(
        peak_found=approx_peak_t == peak_t,
        peak_time=peak_t,
        peak_exact=peak_exact,
        peak_approx=peak_approx,
        rel_error_at_peak=abs(peak_approx - peak_exact) / peak_exact,
        max_raw_error=max(raw_errors),
        mean_raw_error=sum(raw_errors) / len(raw_errors),
    )


def signal_correlation(a: SignalLike, b: SignalLike) -> float:
    """Pearson correlation of two signals over the union of timesteps.

    Used to compare an approximate signal (semi-independent) against the
    exact one; returns 1.0 for identical signals, 0.0 when either is
    constant.
    """
    da = dict(_signal(a))
    db = dict(_signal(b))
    times = sorted(set(da) | set(db))
    if not times:
        return 0.0
    xs = [da.get(t, 0.0) for t in times]
    ys = [db.get(t, 0.0) for t in times]
    n = len(times)
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx <= 0.0 or vy <= 0.0:
        return 0.0
    return cov / (vx * vy) ** 0.5
