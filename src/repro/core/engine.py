"""Caldera: the system facade.

One :class:`Caldera` instance manages a storage environment containing
archived Markovian streams, their secondary indexes, dimension tables,
and the catalog — and executes Regular event queries through the access
methods of :mod:`repro.access`, either auto-planned (Fig 5b) or pinned
explicitly.

Typical use::

    with Caldera("/data/caldera") as db:
        db.register_dimension_table("LocationType", plan.dimension_table())
        db.archive(stream, layout="separated", mc_alpha=None,
                   join_tables=("LocationType",))
        q = db.parse("location=H1 -> location=O300")
        result = db.query(stream.name, q)            # planner picks Alg 2
        topk = db.query(stream.name, q, k=3)         # Alg 3
        print(result.top(1), result.stats.summary())
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..access import QueryContext, QueryResult
from ..errors import CatalogError, PlanningError
from ..indexes import (
    build_btc,
    build_btp,
    build_mc,
    open_btc,
    open_btp,
    open_mc,
)
from ..query import RegularQuery, parse_query
from ..query.predicates import Predicate
from ..storage import DEFAULT_PAGE_SIZE, DEFAULT_POOL_PAGES, StorageEnvironment
from ..streams import (
    Catalog,
    Layout,
    MarkovianStream,
    StreamMeta,
    StreamReader,
    open_reader,
    write_stream,
)
from .planner import PlanDecision, method_by_name, plan


class Caldera:
    """A Caldera database over one storage directory."""

    def __init__(
        self,
        path: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        pool_pages: int = DEFAULT_POOL_PAGES,
    ) -> None:
        self.env = StorageEnvironment(path, page_size=page_size,
                                      pool_pages=pool_pages)
        self.catalog = Catalog(self.env)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self.env.close()

    def __enter__(self) -> "Caldera":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def stats(self):
        """The environment-wide I/O counters."""
        return self.env.stats

    def drop_caches(self) -> None:
        """Flush and evict all buffer pools (cold-cache measurements)."""
        self.env.drop_caches()

    # -- dimension tables ----------------------------------------------------
    def register_dimension_table(self, name: str, mapping: Dict,
                                 replace: bool = False) -> None:
        """Register a star-schema dimension table (§3.4.1)."""
        self.catalog.register_dimension(name, mapping, replace=replace)

    def dimension_tables(self) -> Dict[str, Dict]:
        return {
            name: self.catalog.dimension(name)
            for name in self.catalog.list_dimensions()
        }

    # -- archiving ------------------------------------------------------------
    def archive(
        self,
        stream: MarkovianStream,
        layout: Union[Layout, str] = Layout.SEPARATED,
        btc: bool = True,
        btp: bool = True,
        mc_alpha: Optional[int] = None,
        join_tables: Sequence[str] = (),
        conditioned_predicates: Sequence[Predicate] = (),
    ) -> StreamMeta:
        """Write a stream to disk and build its indexes.

        Parameters
        ----------
        layout:
            Physical layout (§3.4.2), ``separated`` by default (the
            paper's winner on RFID data).
        btc / btp:
            Build the chronological / probability secondary indexes over
            every stream attribute.
        mc_alpha:
            Build the MC index with this branching factor (None = skip).
        join_tables:
            Dimension tables to additionally build join indexes for, on
            every stream attribute whose values the table maps.
        conditioned_predicates:
            Positive Kleene loop predicates to build conditioned MC
            indexes for (§3.3.2).
        """
        layout = Layout.parse(layout)
        if self.catalog.has_stream(stream.name):
            raise CatalogError(f"stream {stream.name!r} is already archived")
        write_stream(self.env, stream, layout)
        meta = StreamMeta(stream.name, len(stream), layout, stream.space)
        dimensions = self.dimension_tables()

        indexed_attrs: List[str] = []
        if btc or btp:
            indexed_attrs.extend(stream.space.attributes)
            for table in join_tables:
                if table not in dimensions:
                    raise CatalogError(f"unknown dimension table {table!r}")
                for attr in stream.space.attributes:
                    vocab = stream.space.vocabulary(attr)
                    if any(v in dimensions[table] for v in vocab.values()):
                        indexed_attrs.append(f"{attr}/{table}")

        pairs = [(t, stream.marginals[t]) for t in range(len(stream))]
        for attr in indexed_attrs:
            if btc:
                build_btc(self.env, stream.name, stream.space, attr, pairs,
                          dimensions=dimensions)
                meta.indexes[f"btc:{attr}"] = {}
            if btp:
                build_btp(self.env, stream.name, stream.space, attr, pairs,
                          dimensions=dimensions)
                meta.indexes[f"btp:{attr}"] = {}

        if mc_alpha is not None and len(stream) > 2:
            reader = open_reader(self.env, stream.name, stream.space,
                                 len(stream), layout)
            build_mc(self.env, stream.name, reader, alpha=mc_alpha)
            meta.indexes["mc"] = {"alpha": mc_alpha}
            for predicate in conditioned_predicates:
                build_mc(self.env, stream.name, reader, alpha=mc_alpha,
                         predicate=predicate, space=stream.space)
                meta.indexes[f"mcc:{predicate.signature()}"] = {
                    "alpha": mc_alpha
                }

        self.catalog.register_stream(meta)
        return meta

    def drop_stream(self, stream_name: str) -> None:
        """Remove an archived stream and every file belonging to it
        (data trees, secondary indexes, MC indexes) plus its catalog
        entry."""
        if not self.catalog.has_stream(stream_name):
            raise CatalogError(f"unknown stream {stream_name!r}")
        prefix = stream_name + "__"
        for name in list(self.env.list_trees()):
            if name.startswith(prefix):
                self.env.drop_tree(name)
        self.catalog.drop_stream(stream_name)

    def build_conditioned_mc(self, stream_name: str, predicate: Predicate,
                             alpha: Optional[int] = None) -> None:
        """Build a conditioned MC index for an already-archived stream."""
        meta = self.catalog.stream_meta(stream_name)
        if alpha is None:
            alpha = meta.indexes.get("mc", {}).get("alpha", 2)
        reader = self.reader(stream_name)
        build_mc(self.env, stream_name, reader, alpha=alpha,
                 predicate=predicate, space=meta.space)
        meta.indexes[f"mcc:{predicate.signature()}"] = {"alpha": alpha}
        self.catalog.update_stream(meta)

    # -- access ---------------------------------------------------------------
    def stream_names(self) -> List[str]:
        return self.catalog.list_streams()

    def stream_meta(self, name: str) -> StreamMeta:
        return self.catalog.stream_meta(name)

    def reader(self, name: str) -> StreamReader:
        meta = self.catalog.stream_meta(name)
        return open_reader(self.env, name, meta.space, meta.length,
                           meta.layout)

    def parse(self, text: str) -> RegularQuery:
        """Parse query text against this database's dimension tables."""
        return parse_query(text, dimensions=self.dimension_tables())

    def context(
        self,
        stream_name: str,
        query: Union[RegularQuery, str],
        mc_min_level: int = 1,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> QueryContext:
        """Assemble a query context with every available index opened."""
        if isinstance(query, str):
            query = self.parse(query)
        meta = self.catalog.stream_meta(stream_name)
        dimensions = self.dimension_tables()
        reader = self.reader(stream_name)
        btc = {}
        btp = {}
        mc = None
        mc_conditioned = {}
        for key, params in meta.indexes.items():
            kind, _, detail = key.partition(":")
            if kind == "btc":
                btc[detail] = open_btc(self.env, stream_name, meta.space,
                                       detail, dimensions=dimensions)
            elif kind == "btp":
                btp[detail] = open_btp(self.env, stream_name, meta.space,
                                       detail, dimensions=dimensions)
            elif kind == "mc":
                mc = open_mc(self.env, stream_name,
                             alpha=params.get("alpha", 2), length=meta.length)
            elif kind == "mcc":
                # Conditioned indexes are matched to query loops by
                # predicate signature.
                for link in query.links:
                    if link.has_positive_loop and \
                            link.loop.signature() == detail:
                        mc_conditioned[detail] = open_mc(
                            self.env, stream_name,
                            alpha=params.get("alpha", 2),
                            length=meta.length, predicate=link.loop,
                            space=meta.space,
                        )
        return QueryContext(
            reader=reader, query=query, btc=btc, btp=btp, mc=mc,
            mc_conditioned=mc_conditioned, mc_min_level=mc_min_level,
            start=start, stop=stop,
        )

    def explain(
        self,
        stream_name: str,
        query: Union[RegularQuery, str],
        k: Optional[int] = None,
        threshold: Optional[float] = None,
        approximate: bool = False,
        use_conditioned: bool = False,
    ) -> PlanDecision:
        """The planner's decision for a query, without executing it."""
        ctx = self.context(stream_name, query)
        return plan(ctx, k=k, threshold=threshold, approximate=approximate,
                    use_conditioned=use_conditioned,
                    registry=self.env.metrics, tracer=self.env.tracer())

    def query(
        self,
        stream_name: str,
        query: Union[RegularQuery, str],
        method: str = "auto",
        k: Optional[int] = None,
        threshold: Optional[float] = None,
        approximate: bool = False,
        use_conditioned: bool = False,
        mc_min_level: int = 1,
        cold: bool = False,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> QueryResult:
        """Execute a Regular query on an archived stream.

        Parameters
        ----------
        method:
            ``auto`` (planner, Fig 5b) or one of
            ``naive``/``btree``/``topk``/``mc``/``semi``.
        k / threshold:
            Top-k or threshold retrieval. With a non-top-k method the
            full signal is computed and the top-k/threshold filter
            applied afterwards (the Sort operator of Fig 5a).
        approximate:
            Allow the planner to choose the semi-independent method.
        cold:
            Drop all buffer-pool caches first, so the run measures
            physical I/O from a cold start.
        start / stop:
            Restrict the query to matches ending in ``[start, stop)``
            (fixed-length matches must lie entirely inside the window).
        """
        ctx = self.context(stream_name, query, mc_min_level=mc_min_level,
                           start=start, stop=stop)
        if method == "auto":
            decision = plan(ctx, k=k, threshold=threshold,
                            approximate=approximate,
                            use_conditioned=use_conditioned,
                            registry=self.env.metrics,
                            tracer=self.env.tracer())
            access = decision.method
        else:
            access = method_by_name(name=method, k=k, threshold=threshold,
                                    use_conditioned=use_conditioned)
        if cold:
            self.drop_caches()
        result = access.run(ctx)
        if access.name != "topk":
            # Apply the Sort/Top operator downstream of Ex when requested.
            if threshold is not None:
                result.signal = result.above(threshold)
            elif k is not None:
                result.signal = sorted(result.top(k))
        return result

    def query_all(
        self,
        query: Union[RegularQuery, str],
        streams: Optional[Sequence[str]] = None,
        **kwargs,
    ) -> Dict[str, QueryResult]:
        """Run one query over several archived streams.

        Useful for fleet questions ("when did *anyone* visit room X?"):
        Regular queries are defined per stream (§3.4.2), so the engine
        fans the query out and returns per-stream results keyed by
        stream name. Extra keyword arguments pass through to
        :meth:`query`.
        """
        names = list(streams) if streams is not None else self.stream_names()
        return {name: self.query(name, query, **kwargs) for name in names}

    # -- reporting --------------------------------------------------------------
    def data_density(self, stream_name: str,
                     query: Union[RegularQuery, str]) -> float:
        """The stream's data density w.r.t. a query (§4.1.2): the
        fraction of timesteps relevant to any query predicate."""
        if isinstance(query, str):
            query = self.parse(query)
        meta = self.catalog.stream_meta(stream_name)
        ctx = self.context(stream_name, query)
        relevant = set()
        from ..access import collect_relevant_events

        try:
            events = collect_relevant_events(ctx, query.indexable_predicates())
            relevant = {t for t, _ in events}
        except PlanningError:
            reader = self.reader(stream_name)
            sets = query.relevant_state_sets(meta.space)
            union = frozenset().union(*sets) if sets else frozenset()
            for t, marginal in reader.scan_marginals():
                if any(s in marginal for s in union):
                    relevant.add(t)
        return len(relevant) / meta.length if meta.length else 0.0

    def storage_report(self) -> Dict[str, int]:
        """On-disk bytes per database file (streams and indexes)."""
        return {
            name: self.env.file_size(name) for name in self.env.list_trees()
        }
