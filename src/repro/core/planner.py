"""The access-method planner: Figure 5(b)'s decision space.

Given a query and the indexes that exist, pick the Ex implementation:

- fixed-length + top-k/threshold + BT_P coverage  -> top-k B+Tree (Alg 3)
- fixed-length + any BT_C coverage               -> B+Tree (Alg 2)
- variable-length + full BT_C coverage + MC index -> MC index (Alg 4)
- variable-length + full BT_C coverage, approximate allowed
                                                  -> semi-independent (Alg 5)
- otherwise                                       -> naive scan (Alg 1)

The paper's guidance is encoded here: the MC method "is applicable only
when all stream attributes are indexed, and when the MC index is
available; if either condition is not met ... the B+Tree can be applied,
but only to fixed-length queries" (§4.3.1), and a naive scan is the only
remaining option (§3.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..access import (
    AccessMethod,
    FixedBTree,
    FixedTopK,
    NaiveScan,
    QueryContext,
    SemiIndependent,
    VariableMC,
)
from ..errors import PlanningError


@dataclass
class PlanDecision:
    """The chosen access method and the reason it was chosen."""

    method: AccessMethod
    reason: str

    @property
    def name(self) -> str:
        return self.method.name


def plan(
    ctx: QueryContext,
    k: Optional[int] = None,
    threshold: Optional[float] = None,
    approximate: bool = False,
    use_conditioned: bool = False,
    registry=None,
    tracer=None,
) -> PlanDecision:
    """Choose an access method for the context (Fig 5b).

    A naive-scan fallback is legal but expensive, so it is never
    silent: every fallback decision bumps the
    ``planner.fallbacks{reason=...}`` counter on ``registry`` and emits
    a ``planner.fallback`` warning span on ``tracer`` (the engine
    passes its environment's registry and tracer).
    """
    query = ctx.query
    wants_topk = k is not None or threshold is not None

    def fallback(method: AccessMethod, reason_label: str,
                 reason_text: str) -> PlanDecision:
        if registry is not None:
            registry.counter("planner.fallbacks",
                             reason=reason_label).inc()
        if tracer is not None:
            with tracer.span("planner.fallback", level="warning",
                             reason=reason_label, query=query.name,
                             method=method.name):
                pass
        return PlanDecision(method, reason_text)

    if query.is_fixed_length:
        predicates = query.predicates()
        btp_full = all(ctx.btp_terms_for(p) is not None for p in predicates)
        btc_any = any(ctx.btc_terms_for(p) is not None for p in predicates)
        if wants_topk and btp_full:
            return PlanDecision(
                FixedTopK(k=k if k is not None else 1, threshold=threshold),
                "fixed-length top-k query with full BT_P coverage",
            )
        if btc_any:
            reason = "fixed-length query with BT_C coverage"
            if wants_topk:
                reason += " (no BT_P: B+Tree then sort)"
            return PlanDecision(FixedBTree(), reason)
        return fallback(NaiveScan(), "no_btc_coverage",
                        "no usable index: full scan")

    # Variable-length.
    covered = True
    for predicate in query.indexable_predicates():
        if ctx.btc_terms_for(predicate) is None:
            covered = False
            break
    if covered and ctx.mc is not None:
        conditioned_ok = use_conditioned and _conditioned_available(ctx)
        return PlanDecision(
            VariableMC(use_conditioned=conditioned_ok),
            "variable-length query with full BT_C coverage and MC index",
        )
    if covered and approximate:
        return fallback(
            SemiIndependent(), "no_mc_index",
            "variable-length query without MC index: approximate "
            "semi-independent method",
        )
    if covered:
        return fallback(
            NaiveScan(), "no_mc_index",
            "variable-length query without MC index: full scan",
        )
    return fallback(
        NaiveScan(), "no_btc_coverage",
        "variable-length query without full index coverage: full scan "
        "(§3.4.1)",
    )


def _conditioned_available(ctx: QueryContext) -> bool:
    for link in ctx.query.links:
        if link.has_positive_loop:
            if link.loop.signature() not in ctx.mc_conditioned:
                return False
    return ctx.query.has_positive_loops


def method_by_name(
    name: str,
    k: Optional[int] = None,
    threshold: Optional[float] = None,
    use_conditioned: bool = False,
) -> AccessMethod:
    """Explicit method selection (benchmarks pin methods by name)."""
    if name == "naive":
        return NaiveScan()
    if name == "btree":
        return FixedBTree()
    if name == "topk":
        return FixedTopK(k=k if k is not None else 1, threshold=threshold)
    if name == "mc":
        return VariableMC(use_conditioned=use_conditioned)
    if name == "semi":
        return SemiIndependent()
    raise PlanningError(
        f"unknown access method {name!r}; expected one of "
        "naive/btree/topk/mc/semi"
    )
