"""Counters, gauges, and log-scale histograms behind one registry.

The registry is the passive half of the observability layer: storage
components grab their instruments once at construction time
(``registry.counter("pool.hits")``) and bump them on the hot path with a
single attribute increment. Instruments never touch
:class:`~repro.storage.stats.IOStats` — the cost model the benchmarks
measure — so enabling metrics changes measured page-read counts by
exactly zero.

Two registries share one interface:

- :class:`MetricsRegistry` — the real thing; every instrument is
  created on first use and lives for the registry's lifetime.
- :class:`NullRegistry` — hands out shared no-op instruments, for
  callers that want instrumentation compiled out of the picture.

Instruments are keyed by name plus optional labels, e.g.
``registry.counter("btree.splits", tree="stream_data")`` keys as
``btree.splits{tree=stream_data}`` — the per-tree counters the B+ tree
uses.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
]


def _key(name: str, labels: Dict[str, object]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A base-2 log-scale histogram of non-negative observations.

    Each positive observation lands in the bucket whose upper edge is
    the smallest power of two ``>= value`` (zeros get their own bucket),
    so forty buckets span nanoseconds to hours and one-page to
    million-page costs alike. Percentile estimates quote the bucket's
    upper edge clamped to the observed ``max`` — exact enough for the
    order-of-magnitude latency and per-op page-read distributions the
    benchmarks report.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        # exponent -> count; zeros live under the key None.
        self._buckets: Dict[Optional[int], int] = {}

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"{self.name}: negative observation {value!r}")
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value == 0:
            exponent: Optional[int] = None
        else:
            mantissa, exponent = math.frexp(value)  # value = m * 2**e
            if mantissa == 0.5:  # exact powers of two bound their own bucket
                exponent -= 1
        self._buckets[exponent] = self._buckets.get(exponent, 0) + 1

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> Iterator[Tuple[float, int]]:
        """``(upper_edge, count)`` pairs in ascending edge order."""
        for exponent in sorted(
            self._buckets, key=lambda e: -math.inf if e is None else e
        ):
            edge = 0.0 if exponent is None else float(2 ** exponent)
            yield edge, self._buckets[exponent]

    def percentile(self, p: float) -> float:
        """Estimated value at quantile ``p`` in [0, 1]."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"percentile {p} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = p * self.count
        seen = 0
        for edge, count in self.buckets():
            seen += count
            if seen >= rank:
                return min(edge, self.max if self.max is not None else edge)
        return self.max if self.max is not None else 0.0

    def summary(self) -> Dict:
        """The JSON-ready digest stored in run manifests."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "buckets": [[edge, count] for edge, count in self.buckets()],
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Named instruments, created on first use and never discarded."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(key)
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(key)
        return instrument

    def histogram(self, name: str, **labels) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(key)
        return instrument

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """All instrument values, JSON-ready (manifest ``metrics``)."""
        return {
            "counters": {
                key: c.value for key, c in sorted(self._counters.items())
            },
            "gauges": {
                key: g.value for key, g in sorted(self._gauges.items())
            },
            "histograms": {
                key: h.summary()
                for key, h in sorted(self._histograms.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms)"
        )


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, n: float = 1.0) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry:
    """The off switch: shared do-nothing instruments, zero retention."""

    enabled = False

    _COUNTER = _NullCounter("null")
    _GAUGE = _NullGauge("null")
    _HISTOGRAM = _NullHistogram("null")

    def counter(self, name: str, **labels) -> Counter:
        return self._COUNTER

    def gauge(self, name: str, **labels) -> Gauge:
        return self._GAUGE

    def histogram(self, name: str, **labels) -> Histogram:
        return self._HISTOGRAM

    def snapshot(self) -> Dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def __repr__(self) -> str:
        return "NullRegistry()"
