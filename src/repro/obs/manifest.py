"""Structured run manifests and the JSONL event sink.

A :class:`RunManifest` is the machine-readable record of one benchmark
(or query) run: run id, git revision, configuration, host environment,
the finished span tree (wall time + I/O deltas per span), and the
registry's counter/gauge/histogram snapshot. Benchmarks write one
manifest per run into ``benchmarks/results/`` next to their text/JSON
reports; ``python -m repro.obs.report`` pretty-prints one and diffs two
— the one-command perf-regression check between PRs.

:class:`JsonlSink` is the streaming half: one JSON object per line,
appended as events happen (span completions, custom marks), so a run
killed halfway still leaves its trace on disk.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["JsonlSink", "RunManifest", "environment_info", "git_revision"]

MANIFEST_VERSION = 1


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit hash, or None outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def environment_info() -> Dict[str, str]:
    """Host facts that make two manifests comparable (or not)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "executable": sys.executable,
    }


@dataclass
class RunManifest:
    """Everything needed to interpret one run's numbers later."""

    name: str
    run_id: str
    created: str
    git_rev: Optional[str] = None
    config: Dict = field(default_factory=dict)
    environment: Dict = field(default_factory=dict)
    spans: List[Dict] = field(default_factory=list)
    metrics: Dict = field(default_factory=dict)
    extra: Dict = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    # ------------------------------------------------------------------
    @classmethod
    def new(cls, name: str, config: Optional[Dict] = None) -> "RunManifest":
        """A manifest stamped with run id, git rev, and host facts."""
        return cls(
            name=name,
            run_id=uuid.uuid4().hex[:12],
            created=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            git_rev=git_revision(),
            config=dict(config or {}),
            environment=environment_info(),
        )

    def finish(self, tracer=None, registry=None) -> "RunManifest":
        """Attach a tracer's span tree and a registry snapshot."""
        if tracer is not None:
            self.spans = tracer.to_dicts()
        if registry is not None:
            self.metrics = registry.snapshot()
        return self

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "version": self.version,
            "name": self.name,
            "run_id": self.run_id,
            "created": self.created,
            "git_rev": self.git_rev,
            "config": self.config,
            "environment": self.environment,
            "spans": self.spans,
            "metrics": self.metrics,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunManifest":
        return cls(
            name=data["name"],
            run_id=data["run_id"],
            created=data["created"],
            git_rev=data.get("git_rev"),
            config=data.get("config", {}),
            environment=data.get("environment", {}),
            spans=data.get("spans", []),
            metrics=data.get("metrics", {}),
            extra=data.get("extra", {}),
            version=data.get("version", MANIFEST_VERSION),
        )

    def save(self, path: str) -> str:
        """Write the manifest as pretty JSON; returns the path."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        return self.metrics.get("counters", {})

    def histograms(self) -> Dict[str, Dict]:
        return self.metrics.get("histograms", {})

    def __repr__(self) -> str:
        return (
            f"RunManifest({self.name!r}, run_id={self.run_id}, "
            f"spans={len(self.spans)})"
        )


class JsonlSink:
    """Append-only JSON-lines event stream (one object per line)."""

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "w")

    def emit(self, record: Dict) -> None:
        if self._handle is None:
            raise ValueError(f"sink {self.path!r} is closed")
        json.dump(record, self._handle, sort_keys=True)
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def read(path: str) -> List[Dict]:
        """All records of a JSONL file (skips blank lines)."""
        records = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records
