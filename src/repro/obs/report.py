"""Render and diff run manifests.

::

    python -m repro.obs.report RUN.manifest.json           # pretty-print
    python -m repro.obs.report OLD.manifest.json NEW.manifest.json

One argument prints the run: header, span tree with per-span wall time
and I/O deltas, counters, and histogram percentiles. Two arguments diff
them — counter deltas and histogram percentile shifts — which makes
"did this PR change the cost model?" a one-command check.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .manifest import RunManifest

# Span I/O columns, in display order (matches IOStats fields).
_IO_FIELDS = [
    ("logical_reads", "lr"),
    ("physical_reads", "pr"),
    ("logical_writes", "lw"),
    ("physical_writes", "pw"),
    ("evictions", "ev"),
    ("flushes", "fl"),
]


def _fmt_io(io: Optional[Dict[str, int]]) -> str:
    if not io:
        return ""
    parts = [
        f"{short}={io[field]}"
        for field, short in _IO_FIELDS
        if io.get(field)
    ]
    return " ".join(parts) if parts else "io=0"


def _print_span(span: Dict, out, depth: int = 0) -> None:
    indent = "  " * depth
    attrs = span.get("attrs") or {}
    attr_text = (
        " [" + ", ".join(f"{k}={v}" for k, v in attrs.items()) + "]"
        if attrs else ""
    )
    io_text = _fmt_io(span.get("io"))
    print(
        f"{indent}{span['name']}{attr_text}: "
        f"{span.get('wall_ms', 0.0):.3f} ms"
        + (f"  ({io_text})" if io_text else ""),
        file=out,
    )
    for child in span.get("children", []):
        _print_span(child, out, depth + 1)


def show(manifest: RunManifest, out) -> None:
    print(f"run {manifest.run_id}  [{manifest.name}]", file=out)
    print(f"  created: {manifest.created}", file=out)
    print(f"  git rev: {manifest.git_rev or '(unknown)'}", file=out)
    env = manifest.environment
    if env:
        print(
            f"  host:    {env.get('implementation', '?')} "
            f"{env.get('python', '?')} on {env.get('platform', '?')}",
            file=out,
        )
    if manifest.config:
        print("  config:", file=out)
        for key in sorted(manifest.config):
            print(f"    {key} = {manifest.config[key]}", file=out)

    if manifest.spans:
        print("\nspans (wall ms, I/O delta over extent):", file=out)
        for span in manifest.spans:
            _print_span(span, out, depth=1)

    counters = manifest.counters()
    if counters:
        print("\ncounters:", file=out)
        width = max(len(k) for k in counters)
        for key in sorted(counters):
            print(f"  {key.ljust(width)}  {counters[key]}", file=out)

    histograms = manifest.histograms()
    if histograms:
        print("\nhistograms (count / mean / p50 / p90 / p99 / max):",
              file=out)
        for key in sorted(histograms):
            h = histograms[key]
            print(
                f"  {key}: n={h['count']} mean={h['mean']:.3f} "
                f"p50={h['p50']:.3f} p90={h['p90']:.3f} "
                f"p99={h['p99']:.3f} max={h['max']:.3f}",
                file=out,
            )


def _top_spans(manifest: RunManifest) -> Dict[str, Dict]:
    """Root spans and their direct children, keyed by path."""
    out: Dict[str, Dict] = {}
    for root in manifest.spans:
        out.setdefault(root["name"], root)
        for child in root.get("children", []):
            out.setdefault(f"{root['name']}/{child['name']}", child)
    return out


def diff(old: RunManifest, new: RunManifest, out) -> int:
    """Print counter/histogram/span deltas; returns 1 if any counter
    moved (useful as a CI cost-regression signal), else 0."""
    print(
        f"diff {old.run_id} ({old.name}, {old.git_rev or '?'}) "
        f"-> {new.run_id} ({new.name}, {new.git_rev or '?'})",
        file=out,
    )
    changed = 0

    old_counters, new_counters = old.counters(), new.counters()
    keys = sorted(set(old_counters) | set(new_counters))
    rows: List[str] = []
    for key in keys:
        a, b = old_counters.get(key, 0), new_counters.get(key, 0)
        if a == b:
            continue
        changed += 1
        pct = f" ({(b - a) / a * 100.0:+.1f}%)" if a else ""
        rows.append(f"  {key}: {a} -> {b}  [{b - a:+d}]{pct}")
    print(f"\ncounters ({changed} changed, {len(keys) - changed} same):",
          file=out)
    for row in rows:
        print(row, file=out)

    old_hists, new_hists = old.histograms(), new.histograms()
    shared = sorted(set(old_hists) & set(new_hists))
    if shared:
        print("\nhistograms (old -> new):", file=out)
        for key in shared:
            a, b = old_hists[key], new_hists[key]
            print(
                f"  {key}: n {a['count']} -> {b['count']}, "
                f"p50 {a['p50']:.3f} -> {b['p50']:.3f}, "
                f"p99 {a['p99']:.3f} -> {b['p99']:.3f}",
                file=out,
            )

    old_spans, new_spans = _top_spans(old), _top_spans(new)
    shared_spans = [k for k in old_spans if k in new_spans]
    if shared_spans:
        print("\nspans (wall ms, logical/physical reads old -> new):",
              file=out)
        for key in shared_spans:
            a, b = old_spans[key], new_spans[key]
            line = (
                f"  {key}: {a.get('wall_ms', 0.0):.1f} -> "
                f"{b.get('wall_ms', 0.0):.1f} ms"
            )
            a_io, b_io = a.get("io") or {}, b.get("io") or {}
            if a_io or b_io:
                line += (
                    f", lr {a_io.get('logical_reads', 0)} -> "
                    f"{b_io.get('logical_reads', 0)}"
                    f", pr {a_io.get('physical_reads', 0)} -> "
                    f"{b_io.get('physical_reads', 0)}"
                )
            print(line, file=out)

    return 1 if changed else 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro.obs.report",
        description="Pretty-print one run manifest, or diff two.",
    )
    parser.add_argument("manifest", help="a RunManifest JSON file")
    parser.add_argument("other", nargs="?", default=None,
                        help="a second manifest to diff against")
    parser.add_argument("--fail-on-change", action="store_true",
                        help="exit 1 when a diff shows counter changes")
    args = parser.parse_args(argv)

    try:
        first = RunManifest.load(args.manifest)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load {args.manifest}: {exc}", file=sys.stderr)
        return 2
    if args.other is None:
        show(first, out)
        return 0
    try:
        second = RunManifest.load(args.other)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load {args.other}: {exc}", file=sys.stderr)
        return 2
    moved = diff(first, second, out)
    return moved if args.fail_on_change else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
