"""Observability: metrics, span tracing, and structured run manifests.

The measurement backbone of the reproduction. The repo's comparable
cost metric is page reads, not wall-clock (DESIGN.md substitution 1),
so every layer reports through this package:

- :mod:`~repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and base-2 log-scale histograms (plus a no-op
  :class:`NullRegistry`); storage components keep instrument references
  and bump them on the hot path.
- :mod:`~repro.obs.tracing` — a :class:`Tracer` of nested spans, each
  capturing wall time and the :class:`~repro.storage.stats.IOStats`
  delta over its extent.
- :mod:`~repro.obs.manifest` — :class:`RunManifest` (run id, git rev,
  config, environment, span tree, metric snapshot) and
  :class:`JsonlSink` for streaming span events.
- :mod:`~repro.obs.report` — ``python -m repro.obs.report`` renders one
  manifest or diffs two (counter deltas, percentile shifts).

Instruments observe; they never read or write pages. Enabling the full
registry changes a workload's measured logical/physical read counts by
exactly zero.
"""

from .manifest import JsonlSink, RunManifest, environment_info, git_revision
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, NullRegistry
from .tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NullRegistry",
    "RunManifest",
    "Span",
    "Tracer",
    "environment_info",
    "git_revision",
]
