"""Nested spans that capture wall time *and* the I/O-counter delta.

A span brackets one unit of work (a benchmark phase, one query, one
index build). On entry it snapshots the bound
:class:`~repro.storage.stats.IOStats`; on exit it records the wall time
and the counter delta over its extent — so "this lookup cost 3 logical
reads, 1 physical" falls out of the trace without any manual
snapshot/delta bookkeeping at call sites.

Spans nest: a child's cost is included in its parent's delta (the
counters are monotonic), and ``Span.self_io()`` subtracts the children
back out when exclusive cost matters. The tracer keeps the finished
roots; :meth:`Tracer.to_dicts` renders the tree JSON-ready for a
:class:`~repro.obs.manifest.RunManifest` or a JSONL sink.

Observation only: a span never performs page I/O itself, so tracing a
workload changes its measured logical/physical read counts by zero.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import asdict
from typing import Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One timed extent with its I/O delta and child spans."""

    __slots__ = (
        "name", "attrs", "children", "wall_ms", "io",
        "_t0", "_io_source", "_io_snap",
    )

    def __init__(self, name: str, attrs: Dict, io_source) -> None:
        self.name = name
        self.attrs = attrs
        self.children: List["Span"] = []
        self.wall_ms: float = 0.0
        self.io: Optional[Dict[str, int]] = None
        self._io_source = io_source
        self._io_snap = None

    # ------------------------------------------------------------------
    def _start(self) -> None:
        if self._io_source is not None:
            self._io_snap = self._io_source.snapshot()
        self._t0 = time.perf_counter()

    def _finish(self) -> None:
        self.wall_ms = (time.perf_counter() - self._t0) * 1000.0
        if self._io_source is not None:
            self.io = asdict(self._io_source.delta(self._io_snap))
        self._io_source = None
        self._io_snap = None

    # ------------------------------------------------------------------
    def self_io(self) -> Optional[Dict[str, int]]:
        """This span's I/O delta minus its children's (exclusive cost).

        Children traced against a *different* counter set are skipped:
        their deltas are not part of this span's totals.
        """
        if self.io is None:
            return None
        out = dict(self.io)
        for child in self.children:
            if child.io is None or child.io.keys() != out.keys():
                continue
            for field in out:
                out[field] -= child.io[field]
        return out

    def to_dict(self) -> Dict:
        out: Dict = {"name": self.name, "wall_ms": round(self.wall_ms, 3)}
        if self.attrs:
            out["attrs"] = self.attrs
        if self.io is not None:
            out["io"] = self.io
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, wall_ms={self.wall_ms:.3f}, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Builds a span tree; optionally feeds latencies into a registry.

    ``io`` is the default :class:`IOStats` every span deltas against; a
    per-span override (``tracer.span(name, io=env.stats)``) serves
    benchmarks that open a fresh environment per phase. With a
    ``registry``, each finished span also lands in the log-scale
    histogram ``span.<name>.ms`` — percentile summaries for free.
    """

    def __init__(self, io=None, registry=None, sink=None) -> None:
        self._io = io
        self._registry = registry
        self.sink = sink
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, io=None, **attrs) -> Iterator[Span]:
        """Open a nested span; use as ``with tracer.span("phase"):``."""
        source = io if io is not None else self._io
        node = Span(name, attrs, source)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        node._start()
        try:
            yield node
        finally:
            node._finish()
            self._stack.pop()
            if self._registry is not None:
                self._registry.histogram(f"span.{name}.ms").observe(
                    node.wall_ms
                )
            if self.sink is not None:
                record = node.to_dict()
                # One line per span: children arrive as their own lines
                # (they finish first), so drop the nested copies.
                record.pop("children", None)
                record["depth"] = len(self._stack)
                self.sink.emit({"type": "span", **record})

    # ------------------------------------------------------------------
    @property
    def active(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def to_dicts(self) -> List[Dict]:
        """The finished span forest, JSON-ready."""
        return [root.to_dict() for root in self.roots]

    def __repr__(self) -> str:
        return f"Tracer(roots={len(self.roots)}, depth={len(self._stack)})"
