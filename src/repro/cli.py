"""Command-line interface to Caldera.

::

    python -m repro demo [DB]          archive synthetic routine streams and
                                       smoke-test Alg 1 vs Alg 2
    python -m repro info DB            list streams, indexes, file sizes
    python -m repro import DB S.json   import a JSON stream and index it
    python -m repro export DB NAME out.json
    python -m repro query DB NAME "location=H1 -> location=O300" [options]
    python -m repro plan DB NAME QUERY     show the planner's choice
    python -m repro density DB NAME QUERY  data density w.r.t. a query
    python -m repro fsck DB            verify checksums and tree structure

The query subcommand prints the signal's top matches, optional detected
events, and the run's cost (wall time + page I/O).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .errors import ReproError

# The engine (repro.core) pulls in every layer of the stack; while some
# layers are still unbuilt, importing it at module scope would make even
# ``python -m repro --help`` crash. Subcommands import it lazily and
# main() turns a missing repro.* module into a clear diagnostic.


def _engine():
    from .core import Caldera

    return Caldera


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Caldera: event queries on archived Markovian streams",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="build a tiny demo archive of "
                          "synthetic streams and smoke-test the access "
                          "methods (Alg 1 vs Alg 2)")
    demo.add_argument("db", nargs="?", default=None,
                      help="database directory (default: a temp dir, "
                      "deleted afterwards)")
    demo.add_argument("--people", type=int, default=2,
                      help="number of streams to simulate")
    demo.add_argument("--snippets", type=int, default=20,
                      help="snippets per stream (30 timesteps each)")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--layout", default="separated",
                      choices=["separated", "cell", "co_clustered",
                               "packed"])

    info = sub.add_parser("info", help="list streams and indexes")
    info.add_argument("db")

    imp = sub.add_parser("import", help="import a JSON Markovian stream")
    imp.add_argument("db")
    imp.add_argument("stream_json")
    imp.add_argument("--layout", default="separated",
                     choices=["separated", "cell", "co_clustered",
                              "packed"])
    imp.add_argument("--mc-alpha", type=int, default=None,
                     help="build the MC index with this branching factor "
                     "(not yet implemented; leave unset)")
    imp.add_argument("--no-btp", action="store_true",
                     help="skip the BT_P (top-k) index")

    exp = sub.add_parser("export", help="export an archived stream to JSON")
    exp.add_argument("db")
    exp.add_argument("stream")
    exp.add_argument("output")

    query = sub.add_parser("query", help="run a Regular event query")
    query.add_argument("db")
    query.add_argument("stream")
    query.add_argument("query")
    query.add_argument("--method", default="auto",
                       choices=["auto", "naive", "btree", "topk", "mc",
                                "semi"])
    query.add_argument("--k", type=int, default=None,
                       help="top-k retrieval")
    query.add_argument("--threshold", type=float, default=None,
                       help="return matches with probability >= this")
    query.add_argument("--events", type=float, default=None, metavar="ENTER",
                       help="detect events with this enter threshold")
    query.add_argument("--limit", type=int, default=10,
                       help="max signal rows to print")
    query.add_argument("--cold", action="store_true",
                       help="drop caches before running")
    query.add_argument("--start", type=int, default=0,
                       help="window start timestep (inclusive)")
    query.add_argument("--stop", type=int, default=None,
                       help="window stop timestep (exclusive)")

    drop = sub.add_parser("drop", help="remove an archived stream and its "
                          "indexes")
    drop.add_argument("db")
    drop.add_argument("stream")

    plan_cmd = sub.add_parser("plan", help="show the planner's decision")
    plan_cmd.add_argument("db")
    plan_cmd.add_argument("stream")
    plan_cmd.add_argument("query")
    plan_cmd.add_argument("--k", type=int, default=None)

    density = sub.add_parser("density", help="data density w.r.t. a query")
    density.add_argument("db")
    density.add_argument("stream")
    density.add_argument("query")

    fsck = sub.add_parser("fsck", help="deep-verify a database: checksums, "
                          "tree structure, page accounting")
    fsck.add_argument("db", help="database directory")
    fsck.add_argument("-q", "--quiet", action="store_true",
                      help="print nothing; exit status carries the verdict")
    return parser


def cmd_demo(args, out) -> int:
    import tempfile

    from .streams import ENTERED_ROOM_QUERY, routine_stream

    print(f"simulating {args.people} routine stream(s) x "
          f"{args.snippets * 30} timesteps ...", file=out)
    streams = [
        routine_stream(f"person{i}", num_snippets=args.snippets,
                       seed=args.seed + i)
        for i in range(args.people)
    ]
    with tempfile.TemporaryDirectory() as scratch:
        db_path = args.db if args.db is not None else scratch
        with _engine()(db_path) as db:
            for stream in streams:
                db.archive(stream, layout=args.layout)
                print(f"  archived {stream.name} ({len(stream)} timesteps, "
                      f"layout={args.layout})", file=out)
            query = db.parse(ENTERED_ROOM_QUERY)
            print(f"query: {query.signature()}", file=out)
            for stream in streams:
                naive = db.query(stream.name, query, method="naive",
                                 cold=True)
                btree = db.query(stream.name, query, method="btree",
                                 cold=True)
                got = dict(naive.signal)
                for t, p in btree.signal:
                    if abs(got.get(t, 0.0) - p) > 1e-9:
                        print(f"MISMATCH on {stream.name} at t={t}: "
                              f"naive={got.get(t, 0.0):.6f} btree={p:.6f}",
                              file=sys.stderr)
                        return 1
                peak_t, peak_p = max(btree.signal, key=lambda tp: tp[1],
                                     default=(None, 0.0))
                print(f"  {stream.name}: peak p={peak_p:.3f} at t={peak_t}",
                      file=out)
                print(f"    naive (Alg 1): {naive.stats.summary()}", file=out)
                print(f"    btree (Alg 2): {btree.stats.summary()}", file=out)
        if args.db is not None:
            print(f"demo database ready at {args.db}", file=out)
        else:
            print("demo complete (temp database removed; pass a DB path "
                  "to keep it)", file=out)
    return 0


def cmd_info(args, out) -> int:
    with _engine()(args.db) as db:
        streams = db.stream_names()
        if not streams:
            print("no streams archived", file=out)
        for name in streams:
            meta = db.stream_meta(name)
            print(f"stream {name!r}: {meta.length} timesteps, "
                  f"layout={meta.layout.value}, "
                  f"attributes={list(meta.space.attributes)}", file=out)
            for index in sorted(meta.indexes):
                print(f"    index {index} {meta.indexes[index]}", file=out)
        dims = db.dimension_tables()
        for name, mapping in dims.items():
            print(f"dimension table {name!r}: {len(mapping)} entries",
                  file=out)
        total = sum(db.storage_report().values())
        print(f"total on disk: {total / 2**20:.2f} MiB "
              f"across {len(db.storage_report())} files", file=out)
    return 0


def cmd_import(args, out) -> int:
    from .streams import load_stream

    stream = load_stream(args.stream_json)
    with _engine()(args.db) as db:
        db.archive(stream, layout=args.layout, btp=not args.no_btp,
                   mc_alpha=args.mc_alpha)
    print(f"imported {stream.name!r}: {len(stream)} timesteps", file=out)
    return 0


def cmd_export(args, out) -> int:
    from .streams import dump_stream

    with _engine()(args.db) as db:
        stream = db.reader(args.stream).materialize()
    dump_stream(stream, args.output)
    print(f"exported {args.stream!r} to {args.output}", file=out)
    return 0


def cmd_query(args, out) -> int:
    with _engine()(args.db) as db:
        result = db.query(
            args.stream, args.query, method=args.method, k=args.k,
            threshold=args.threshold, cold=args.cold,
            start=args.start, stop=args.stop,
        )
        print(f"method: {result.method}; {result.stats.summary()}", file=out)
        top = result.top(args.limit)
        if not top:
            print("no matches", file=out)
        else:
            print(f"top {len(top)} matches:", file=out)
            for t, p in top:
                print(f"  t={t:6d}  p={p:.4f}", file=out)
        if args.events is not None:
            from .core import detect_events

            events = detect_events(result, enter=args.events)
            print(f"{len(events)} event(s) at enter={args.events}:", file=out)
            for event in events:
                print(f"  {event}", file=out)
    return 0


def cmd_plan(args, out) -> int:
    with _engine()(args.db) as db:
        decision = db.explain(args.stream, args.query, k=args.k)
        print(f"{decision.name}: {decision.reason}", file=out)
    return 0


def cmd_density(args, out) -> int:
    with _engine()(args.db) as db:
        density = db.data_density(args.stream, args.query)
        print(f"{density:.4f}", file=out)
    return 0


def cmd_fsck(args, out) -> int:
    import os

    from .storage import StorageEnvironment

    if not os.path.isdir(args.db):
        print(f"error: no such database directory: {args.db}",
              file=sys.stderr)
        return 2
    # page_size=None adopts each file's on-disk geometry, so fsck works
    # on databases built with any page size.
    with StorageEnvironment(args.db, page_size=None) as env:
        report = env.fsck()
    if not args.quiet:
        print(report.render(), file=out)
    return 0 if report.clean else 1


def cmd_drop(args, out) -> int:
    with _engine()(args.db) as db:
        db.drop_stream(args.stream)
        print(f"dropped {args.stream!r}", file=out)
    return 0


_COMMANDS = {
    "demo": cmd_demo,
    "info": cmd_info,
    "import": cmd_import,
    "export": cmd_export,
    "query": cmd_query,
    "plan": cmd_plan,
    "density": cmd_density,
    "drop": cmd_drop,
    "fsck": cmd_fsck,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ModuleNotFoundError as exc:
        name = exc.name or ""
        if name == "repro" or name.startswith("repro."):
            layer = ".".join(name.split(".")[:2])
            print(
                f"error: {args.command!r} needs the {layer} layer, which "
                "is not yet implemented in this repo (see ROADMAP.md for "
                "the build order; storage, probability, obs, streams, "
                "query, lahar, indexes, access, and core are available "
                "today — rfid and the MC index are still to come)",
                file=sys.stderr,
            )
            return 2
        raise
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
