"""Exception hierarchy for the repro (Caldera) package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything from this package with a single handler.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class StorageError(ReproError):
    """A low-level storage failure (pager, buffer pool, B+ tree)."""


class PageError(StorageError):
    """An invalid page id, corrupt page image, or page-size violation."""


class KeyEncodingError(StorageError):
    """A value could not be encoded into an order-preserving key."""


class CatalogError(ReproError):
    """A named stream, index, or dimension table was missing or duplicated."""


class QueryError(ReproError):
    """A malformed Regular query or predicate."""


class PlanningError(ReproError):
    """No access method can execute the requested query (e.g., missing indexes)."""


class StreamError(ReproError):
    """A malformed Markovian stream (bad distribution, misaligned CPTs)."""


class InferenceError(ReproError):
    """HMM smoothing / particle filtering failed (e.g., impossible evidence)."""
