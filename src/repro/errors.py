"""Exception hierarchy for the repro (Caldera) package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything from this package with a single handler.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class StorageError(ReproError):
    """A low-level storage failure (pager, buffer pool, B+ tree)."""


class PageError(StorageError):
    """An invalid page id, corrupt page image, or page-size violation."""


class CorruptPageError(PageError):
    """A page image failed its checksum or structural validation.

    Raised on every physical read whose frame checksum does not match,
    and by the node codec / fsck when a page decodes to an impossible
    structure — torn and corrupt pages are reported, never silently
    decoded into garbage.
    """


class TornWriteError(StorageError):
    """A write-ahead-log record was found incomplete or mis-checksummed.

    Recovery treats the first torn record as the end of the log: the
    record and everything after it are discarded (they were never
    committed).
    """


class RecoveryError(StorageError):
    """Write-ahead-log recovery could not restore a consistent state
    (mismatched log geometry, unreadable log header, failed replay)."""


class KeyEncodingError(StorageError):
    """A value could not be encoded into an order-preserving key, or a
    stored key could not be decoded back into a complete tuple."""


class CatalogError(ReproError):
    """A named stream, index, or dimension table was missing or duplicated."""


class QueryError(ReproError):
    """A malformed Regular query or predicate."""


class PlanningError(ReproError):
    """No access method can execute the requested query (e.g., missing indexes)."""


class StreamError(ReproError):
    """A malformed Markovian stream (bad distribution, misaligned CPTs)."""


class InferenceError(ReproError):
    """HMM smoothing / particle filtering failed (e.g., impossible evidence)."""
