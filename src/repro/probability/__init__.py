"""The probability kernel: sparse distributions and CPTs.

Everything probabilistic in Caldera — stream marginals, evidence
vectors, Reg's per-NFA-state masses, the MC index's composed CPTs —
reduces to these two types and their product / propagate / compose
operations.
"""

from .cpt import CPT, validate_cpt
from .distribution import SparseDistribution

__all__ = ["CPT", "SparseDistribution", "validate_cpt"]
