"""Conditional probability tables.

A CPT maps each source state to a sparse row distribution over
destination states — the ``C_t(x_{t+1} | x_t)`` objects a Markovian
stream stores between timesteps (§2.1). Everything the access methods
do reduces to two operations:

- :meth:`CPT.apply` — propagate a vector one step (the Reg operator's
  inner loop);
- :meth:`CPT.compose` — the chain rule
  ``p(t_j | t_i) = Σ_k p(t_j | t_k) · p(t_k | t_i)`` (what the MC index
  precomputes so irrelevant gaps cost ``O(log gap)`` multiplications).

Rows of a stream CPT are stochastic (sum to 1); masked variants
(:meth:`mask_destinations`, for predicate-conditioned Kleene loops,
§3.3.2) are deliberately *sub*-stochastic — the lost mass is exactly
the probability of leaving the loop.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple, Union

from ..errors import StreamError
from ..storage.record import (
    decode_uvarint,
    encode_uvarint,
    pack_pairs,
    unpack_pairs,
)
from .distribution import SparseDistribution

_EMPTY_ROW = SparseDistribution()

RowLike = Union[SparseDistribution, Mapping[int, float]]


class CPT:
    """A sparse source → (destination → probability) table."""

    __slots__ = ("_rows",)

    def __init__(self, rows: Mapping[int, RowLike] = ()) -> None:
        cleaned: Dict[int, SparseDistribution] = {}
        for src, row in dict(rows).items():
            if not isinstance(row, SparseDistribution):
                row = SparseDistribution(row)
            if row:
                cleaned[src] = row
        self._rows = cleaned

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, states: Iterable[int]) -> "CPT":
        """Each state maps to itself with probability 1."""
        return cls({s: {s: 1.0} for s in states})

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row(self, src: int) -> SparseDistribution:
        """The destination distribution of one source (empty if absent)."""
        return self._rows.get(src, _EMPTY_ROW)

    def rows(self) -> Iterable[Tuple[int, SparseDistribution]]:
        return self._rows.items()

    def sources(self) -> FrozenSet[int]:
        return frozenset(self._rows)

    def destinations(self) -> FrozenSet[int]:
        out = set()
        for row in self._rows.values():
            out.update(row.support())
        return frozenset(out)

    def __contains__(self, src: int) -> bool:
        return src in self._rows

    def __iter__(self) -> Iterator[int]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def num_entries(self) -> int:
        """Stored (source, destination) pairs."""
        return sum(len(row) for row in self._rows.values())

    def __eq__(self, other) -> bool:
        if not isinstance(other, CPT):
            return NotImplemented
        return self._rows == other._rows

    def __repr__(self) -> str:
        return f"CPT({len(self._rows)} rows, {self.num_entries()} entries)"

    def approx_equal(self, other: "CPT", tol: float = 1e-9) -> bool:
        for src in self.sources() | other.sources():
            if not self.row(src).approx_equal(other.row(src), tol=tol):
                return False
        return True

    # ------------------------------------------------------------------
    # Stochasticity
    # ------------------------------------------------------------------
    def is_stochastic(self, tol: float = 1e-6) -> bool:
        """True when every row sums to 1 (a proper CPT; masked variants
        are sub-stochastic and fail this on purpose)."""
        return all(
            abs(row.total_mass - 1.0) <= tol for row in self._rows.values()
        )

    def normalize_rows(self) -> "CPT":
        """Each nonempty row rescaled to unit mass."""
        return CPT({src: row.normalize() for src, row in self._rows.items()})

    # ------------------------------------------------------------------
    # The two core operations
    # ------------------------------------------------------------------
    def apply(self, dist: SparseDistribution) -> SparseDistribution:
        """Propagate a vector forward: ``out(y) = Σ_x v(x)·C(y|x)``.

        Mass on sources without a row is dropped (sub-stochastic
        behavior; stream CPTs cover their marginal's support, so
        nothing is lost on well-formed streams).
        """
        out: Dict[int, float] = {}
        for x, px in dist.items():
            row = self._rows.get(x)
            if row is None:
                continue
            for y, pyx in row.items():
                out[y] = out.get(y, 0.0) + px * pyx
        return SparseDistribution(out)

    def compose(self, later: "CPT") -> "CPT":
        """Chain this CPT with one applied *after* it: if ``self`` spans
        ``t_i → t_k`` and ``later`` spans ``t_k → t_j``, the result
        spans ``t_i → t_j`` by the chain rule."""
        return CPT(
            {src: later.apply(row) for src, row in self._rows.items()}
        )

    # ------------------------------------------------------------------
    # Derived operations
    # ------------------------------------------------------------------
    def transpose(self) -> "CPT":
        """Edges reversed: ``out(x|y) = C(y|x)`` (unnormalized — rows of
        the result are likelihood columns, useful for backward passes)."""
        out: Dict[int, Dict[int, float]] = {}
        for x, row in self._rows.items():
            for y, p in row.items():
                out.setdefault(y, {})[x] = p
        return CPT(out)

    def mask_destinations(self, accept: Iterable[int]) -> "CPT":
        """Zero every transition into a state outside ``accept``
        (sub-stochastic conditioning for positive Kleene loops)."""
        keep = accept if isinstance(accept, (set, frozenset)) else set(accept)
        return CPT(
            {src: row.restrict_to(keep) for src, row in self._rows.items()}
        )

    def mask_sources(self, accept: Iterable[int]) -> "CPT":
        """Drop every row whose source is outside ``accept``."""
        keep = accept if isinstance(accept, (set, frozenset)) else set(accept)
        return CPT(
            {src: row for src, row in self._rows.items() if src in keep}
        )

    # ------------------------------------------------------------------
    # Serialization (storage record format)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        parts = [encode_uvarint(len(self._rows))]
        for src in sorted(self._rows):
            parts.append(encode_uvarint(src))
            parts.append(pack_pairs(sorted(self._rows[src].items())))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes, pos: int = 0) -> "CPT":
        count, pos = decode_uvarint(data, pos)
        rows: Dict[int, Dict[int, float]] = {}
        for _ in range(count):
            src, pos = decode_uvarint(data, pos)
            pairs, pos = unpack_pairs(data, pos)
            rows[src] = dict(pairs)
        return cls(rows)


def validate_cpt(cpt: CPT, tol: float = 1e-6) -> None:
    """Raise :class:`~repro.errors.StreamError` unless every row is a
    probability distribution."""
    for src, row in cpt.rows():
        mass = row.total_mass
        if abs(mass - 1.0) > tol:
            raise StreamError(
                f"CPT row for source {src} has mass {mass:.9f}, expected 1"
            )
