"""Sparse discrete distributions.

A Markovian stream's per-timestep marginal has tiny support (a handful
of plausible locations out of hundreds), so distributions are stored as
``{state_id: probability}`` dicts holding only nonzero entries. The
class doubles as a sparse nonnegative vector: evidence likelihoods and
Reg's unnormalized per-NFA-state masses use the same type, so
construction does *not* normalize — call :meth:`normalize` where a
probability distribution is required.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Tuple

from ..errors import StreamError
from ..storage.record import pack_pairs, unpack_pairs


class SparseDistribution:
    """An immutable sparse map from state id to nonnegative weight."""

    __slots__ = ("_probs",)

    def __init__(self, probs: Mapping[int, float] = ()) -> None:
        cleaned: Dict[int, float] = {}
        for state, p in dict(probs).items():
            if p < 0.0:
                raise StreamError(
                    f"negative probability {p} for state {state!r}"
                )
            if p > 0.0:
                cleaned[state] = float(p)
        self._probs = cleaned

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def point(cls, state: int) -> "SparseDistribution":
        """All mass on one state."""
        return cls({state: 1.0})

    @classmethod
    def uniform(cls, states: Iterable[int]) -> "SparseDistribution":
        """Equal mass on each given state."""
        states = list(states)
        if not states:
            raise StreamError("uniform distribution needs at least one state")
        p = 1.0 / len(states)
        return cls({s: p for s in states})

    @classmethod
    def from_counts(cls, counts: Mapping[int, float]) -> "SparseDistribution":
        """Normalized frequencies (e.g. particle counts)."""
        total = sum(counts.values())
        if total <= 0.0:
            raise StreamError("counts sum to zero")
        return cls({s: c / total for s, c in counts.items() if c > 0.0})

    # ------------------------------------------------------------------
    # Mapping surface
    # ------------------------------------------------------------------
    def prob(self, state: int) -> float:
        """The weight of one state (0.0 when outside the support)."""
        return self._probs.get(state, 0.0)

    def items(self) -> Iterable[Tuple[int, float]]:
        return self._probs.items()

    def values(self) -> Iterable[float]:
        return self._probs.values()

    def support(self) -> FrozenSet[int]:
        return frozenset(self._probs)

    def as_arrays(self):
        """``(state_ids, weights)`` as parallel NumPy arrays — the
        C-speed export the vectorized Reg kernel densifies rows with.
        Both arrays follow the dict's (stable) iteration order."""
        import numpy as np

        n = len(self._probs)
        return (
            np.fromiter(self._probs.keys(), dtype=np.int64, count=n),
            np.fromiter(self._probs.values(), dtype=np.float64, count=n),
        )

    def __contains__(self, state: int) -> bool:
        return state in self._probs

    def __iter__(self) -> Iterator[int]:
        return iter(self._probs)

    def __len__(self) -> int:
        return len(self._probs)

    def __bool__(self) -> bool:
        return bool(self._probs)

    def __eq__(self, other) -> bool:
        if not isinstance(other, SparseDistribution):
            return NotImplemented
        return self._probs == other._probs

    def __repr__(self) -> str:
        inside = ", ".join(
            f"{s}: {p:.4g}" for s, p in sorted(self._probs.items())
        )
        return f"SparseDistribution({{{inside}}})"

    def approx_equal(self, other: "SparseDistribution",
                     tol: float = 1e-9) -> bool:
        """Entry-wise agreement within ``tol``."""
        states = self.support() | other.support()
        return all(
            abs(self.prob(s) - other.prob(s)) <= tol for s in states
        )

    # ------------------------------------------------------------------
    # Mass
    # ------------------------------------------------------------------
    @property
    def total_mass(self) -> float:
        return sum(self._probs.values())

    def is_normalized(self, tol: float = 1e-9) -> bool:
        return abs(self.total_mass - 1.0) <= tol

    def normalize(self) -> "SparseDistribution":
        """A copy rescaled to unit mass."""
        total = self.total_mass
        if total <= 0.0:
            raise StreamError("cannot normalize an empty distribution")
        if abs(total - 1.0) <= 1e-15:
            return self
        return SparseDistribution(
            {s: p / total for s, p in self._probs.items()}
        )

    def scale(self, factor: float) -> "SparseDistribution":
        """All weights multiplied by a nonnegative factor."""
        if factor < 0.0:
            raise StreamError(f"negative scale factor {factor}")
        return SparseDistribution(
            {s: p * factor for s, p in self._probs.items()}
        )

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def product(self, other: "SparseDistribution") -> "SparseDistribution":
        """Pointwise product (evidence conditioning; unnormalized)."""
        small, large = (
            (self, other) if len(self) <= len(other) else (other, self)
        )
        return SparseDistribution(
            {
                s: p * large.prob(s)
                for s, p in small.items()
                if large.prob(s) > 0.0
            }
        )

    def add(self, other: "SparseDistribution") -> "SparseDistribution":
        """Weight-wise sum (mixing unnormalized masses)."""
        out = dict(self._probs)
        for s, p in other.items():
            out[s] = out.get(s, 0.0) + p
        return SparseDistribution(out)

    def restrict_to(self, states: Iterable[int]) -> "SparseDistribution":
        """Mass outside ``states`` dropped (unnormalized)."""
        keep = states if isinstance(states, (set, frozenset)) else set(states)
        return SparseDistribution(
            {s: p for s, p in self._probs.items() if s in keep}
        )

    def mass_on(self, states: Iterable[int]) -> float:
        """Summed weight of the given states."""
        return sum(self._probs.get(s, 0.0) for s in states)

    def marginalize(self, mapper: Callable[[int], object]) -> "SparseDistribution":
        """Sum weights by ``mapper(state)``; states mapped to ``None``
        are dropped (the §3.4.1 dimension-value aggregation)."""
        out: Dict[object, float] = {}
        for s, p in self._probs.items():
            value = mapper(s)
            if value is None:
                continue
            out[value] = out.get(value, 0.0) + p
        return SparseDistribution(out)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def max_state(self) -> Tuple[int, float]:
        """The highest-weight ``(state, weight)`` pair."""
        if not self._probs:
            raise StreamError("empty distribution has no maximum")
        return max(self._probs.items(), key=lambda sp: sp[1])

    def top(self, k: int) -> List[Tuple[int, float]]:
        """The k highest-weight entries, by decreasing weight."""
        return sorted(self._probs.items(), key=lambda sp: (-sp[1], sp[0]))[:k]

    # ------------------------------------------------------------------
    # Serialization (storage record format)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        return pack_pairs(sorted(self._probs.items()))

    @classmethod
    def from_bytes(cls, data: bytes, pos: int = 0) -> "SparseDistribution":
        pairs, _ = unpack_pairs(data, pos)
        return cls(dict(pairs))
