"""Length-prefixed value serialization.

B+ tree values are opaque byte strings; the layers above store composite
records in them (a marginal next to its CPT in the co-clustered layout,
sparse probability vectors in index entries). This module provides the
shared low-level codecs:

- unsigned LEB128 varints (small ints — counts, state ids — in 1 byte);
- length-prefixed chunk framing (concatenate independently decodable
  byte strings);
- packed ``(uvarint id, float64)`` pair lists, the wire shape of a
  sparse distribution.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple

from ..errors import StorageError

_F64 = struct.Struct("<d")


# ----------------------------------------------------------------------
# Varints
# ----------------------------------------------------------------------

def encode_uvarint(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise StorageError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, pos: int = 0) -> Tuple[int, int]:
    """Returns ``(value, next_pos)``."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise StorageError("truncated uvarint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise StorageError("uvarint overflow")


# ----------------------------------------------------------------------
# Chunk framing
# ----------------------------------------------------------------------

def pack_chunks(chunks: Sequence[bytes]) -> bytes:
    """Frame several byte strings into one: count, then len+payload each."""
    out = [encode_uvarint(len(chunks))]
    for chunk in chunks:
        out.append(encode_uvarint(len(chunk)))
        out.append(chunk)
    return b"".join(out)


def unpack_chunks(data: bytes, pos: int = 0) -> Tuple[List[bytes], int]:
    """Invert :func:`pack_chunks`; returns ``(chunks, next_pos)``."""
    count, pos = decode_uvarint(data, pos)
    chunks: List[bytes] = []
    for _ in range(count):
        length, pos = decode_uvarint(data, pos)
        if pos + length > len(data):
            raise StorageError("truncated chunk")
        chunks.append(data[pos:pos + length])
        pos += length
    return chunks, pos


# ----------------------------------------------------------------------
# Sparse (id, weight) vectors
# ----------------------------------------------------------------------

def pack_pairs(pairs: Iterable[Tuple[int, float]]) -> bytes:
    """Pack ``(id, weight)`` pairs: count, then uvarint id + float64 each."""
    items = list(pairs)
    out = [encode_uvarint(len(items))]
    for key, weight in items:
        out.append(encode_uvarint(key))
        out.append(_F64.pack(weight))
    return b"".join(out)


def unpack_pairs(data: bytes, pos: int = 0) -> Tuple[List[Tuple[int, float]], int]:
    """Invert :func:`pack_pairs`; returns ``(pairs, next_pos)``."""
    count, pos = decode_uvarint(data, pos)
    pairs: List[Tuple[int, float]] = []
    for _ in range(count):
        key, pos = decode_uvarint(data, pos)
        if pos + 8 > len(data):
            raise StorageError("truncated pair list")
        pairs.append((key, _F64.unpack_from(data, pos)[0]))
        pos += 8
    return pairs, pos
