"""Deep integrity verification for trees and whole environments.

``fsck`` answers the question recovery tests have to ask after every
simulated crash: *is what's on disk actually a B+ tree, and does every
page belong to somebody?* Two layers:

- :func:`check_tree` walks one tree from its header — structure (page
  types where the descent expects them, uniform leaf depth), key order
  (within nodes, across separators, along the whole leaf chain),
  sibling links (``prev``/``next`` mutually consistent, chain endpoints
  match the header, chain membership equals descent membership),
  overflow chains (length, no sharing), and header counters
  (``num_entries``, ``num_leaves``, ``height``).
- :func:`fsck_environment` runs :func:`check_tree` on every tree of a
  :class:`~repro.storage.env.StorageEnvironment`, then audits each
  file's page accounting: the free list (no cycles, in-range links, no
  overlap with live pages) and full-file coverage — every allocated
  page is reachable, free, or flagged as leaked — plus a checksum sweep
  that physically re-reads every page so any corrupt frame is
  *reported*, never silently decoded.

All checks read through the pager (physical reads, checksum-verified)
rather than the buffer pool, so an fsck never perturbs cache state;
callers flush first so the disk image is current. Problems are
collected, not raised — a report with a torn page and a broken sibling
link names both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import StorageError
from .btree import (
    _FLAG_SPILLED,
    _HEADER_PAGE,
    _OVF_PTR,
    BranchNode,
    BTree,
    LeafNode,
    OverflowNode,
)

__all__ = ["CheckReport", "FsckReport", "check_tree", "fsck_environment"]


@dataclass
class CheckReport:
    """One tree's deep-check result."""

    tree: str
    errors: List[str] = field(default_factory=list)
    entries: int = 0
    leaves: int = 0
    branches: int = 0
    overflow_pages: int = 0
    #: Every page the tree owns, header included.
    reachable: Set[int] = field(default_factory=set)

    @property
    def clean(self) -> bool:
        return not self.errors

    def render(self) -> str:
        head = (f"tree {self.tree!r}: {self.entries} entries, "
                f"{self.leaves} leaves, {self.branches} branches, "
                f"{self.overflow_pages} overflow pages")
        if self.clean:
            return head + " — clean"
        return head + "\n" + "\n".join(f"  ERROR: {e}" for e in self.errors)


@dataclass
class FsckReport:
    """A whole environment's verification result."""

    path: str
    trees: Dict[str, CheckReport] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    pages_checked: int = 0
    free_pages: int = 0
    #: Page files whose tree creation never committed (a crash between
    #: pager creation and the tree's first flush leaves a valid, empty
    #: pager) — benign, reported but not errors.
    embryonic: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.errors and all(
            t.clean for t in self.trees.values()
        )

    def all_errors(self) -> List[str]:
        out = list(self.errors)
        for name in sorted(self.trees):
            out.extend(f"{name}: {e}" for e in self.trees[name].errors)
        return out

    def render(self) -> str:
        lines = [f"fsck {self.path}"]
        for name in sorted(self.trees):
            lines.append("  " + self.trees[name].render().replace(
                "\n", "\n  "))
        for name in self.embryonic:
            lines.append(f"  tree {name!r}: creation never committed "
                         "(empty page file)")
        lines.append(f"  {self.pages_checked} pages checksum-swept, "
                     f"{self.free_pages} on free lists")
        for err in self.errors:
            lines.append(f"  ERROR: {err}")
        lines.append("status: " + ("clean" if self.clean else
                                   f"{len(self.all_errors())} error(s)"))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# One tree
# ----------------------------------------------------------------------

def _read_node(tree: BTree, page_id: int, report: CheckReport):
    """Physically read and decode one page; errors are recorded, not
    raised, so one bad page doesn't hide the rest."""
    try:
        return tree.decode_page(page_id, tree.pager.read(page_id))
    except StorageError as exc:
        report.errors.append(f"page {page_id}: {exc}")
        return None


def _check_overflow(tree: BTree, stored: bytes,
                    report: CheckReport) -> None:
    try:
        first, total = _OVF_PTR.unpack(stored)
    except Exception:
        report.errors.append("unparseable overflow pointer")
        return
    got = 0
    page_id = first
    while page_id:
        if page_id in report.reachable:
            report.errors.append(
                f"overflow page {page_id} referenced twice"
            )
            return
        node = _read_node(tree, page_id, report)
        if not isinstance(node, OverflowNode):
            if node is not None:
                report.errors.append(
                    f"overflow chain hit a {type(node).__name__} at page "
                    f"{page_id}"
                )
            return
        report.reachable.add(page_id)
        report.overflow_pages += 1
        got += len(node.data)
        page_id = node.next
    if got != total:
        report.errors.append(
            f"overflow chain from page {first} holds {got} bytes, "
            f"pointer promises {total}"
        )


def _walk(tree: BTree, page_id: int, depth: int, lo: Optional[bytes],
          hi: Optional[bytes], report: CheckReport,
          leaves_seen: List[Tuple[int, int]]) -> None:
    """Recursive descent: structure, separator bounds, depth uniformity.

    ``lo``/``hi`` bound every key in this subtree (inclusive both ends —
    duplicates may straddle separators).
    """
    if page_id in report.reachable:
        report.errors.append(f"page {page_id} reachable twice")
        return
    node = _read_node(tree, page_id, report)
    if node is None:
        return
    report.reachable.add(page_id)
    if isinstance(node, OverflowNode):
        report.errors.append(
            f"descent reached an overflow page at {page_id}"
        )
        return
    keys = node.keys
    for i in range(1, len(keys)):
        if keys[i] < keys[i - 1]:
            report.errors.append(
                f"page {page_id}: keys out of order at slot {i}"
            )
            break
    if keys:
        if lo is not None and keys[0] < lo:
            report.errors.append(
                f"page {page_id}: key below its separator bound"
            )
        if hi is not None and keys[-1] > hi:
            report.errors.append(
                f"page {page_id}: key above its separator bound"
            )
    if isinstance(node, BranchNode):
        report.branches += 1
        if depth + 1 >= tree.height:
            report.errors.append(
                f"branch page {page_id} at leaf depth {depth}"
            )
            return
        if len(node.children) != len(keys) + 1:
            report.errors.append(
                f"branch page {page_id}: {len(node.children)} children "
                f"for {len(keys)} keys"
            )
            return
        for i, child in enumerate(node.children):
            child_lo = keys[i - 1] if i > 0 else lo
            child_hi = keys[i] if i < len(keys) else hi
            _walk(tree, child, depth + 1, child_lo, child_hi, report,
                  leaves_seen)
    else:
        report.leaves += 1
        if depth != tree.height - 1:
            report.errors.append(
                f"leaf page {page_id} at depth {depth}, expected "
                f"{tree.height - 1}"
            )
        report.entries += len(keys)
        leaves_seen.append((page_id, len(keys)))
        for stored, flags in zip(node.values, node.flags):
            if flags & _FLAG_SPILLED:
                _check_overflow(tree, stored, report)


def _check_leaf_chain(tree: BTree, descent_leaves: Set[int],
                      report: CheckReport) -> None:
    """Follow the sibling links end to end; must visit exactly the
    descent's leaves, in globally sorted key order."""
    seen: Set[int] = set()
    prev_id = 0
    prev_last_key: Optional[bytes] = None
    page_id = tree._first_leaf
    while page_id:
        if page_id in seen:
            report.errors.append(f"leaf chain cycle at page {page_id}")
            return
        seen.add(page_id)
        node = _read_node(tree, page_id, report)
        if not isinstance(node, LeafNode):
            report.errors.append(
                f"leaf chain hit a non-leaf at page {page_id}"
            )
            return
        if node.prev != prev_id:
            report.errors.append(
                f"leaf {page_id}: prev link {node.prev}, expected {prev_id}"
            )
        if node.keys and prev_last_key is not None \
                and node.keys[0] < prev_last_key:
            report.errors.append(
                f"leaf {page_id}: first key sorts before its left "
                "sibling's last key"
            )
        if node.keys:
            prev_last_key = node.keys[-1]
        prev_id = page_id
        page_id = node.next
    if prev_id != tree._last_leaf:
        report.errors.append(
            f"leaf chain ends at page {prev_id}, header says "
            f"{tree._last_leaf}"
        )
    if seen != descent_leaves:
        extra = sorted(seen - descent_leaves)
        missing = sorted(descent_leaves - seen)
        report.errors.append(
            f"leaf chain and descent disagree (chain-only: {extra}, "
            f"descent-only: {missing})"
        )


def check_tree(tree: BTree) -> CheckReport:
    """Deep-check one tree (flush it first so the disk image is
    current)."""
    report = CheckReport(tree=tree.name)
    report.reachable.add(_HEADER_PAGE)
    leaves_seen: List[Tuple[int, int]] = []
    _walk(tree, tree._root, 0, None, None, report, leaves_seen)
    _check_leaf_chain(tree, {pid for pid, _ in leaves_seen}, report)
    if report.entries != len(tree):
        report.errors.append(
            f"header claims {len(tree)} entries, leaves hold "
            f"{report.entries}"
        )
    if report.leaves != tree.num_leaves:
        report.errors.append(
            f"header claims {tree.num_leaves} leaves, descent found "
            f"{report.leaves}"
        )
    return report


# ----------------------------------------------------------------------
# A whole environment
# ----------------------------------------------------------------------

def _audit_file(tree: BTree, check: CheckReport,
                report: FsckReport) -> None:
    """Free-list walk, leak detection, and the checksum sweep for one
    tree's page file."""
    pager = tree.pager
    name = tree.name
    free: Set[int] = set()
    try:
        for page_id in pager.free_pages():
            free.add(page_id)
    except StorageError as exc:
        report.errors.append(f"{name}: {exc}")
    report.free_pages += len(free)
    overlap = free & check.reachable
    if overlap:
        report.errors.append(
            f"{name}: pages both free and reachable: {sorted(overlap)[:8]}"
        )
    leaked = [
        page_id for page_id in range(1, pager.num_pages)
        if page_id not in free and page_id not in check.reachable
    ]
    if leaked:
        report.errors.append(
            f"{name}: {len(leaked)} leaked page(s) (neither reachable "
            f"nor free): {leaked[:8]}"
        )
    # Checksum sweep: every allocated page must physically read back.
    for page_id in range(1, pager.num_pages):
        try:
            pager.read(page_id)
        except StorageError as exc:
            report.errors.append(f"{name}: sweep: {exc}")
        report.pages_checked += 1


def _is_embryonic(env, name: str) -> bool:
    """True when a tree's page file holds no committed tree — what a
    crash before the tree's first committed flush leaves behind. Two
    shapes: the pager committed but the tree header never did (valid
    pager, no pages past the meta), or the pager creation itself never
    committed (empty main file, no recoverable WAL). Recovery
    semantics make both legitimate; anything else unreadable is
    corruption."""
    import os

    from .pager import Pager

    path = env._check_name(name)
    try:
        probe = Pager(path, stats=env.stats, create=False,
                      faults=env.faults)
    except (StorageError, OSError):
        # Recovery already ran inside the failed open, so a durably
        # committed meta page would have been replayed into the main
        # file by now; a still-empty file means creation never
        # committed. Anything non-empty yet unreadable is corruption.
        try:
            return os.path.getsize(path) == 0
        except OSError:
            return False
    try:
        return probe.num_pages <= _HEADER_PAGE
    finally:
        probe.close()


def fsck_environment(env) -> FsckReport:
    """Verify every tree and every page file of one environment."""
    report = FsckReport(path=env.path)
    m_runs = env.metrics.counter("fsck.runs")
    m_pages = env.metrics.counter("fsck.pages_checked")
    m_errors = env.metrics.counter("fsck.errors")
    for name in env.list_trees():
        try:
            tree = env.open_tree(name, create=False)
        except StorageError as exc:
            if _is_embryonic(env, name):
                report.embryonic.append(name)
            else:
                report.errors.append(f"{name}: cannot open: {exc}")
            continue
        check = check_tree(tree)
        report.trees[name] = check
        _audit_file(tree, check, report)
    m_runs.inc()
    m_pages.inc(report.pages_checked)
    m_errors.inc(len(report.all_errors()))
    return report
