"""Deterministic fault injection for the storage engine.

The crash-safety story of :mod:`repro.storage` is only as good as its
worst untested failure interleaving, so every file handle the pager and
write-ahead log open can be routed through a :class:`FaultInjector` —
a seeded failpoint registry plus a :class:`FaultyFile` wrapper that
models what an operating system actually guarantees:

- bytes written but never fsynced live in the "page cache" and are
  **dropped** by :meth:`FaultInjector.crash` (the simulated power cut);
- an injected *torn* write patches a seeded prefix of the payload into
  the durable image — the part of the sector that reached the platter —
  before the simulated crash;
- an injected *short* write applies a volatile prefix and raises
  ``OSError`` (the caller saw the syscall fail);
- *error* raises ``OSError(EIO)`` with nothing applied (fsync failures
  included — durability does not advance);
- *crash* raises :class:`SimulatedCrash` before anything is applied.

Failpoints are named sites (``wal.append``, ``checkpoint.fsync``, ...)
that the pager and WAL fire on every pass; a :class:`FaultRule` arms
one site at its *n*-th hit. Running a workload once with an unarmed
injector yields per-site hit counts, and :func:`enumerate_schedules`
turns those counts into the exhaustive, fully deterministic sweep the
crash tests run — no subprocesses, no timing, same seed → same faults.
"""

from __future__ import annotations

import errno
import os
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

__all__ = [
    "ACTIONS",
    "FaultInjector",
    "FaultRule",
    "FaultyFile",
    "NO_FAULTS",
    "SimulatedCrash",
    "enumerate_schedules",
    "fsync_file",
]

#: Everything a rule can do at its site. ``torn``/``short`` need a
#: payload-carrying site (a write); fsync-style sites support the rest.
ACTIONS = ("error", "crash", "short", "torn")


class SimulatedCrash(Exception):
    """The process "died" at a failpoint.

    Deliberately *not* a :class:`~repro.errors.ReproError`: library code
    must never catch and absorb a simulated crash, exactly like it could
    not catch a real ``kill -9``.
    """


def fsync_file(handle) -> None:
    """Flush and fsync a file object, honoring :class:`FaultyFile`'s
    simulated durability instead of the real ``os.fsync`` when given
    one."""
    handle.flush()
    fsync = getattr(handle, "fsync", None)
    if fsync is not None:
        fsync()
    else:
        os.fsync(handle.fileno())


class FaultyFile:
    """A file object that distinguishes durable from volatile bytes.

    The real file always holds the *current* content (the OS page cache
    view, which normal reads see); ``_durable`` snapshots the content as
    of the last successful fsync. :meth:`drop_volatile` reverts the real
    file to the durable image — the crash. The underlying handle is
    unbuffered so no bytes hide in Python-level buffers.
    """

    def __init__(self, path: str, mode: str, injector: "FaultInjector") -> None:
        self.path = path
        self.injector = injector
        self.crashed = False
        truncate = mode.startswith("w")
        if truncate or not os.path.exists(path):
            with open(path, "wb"):
                pass
        self._fh = open(path, "r+b", buffering=0)
        self._durable = bytearray(b"" if truncate else self._read_disk())

    # -- plumbing ------------------------------------------------------
    def _read_disk(self) -> bytes:
        with open(self.path, "rb") as fh:
            return fh.read()

    def _check_alive(self) -> None:
        if self.crashed:
            raise OSError(errno.EIO, f"{self.path}: file handle lost in "
                          "simulated crash")

    # -- file protocol -------------------------------------------------
    def read(self, n: int = -1) -> bytes:
        self._check_alive()
        return self._fh.read(n)

    def write(self, data: bytes) -> int:
        self._check_alive()
        return self._fh.write(data)

    def seek(self, offset: int, whence: int = 0) -> int:
        self._check_alive()
        return self._fh.seek(offset, whence)

    def tell(self) -> int:
        return self._fh.tell()

    def truncate(self, size: Optional[int] = None) -> int:
        self._check_alive()
        return self._fh.truncate(size)

    def flush(self) -> None:
        self._check_alive()

    def fileno(self) -> int:
        return self._fh.fileno()

    def close(self) -> None:
        self._fh.close()

    @property
    def closed(self) -> bool:
        return self._fh.closed

    # -- simulated durability ------------------------------------------
    def fsync(self) -> None:
        """Advance the durable image to the current file content."""
        self._check_alive()
        self._durable = bytearray(self._read_disk())

    def patch_durable(self, offset: int, data: bytes) -> None:
        """Force ``data`` at ``offset`` into *both* the current and the
        durable image — a torn write's surviving prefix."""
        self._fh.seek(offset)
        self._fh.write(data)
        end = offset + len(data)
        if len(self._durable) < end:
            self._durable.extend(b"\x00" * (end - len(self._durable)))
        self._durable[offset:end] = data

    def drop_volatile(self) -> None:
        """Crash: revert the real file to the last-fsynced image and
        kill the handle."""
        if not self._fh.closed:
            self._fh.close()
        with open(self.path, "wb") as fh:
            fh.write(self._durable)
        self.crashed = True

    def __repr__(self) -> str:
        return (f"FaultyFile({self.path!r}, durable={len(self._durable)}B, "
                f"crashed={self.crashed})")


@dataclass(frozen=True)
class FaultRule:
    """Fire ``action`` at the ``at_hit``-th pass over ``site``
    (1-based)."""

    site: str
    at_hit: int
    action: str

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.at_hit < 1:
            raise ValueError("at_hit is 1-based")

    def label(self) -> str:
        return f"{self.site}#{self.at_hit}:{self.action}"


class FaultInjector:
    """A seeded failpoint registry plus the files it may corrupt.

    With no rules armed it is a pure observer: every ``fire`` records a
    hit (``injector.hits``), which is how sweeps learn the site/hit
    space of a workload before enumerating schedules over it.
    """

    def __init__(self, rules: Iterable[FaultRule] = (), seed: int = 0) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = seed
        self.hits: Dict[str, int] = {}
        self.files: List[FaultyFile] = []
        self.fired: List[str] = []
        self.crashed = False

    # -- file handle factory -------------------------------------------
    def open(self, path: str, mode: str) -> FaultyFile:
        handle = FaultyFile(path, mode, self)
        self.files.append(handle)
        return handle

    # -- failpoints ----------------------------------------------------
    def fire(self, site: str, handle: Optional[FaultyFile] = None,
             data: Optional[bytes] = None) -> None:
        """One pass over a failpoint; applies the armed rule, if any."""
        count = self.hits.get(site, 0) + 1
        self.hits[site] = count
        for rule in self.rules:
            if rule.site == site and rule.at_hit == count:
                self._apply(rule, handle, data)

    def _apply(self, rule: FaultRule,
               handle: Optional[FaultyFile],
               data: Optional[bytes]) -> None:
        self.fired.append(rule.label())
        action = rule.action
        if action in ("short", "torn") and (handle is None or not data):
            action = "crash" if action == "torn" else "error"
        if action == "error":
            raise OSError(
                errno.EIO, f"injected I/O error at {rule.label()}"
            )
        if action == "crash":
            raise SimulatedCrash(rule.label())
        rng = random.Random(f"{self.seed}/{rule.site}/{rule.at_hit}/{action}")
        cut = rng.randrange(1, len(data)) if len(data) > 1 else 0
        if action == "short":
            handle.write(data[:cut])
            raise OSError(
                errno.EIO, f"injected short write ({cut}/{len(data)} "
                f"bytes) at {rule.label()}"
            )
        # torn: the prefix reached the platter, then the power went out.
        handle.patch_durable(handle.tell(), data[:cut])
        raise SimulatedCrash(f"torn write ({cut}/{len(data)} bytes) at "
                             f"{rule.label()}")

    # -- crash ---------------------------------------------------------
    def crash(self) -> None:
        """Drop every not-yet-fsynced byte in every open file — the
        moment after the simulated power cut."""
        self.crashed = True
        for handle in self.files:
            handle.drop_volatile()


class _NullInjector:
    """The default no-faults path: plain files, inert failpoints."""

    rules: List[FaultRule] = []

    @staticmethod
    def open(path: str, mode: str):
        return open(path, mode)

    @staticmethod
    def fire(site: str, handle=None, data=None) -> None:
        pass

    def __repr__(self) -> str:
        return "NO_FAULTS"


NO_FAULTS = _NullInjector()


def enumerate_schedules(
    site_hits: Dict[str, int],
    max_hits_per_site: int = 4,
    actions: Iterable[str] = ACTIONS,
) -> List[FaultRule]:
    """Every (site, hit, action) single-fault schedule for a workload.

    ``site_hits`` comes from a baseline run's ``injector.hits``. Hits
    beyond ``max_hits_per_site`` sample the site's first/last passes
    (the interesting edges) instead of enumerating hundreds of identical
    middles. Deterministic: same counts in → same schedule list out.
    """
    out: List[FaultRule] = []
    for site in sorted(site_hits):
        count = site_hits[site]
        if count <= max_hits_per_site:
            hit_list = list(range(1, count + 1))
        else:
            head = max_hits_per_site // 2 + max_hits_per_site % 2
            tail = max_hits_per_site // 2
            hit_list = list(range(1, head + 1))
            hit_list += list(range(count - tail + 1, count + 1))
        payload_site = site.endswith((".append", ".write", ".commit"))
        for hit in hit_list:
            for action in actions:
                if action in ("short", "torn") and not payload_site:
                    continue
                out.append(FaultRule(site, hit, action))
    return out
