"""An LRU buffer pool of decoded page objects.

The pool caches *decoded* node objects rather than raw page images:
Python pays its (de)serialization cost only on misses, which mirrors how
a real buffer pool amortizes disk I/O and makes the logical/physical
read split meaningful — every page touch is a logical read, only misses
reach the pager.

Clients (B+ trees) register no state with the pool; each call passes
the client, which must expose:

- ``pool_key``   — hashable identity of the underlying file;
- ``pager``      — the :class:`~repro.storage.pager.Pager` to fill
  misses from and write evictions back to;
- ``decode_page(page_id, raw) -> node`` and ``encode_page(node) ->
  bytes`` — the node codec.

Pinned frames (``pins > 0``) are never evicted — cursors pin the one
leaf they are positioned on. Dirty frames are encoded and written back
when evicted or flushed. Write-backs land in the pager's write-ahead
log, never directly in the page file: the pager only moves frames
in-place at a checkpoint, after the covering log records are fsynced,
so an eviction can never expose the file to a torn uncommitted page
(fsync-before-write-back ordering).

Besides the environment-wide :class:`~repro.storage.stats.IOStats`
(logical reads/writes, evictions, flushes), the pool reports hit/miss,
eviction, dirty-write-back, and pin-churn counters plus a resident-page
gauge through a :class:`~repro.obs.metrics.MetricsRegistry`. All of it
observes — metrics never cause page I/O, so enabling them leaves the
measured cost counters untouched.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from ..errors import StorageError
from ..obs.metrics import NullRegistry
from .stats import IOStats

DEFAULT_POOL_PAGES = 1024


class _Frame:
    __slots__ = ("client", "node", "dirty", "pins")

    def __init__(self, client, node) -> None:
        self.client = client
        self.node = node
        self.dirty = False
        self.pins = 0


class BufferPool:
    """LRU cache of decoded pages, shared by every tree of one
    environment."""

    def __init__(
        self,
        capacity: int = DEFAULT_POOL_PAGES,
        stats: Optional[IOStats] = None,
        metrics=None,
    ) -> None:
        if capacity < 1:
            raise StorageError(f"pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = stats if stats is not None else IOStats()
        self.metrics = metrics if metrics is not None else NullRegistry()
        self._frames: "OrderedDict[Tuple, _Frame]" = OrderedDict()
        # Hot-path instruments, resolved once.
        self._m_hits = self.metrics.counter("pool.hits")
        self._m_misses = self.metrics.counter("pool.misses")
        self._m_evictions = self.metrics.counter("pool.evictions")
        self._m_writebacks = self.metrics.counter("pool.dirty_writebacks")
        self._m_pins = self.metrics.counter("pool.pins")
        self._m_unpins = self.metrics.counter("pool.unpins")
        self._m_resident = self.metrics.gauge("pool.resident")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, client, page_id: int):
        """The decoded node for one page; a logical read, physical only
        on a miss."""
        self.stats.logical_reads += 1
        key = (client.pool_key, page_id)
        frame = self._frames.get(key)
        if frame is not None:
            self._frames.move_to_end(key)
            self._m_hits.inc()
            return frame.node
        self._m_misses.inc()
        raw = client.pager.read(page_id)  # pager counts the physical read
        node = client.decode_page(page_id, raw)
        self._admit(key, _Frame(client, node))
        return node

    def put_new(self, client, page_id: int, node) -> None:
        """Cache a freshly created (never written) node as dirty."""
        key = (client.pool_key, page_id)
        if key in self._frames:
            raise StorageError(f"page {key} is already resident")
        self.stats.logical_writes += 1
        frame = _Frame(client, node)
        frame.dirty = True
        self._admit(key, frame)

    def mark_dirty(self, client, page_id: int) -> None:
        """Record that a resident node was mutated in place."""
        frame = self._frames[(client.pool_key, page_id)]
        self.stats.logical_writes += 1
        frame.dirty = True

    def contains(self, client, page_id: int) -> bool:
        return (client.pool_key, page_id) in self._frames

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def pin(self, client, page_id: int) -> None:
        """Exempt a resident page from eviction (counted; re-entrant)."""
        self._frames[(client.pool_key, page_id)].pins += 1
        self._m_pins.inc()

    def unpin(self, client, page_id: int) -> None:
        key = (client.pool_key, page_id)
        frame = self._frames.get(key)
        if frame is None:
            return  # already discarded (e.g. the tree was dropped)
        if frame.pins <= 0:
            raise StorageError(f"unpin of unpinned page {key}")
        frame.pins -= 1
        self._m_unpins.inc()

    # ------------------------------------------------------------------
    # Eviction and write-back
    # ------------------------------------------------------------------
    def _admit(self, key, frame: _Frame) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[key] = frame
        self._m_resident.set(len(self._frames))

    def _evict_one(self) -> None:
        for key, frame in self._frames.items():  # LRU order
            if frame.pins == 0:
                self._write_back(key, frame)
                del self._frames[key]
                self.stats.evictions += 1
                self._m_evictions.inc()
                return
        raise StorageError(
            f"buffer pool exhausted: all {len(self._frames)} frames pinned"
        )

    def _write_back(self, key, frame: _Frame) -> None:
        if not frame.dirty:
            return
        raw = frame.client.encode_page(frame.node)
        frame.client.pager.write(key[1], raw)  # pager counts the write
        frame.dirty = False
        self.stats.flushes += 1
        self._m_writebacks.inc()

    def flush(self, client=None) -> None:
        """Write every dirty frame back (one client's, or all).

        Write-back order is deterministic — sorted by (file, page id) —
        so two runs of the same workload produce byte-identical
        write-ahead logs and the crash-point sweep can replay a fault
        schedule exactly.
        """
        for key in sorted(self._frames):
            if client is None or key[0] == client.pool_key:
                self._write_back(key, self._frames[key])

    def evict_all(self) -> None:
        """Flush then drop every unpinned frame (cold-cache resets)."""
        self.flush()
        kept = OrderedDict(
            (key, frame)
            for key, frame in self._frames.items()
            if frame.pins > 0
        )
        dropped = len(self._frames) - len(kept)
        self._frames = kept
        self.stats.evictions += dropped
        self._m_evictions.inc(dropped)
        self._m_resident.set(len(self._frames))

    def discard(self, client, page_id: Optional[int] = None) -> None:
        """Drop a client's frames *without* write-back (tree dropped)."""
        if page_id is not None:
            self._frames.pop((client.pool_key, page_id), None)
        else:
            for key in [k for k in self._frames if k[0] == client.pool_key]:
                del self._frames[key]
        self._m_resident.set(len(self._frames))

    # ------------------------------------------------------------------
    @property
    def resident(self) -> int:
        return len(self._frames)

    def pinned(self) -> int:
        return sum(1 for f in self._frames.values() if f.pins > 0)
