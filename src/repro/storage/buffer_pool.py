"""An LRU buffer pool of decoded page objects.

The pool caches *decoded* node objects rather than raw page images:
Python pays its (de)serialization cost only on misses, which mirrors how
a real buffer pool amortizes disk I/O and makes the logical/physical
read split meaningful — every page touch is a logical read, only misses
reach the pager.

Clients (B+ trees) register no state with the pool; each call passes
the client, which must expose:

- ``pool_key``   — hashable identity of the underlying file;
- ``pager``      — the :class:`~repro.storage.pager.Pager` to fill
  misses from and write evictions back to;
- ``decode_page(page_id, raw) -> node`` and ``encode_page(node) ->
  bytes`` — the node codec.

Pinned frames (``pins > 0``) are never evicted — cursors pin the one
leaf they are positioned on. Dirty frames are encoded and written back
when evicted or flushed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..errors import StorageError
from .stats import IOStats

DEFAULT_POOL_PAGES = 1024


class _Frame:
    __slots__ = ("client", "node", "dirty", "pins")

    def __init__(self, client, node) -> None:
        self.client = client
        self.node = node
        self.dirty = False
        self.pins = 0


class BufferPool:
    """LRU cache of decoded pages, shared by every tree of one
    environment."""

    def __init__(
        self,
        capacity: int = DEFAULT_POOL_PAGES,
        stats: Optional[IOStats] = None,
    ) -> None:
        if capacity < 1:
            raise StorageError(f"pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = stats if stats is not None else IOStats()
        self._frames: "OrderedDict[Tuple, _Frame]" = OrderedDict()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, client, page_id: int):
        """The decoded node for one page; a logical read, physical only
        on a miss."""
        self.stats.logical_reads += 1
        key = (client.pool_key, page_id)
        frame = self._frames.get(key)
        if frame is not None:
            self._frames.move_to_end(key)
            return frame.node
        raw = client.pager.read(page_id)  # pager counts the physical read
        node = client.decode_page(page_id, raw)
        self._admit(key, _Frame(client, node))
        return node

    def put_new(self, client, page_id: int, node) -> None:
        """Cache a freshly created (never written) node as dirty."""
        key = (client.pool_key, page_id)
        if key in self._frames:
            raise StorageError(f"page {key} is already resident")
        frame = _Frame(client, node)
        frame.dirty = True
        self._admit(key, frame)

    def mark_dirty(self, client, page_id: int) -> None:
        """Record that a resident node was mutated in place."""
        frame = self._frames[(client.pool_key, page_id)]
        frame.dirty = True

    def contains(self, client, page_id: int) -> bool:
        return (client.pool_key, page_id) in self._frames

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def pin(self, client, page_id: int) -> None:
        """Exempt a resident page from eviction (counted; re-entrant)."""
        self._frames[(client.pool_key, page_id)].pins += 1

    def unpin(self, client, page_id: int) -> None:
        key = (client.pool_key, page_id)
        frame = self._frames.get(key)
        if frame is None:
            return  # already discarded (e.g. the tree was dropped)
        if frame.pins <= 0:
            raise StorageError(f"unpin of unpinned page {key}")
        frame.pins -= 1

    # ------------------------------------------------------------------
    # Eviction and write-back
    # ------------------------------------------------------------------
    def _admit(self, key, frame: _Frame) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[key] = frame

    def _evict_one(self) -> None:
        for key, frame in self._frames.items():  # LRU order
            if frame.pins == 0:
                self._write_back(key, frame)
                del self._frames[key]
                return
        raise StorageError(
            f"buffer pool exhausted: all {len(self._frames)} frames pinned"
        )

    def _write_back(self, key, frame: _Frame) -> None:
        if not frame.dirty:
            return
        raw = frame.client.encode_page(frame.node)
        frame.client.pager.write(key[1], raw)  # pager counts the write
        frame.dirty = False

    def flush(self, client=None) -> None:
        """Write every dirty frame back (one client's, or all)."""
        for key, frame in self._frames.items():
            if client is None or key[0] == client.pool_key:
                self._write_back(key, frame)

    def evict_all(self) -> None:
        """Flush then drop every unpinned frame (cold-cache resets)."""
        self.flush()
        self._frames = OrderedDict(
            (key, frame)
            for key, frame in self._frames.items()
            if frame.pins > 0
        )

    def discard(self, client, page_id: Optional[int] = None) -> None:
        """Drop a client's frames *without* write-back (tree dropped)."""
        if page_id is not None:
            self._frames.pop((client.pool_key, page_id), None)
            return
        for key in [k for k in self._frames if k[0] == client.pool_key]:
            del self._frames[key]

    # ------------------------------------------------------------------
    @property
    def resident(self) -> int:
        return len(self._frames)

    def pinned(self) -> int:
        return sum(1 for f in self._frames.values() if f.pins > 0)
