"""The page-based storage engine (Berkeley DB substitute).

Layering, bottom-up: :mod:`~repro.storage.pager` (fixed-size pages over
a file, free-list allocation) → :mod:`~repro.storage.buffer_pool` (LRU
cache of decoded pages with pinning and an
:class:`~repro.storage.stats.IOStats` logical/physical split) →
:mod:`~repro.storage.btree` (variable-length-key B+ tree with
bidirectional cursors, overflow chains, and bottom-up bulk loading) →
:mod:`~repro.storage.env` (a directory of named trees sharing one pool
and one counter). :mod:`~repro.storage.keyenc` supplies
order-preserving composite keys; :mod:`~repro.storage.record` supplies
length-prefixed value framing.

Crash safety rides along the same stack: every pager carries a
checksummed redo log (:mod:`~repro.storage.wal`) replayed on open,
:mod:`~repro.storage.faults` injects deterministic failures beneath it
all, and :mod:`~repro.storage.fsck` deep-verifies what survived.
"""

from .btree import BTree, Cursor
from .buffer_pool import DEFAULT_POOL_PAGES, BufferPool
from .env import StorageEnvironment
from .faults import (
    NO_FAULTS,
    FaultInjector,
    FaultRule,
    FaultyFile,
    SimulatedCrash,
    enumerate_schedules,
)
from .fsck import CheckReport, FsckReport, check_tree, fsck_environment
from .keyenc import Desc, decode_key, encode_key, prefix_upper_bound
from .pager import DEFAULT_PAGE_SIZE, Pager
from .stats import IOStats
from .wal import WAL_SUFFIX, WriteAheadLog

__all__ = [
    "BTree",
    "BufferPool",
    "CheckReport",
    "Cursor",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_POOL_PAGES",
    "Desc",
    "FaultInjector",
    "FaultRule",
    "FaultyFile",
    "FsckReport",
    "IOStats",
    "NO_FAULTS",
    "Pager",
    "SimulatedCrash",
    "StorageEnvironment",
    "WAL_SUFFIX",
    "WriteAheadLog",
    "check_tree",
    "decode_key",
    "encode_key",
    "enumerate_schedules",
    "fsck_environment",
    "prefix_upper_bound",
]
