"""A page-based B+ tree with variable-length keys and values.

The Berkeley DB b-tree substitute (DESIGN.md substitution 1). Keys and
values are byte strings; keys compare raw (see
:mod:`~repro.storage.keyenc` for order-preserving composite keys).

Layout and behavior:

- **Leaves are doubly linked**, so range cursors run forward and
  backward without re-descending; a cursor pins exactly the one leaf it
  is positioned on.
- **Values above ¼ page spill** into chained overflow pages; the leaf
  keeps a fixed-size pointer, so huge CPT blobs never break fan-out.
- **Bulk loading** builds packed leaves bottom-up from sorted input at
  a configurable fill factor (default ~100%), then stacks branch levels
  on top — the write-once archive path every index build uses. A
  bulk-loaded tree is both smaller and shallower than the same data
  inserted one at a time.
- **Duplicates** are allowed (``put(..., replace=False)`` and
  duplicate-keyed bulk loads); ``get`` returns the first match and
  cursors enumerate all of them.
- **Deletes don't rebalance** — Caldera's archives are write-once, so
  emptied leaves simply stay in the sibling chain.
- Page 1 is the tree header (magic, root, leaf-chain ends, counters);
  corrupt or mis-opened files fail loudly.

Cost model: a point lookup on a bulk-loaded tree reads exactly
``height`` pages logically (one per level); a full scan reads each leaf
once after the initial descent. Every page touch goes through the
shared buffer pool, so all costs land in the environment's
:class:`~repro.storage.stats.IOStats`.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Optional, Tuple

from ..errors import CorruptPageError, PageError, StorageError
from ..obs.metrics import NullRegistry
from .buffer_pool import BufferPool
from .pager import Pager

_HEADER_PAGE = 1
_HDR_MAGIC = b"CALB"
_HDR = struct.Struct(">4sIIIIHQ")  # magic, root, first, last, leaves, height, entries

_PAGE_LEAF = 0x01
_PAGE_BRANCH = 0x02
_PAGE_OVERFLOW = 0x03

_LEAF_HDR = struct.Struct(">BIIH")      # type, prev, next, count
_LEAF_ENTRY = struct.Struct(">HBI")     # klen, flags, vlen
_BRANCH_HDR = struct.Struct(">BH")      # type, nkeys
_CHILD = struct.Struct(">I")
_KLEN = struct.Struct(">H")
_OVF_HDR = struct.Struct(">BIH")        # type, next, length
_OVF_PTR = struct.Struct(">IQ")         # first page, total length

_FLAG_SPILLED = 0x01


class LeafNode:
    __slots__ = ("page_id", "prev", "next", "keys", "values", "flags", "size")

    def __init__(self, page_id: int, prev: int = 0, nxt: int = 0) -> None:
        self.page_id = page_id
        self.prev = prev
        self.next = nxt
        self.keys: List[bytes] = []
        self.values: List[bytes] = []
        self.flags: List[int] = []
        self.size = _LEAF_HDR.size

    @staticmethod
    def entry_size(key: bytes, stored: bytes) -> int:
        return _LEAF_ENTRY.size + len(key) + len(stored)


class BranchNode:
    __slots__ = ("page_id", "keys", "children", "size")

    def __init__(self, page_id: int) -> None:
        self.page_id = page_id
        self.keys: List[bytes] = []
        self.children: List[int] = []
        self.size = _BRANCH_HDR.size

    @staticmethod
    def entry_size(key: bytes) -> int:
        return _KLEN.size + len(key) + _CHILD.size


class OverflowNode:
    __slots__ = ("page_id", "next", "data")

    def __init__(self, page_id: int, nxt: int, data: bytes) -> None:
        self.page_id = page_id
        self.next = nxt
        self.data = data


class BTree:
    """One B+ tree over one page file, cached by a shared buffer pool."""

    def __init__(
        self,
        pager: Pager,
        pool: BufferPool,
        name: Optional[str] = None,
        create: bool = True,
        metrics=None,
    ) -> None:
        self.pager = pager
        self.pool = pool
        self.name = name if name is not None else pager.path
        self.pool_key = pager.path
        self.page_size = pager.page_size
        self.max_key = max(24, self.page_size // 16)
        self.max_inline = self.page_size // 4
        self._header_dirty = False
        # Per-tree instruments, keyed by tree name (see repro.obs).
        self.metrics = metrics if metrics is not None else NullRegistry()
        tree_label = self.name
        self._m_descents = self.metrics.counter(
            "btree.descents", tree=tree_label)
        self._m_gets = self.metrics.counter("btree.gets", tree=tree_label)
        self._m_puts = self.metrics.counter("btree.puts", tree=tree_label)
        self._m_deletes = self.metrics.counter(
            "btree.deletes", tree=tree_label)
        self._m_leaf_splits = self.metrics.counter(
            "btree.leaf_splits", tree=tree_label)
        self._m_branch_splits = self.metrics.counter(
            "btree.branch_splits", tree=tree_label)
        self._m_ovf_follows = self.metrics.counter(
            "btree.overflow_follows", tree=tree_label)
        self._m_ovf_spills = self.metrics.counter(
            "btree.overflow_spills", tree=tree_label)
        self._m_cursor_steps = self.metrics.counter(
            "btree.cursor_steps", tree=tree_label)
        self._m_bulk_entries = self.metrics.counter(
            "btree.bulk_loaded_entries", tree=tree_label)
        if pager.num_pages <= _HEADER_PAGE:
            if not create:
                raise StorageError(f"tree {self.name!r} does not exist")
            if pager.allocate() != _HEADER_PAGE:
                raise StorageError("tree header must be the first page")
            root = pager.allocate()
            self._root = root
            self._first_leaf = root
            self._last_leaf = root
            self._num_leaves = 1
            self._height = 1
            self._num_entries = 0
            self.pool.put_new(self, root, LeafNode(root))
            self._header_dirty = True
            self.flush()
        else:
            self._read_header()

    # ------------------------------------------------------------------
    # Header
    # ------------------------------------------------------------------
    def _read_header(self) -> None:
        raw = self.pager.read(_HEADER_PAGE)
        magic, root, first, last, leaves, height, entries = _HDR.unpack_from(raw)
        if magic != _HDR_MAGIC:
            raise PageError(f"{self.name!r}: bad tree header magic {magic!r}")
        self._root = root
        self._first_leaf = first
        self._last_leaf = last
        self._num_leaves = leaves
        self._height = height
        self._num_entries = entries

    def _write_header(self) -> None:
        raw = _HDR.pack(
            _HDR_MAGIC, self._root, self._first_leaf, self._last_leaf,
            self._num_leaves, self._height, self._num_entries,
        )
        self.pager.write(_HEADER_PAGE, raw)
        self._header_dirty = False

    # ------------------------------------------------------------------
    # Node codec (the buffer pool calls these on miss / write-back)
    # ------------------------------------------------------------------
    def decode_page(self, page_id: int, raw: bytes):
        kind = raw[0]
        if kind == _PAGE_LEAF:
            _, prev, nxt, count = _LEAF_HDR.unpack_from(raw)
            node = LeafNode(page_id, prev, nxt)
            pos = _LEAF_HDR.size
            for _ in range(count):
                klen, flags, vlen = _LEAF_ENTRY.unpack_from(raw, pos)
                pos += _LEAF_ENTRY.size
                node.keys.append(raw[pos:pos + klen])
                pos += klen
                node.values.append(raw[pos:pos + vlen])
                pos += vlen
                node.flags.append(flags)
            node.size = pos
            return node
        if kind == _PAGE_BRANCH:
            _, nkeys = _BRANCH_HDR.unpack_from(raw)
            node = BranchNode(page_id)
            pos = _BRANCH_HDR.size
            for _ in range(nkeys + 1):
                node.children.append(_CHILD.unpack_from(raw, pos)[0])
                pos += _CHILD.size
            for _ in range(nkeys):
                (klen,) = _KLEN.unpack_from(raw, pos)
                pos += _KLEN.size
                node.keys.append(raw[pos:pos + klen])
                pos += klen
            node.size = _BRANCH_HDR.size + sum(
                BranchNode.entry_size(k) for k in node.keys
            ) + _CHILD.size
            return node
        if kind == _PAGE_OVERFLOW:
            _, nxt, length = _OVF_HDR.unpack_from(raw)
            start = _OVF_HDR.size
            return OverflowNode(page_id, nxt, raw[start:start + length])
        raise CorruptPageError(
            f"{self.name!r}: unknown page type 0x{kind:02x} on page "
            f"{page_id}"
        )

    def encode_page(self, node) -> bytes:
        if isinstance(node, LeafNode):
            parts = [_LEAF_HDR.pack(_PAGE_LEAF, node.prev, node.next,
                                    len(node.keys))]
            for key, value, flags in zip(node.keys, node.values, node.flags):
                parts.append(_LEAF_ENTRY.pack(len(key), flags, len(value)))
                parts.append(key)
                parts.append(value)
            return b"".join(parts)
        if isinstance(node, BranchNode):
            parts = [_BRANCH_HDR.pack(_PAGE_BRANCH, len(node.keys))]
            for child in node.children:
                parts.append(_CHILD.pack(child))
            for key in node.keys:
                parts.append(_KLEN.pack(len(key)))
                parts.append(key)
            return b"".join(parts)
        if isinstance(node, OverflowNode):
            return _OVF_HDR.pack(_PAGE_OVERFLOW, node.next,
                                 len(node.data)) + node.data
        raise StorageError(f"cannot encode node of type {type(node).__name__}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self):
        """The environment-wide I/O counters (shared by all trees)."""
        return self.pager.stats

    @property
    def height(self) -> int:
        return self._height

    @property
    def num_leaves(self) -> int:
        return self._num_leaves

    def __len__(self) -> int:
        return self._num_entries

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def _check_key(self, key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise StorageError(f"keys must be bytes, got {type(key).__name__}")
        if len(key) > self.max_key:
            raise StorageError(
                f"key of {len(key)} bytes exceeds the {self.max_key}-byte "
                f"limit for {self.page_size}-byte pages"
            )

    def _descend(self, key: bytes):
        """The leaf that owns ``key`` plus the branch path down to it."""
        self._m_descents.inc()
        path: List[Tuple[BranchNode, int]] = []
        node = self.pool.get(self, self._root)
        while isinstance(node, BranchNode):
            i = bisect_right(node.keys, key)
            path.append((node, i))
            node = self.pool.get(self, node.children[i])
        return node, path

    def get(self, key: bytes) -> Optional[bytes]:
        """The value stored under ``key`` (first duplicate), or None."""
        self._check_key(key)
        self._m_gets.inc()
        leaf, _ = self._descend(key)
        i = bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return self._load_value(leaf, i)
        return None

    def put(self, key: bytes, value: bytes, replace: bool = True) -> None:
        """Insert (or with ``replace``, upsert) one entry."""
        self._check_key(key)
        if not isinstance(value, (bytes, bytearray)):
            raise StorageError(
                f"values must be bytes, got {type(value).__name__}"
            )
        self._m_puts.inc()
        leaf, path = self._descend(key)
        i = bisect_left(leaf.keys, key)
        if replace and i < len(leaf.keys) and leaf.keys[i] == key:
            # Free the old chain before spilling the new value so the
            # replacement reuses the just-freed pages.
            if leaf.flags[i] & _FLAG_SPILLED:
                self._free_overflow(leaf.values[i])
            stored, flags = self._store_value(bytes(value))
            leaf.size += len(stored) - len(leaf.values[i])
            leaf.values[i] = stored
            leaf.flags[i] = flags
        else:
            stored, flags = self._store_value(bytes(value))
            leaf.keys.insert(i, key)
            leaf.values.insert(i, stored)
            leaf.flags.insert(i, flags)
            leaf.size += LeafNode.entry_size(key, stored)
            self._num_entries += 1
        self.pool.mark_dirty(self, leaf.page_id)
        self._header_dirty = True
        if leaf.size > self.page_size:
            self._split_leaf(leaf, path)

    def delete(self, key: bytes) -> bool:
        """Remove the first entry with ``key``; True if one existed."""
        self._check_key(key)
        self._m_deletes.inc()
        leaf, _ = self._descend(key)
        i = bisect_left(leaf.keys, key)
        if i >= len(leaf.keys) or leaf.keys[i] != key:
            return False
        if leaf.flags[i] & _FLAG_SPILLED:
            self._free_overflow(leaf.values[i])
        leaf.size -= LeafNode.entry_size(leaf.keys[i], leaf.values[i])
        del leaf.keys[i]
        del leaf.values[i]
        del leaf.flags[i]
        self._num_entries -= 1
        self.pool.mark_dirty(self, leaf.page_id)
        self._header_dirty = True
        return True

    # ------------------------------------------------------------------
    # Splits
    # ------------------------------------------------------------------
    def _split_leaf(self, leaf: LeafNode, path) -> None:
        self._m_leaf_splits.inc()
        total = leaf.size - _LEAF_HDR.size
        acc = 0
        split = len(leaf.keys) - 1
        for i in range(len(leaf.keys)):
            acc += LeafNode.entry_size(leaf.keys[i], leaf.values[i])
            if acc >= total // 2:
                split = i + 1
                break
        split = max(1, min(split, len(leaf.keys) - 1))

        right_id = self._allocate_page()
        right = LeafNode(right_id, prev=leaf.page_id, nxt=leaf.next)
        right.keys = leaf.keys[split:]
        right.values = leaf.values[split:]
        right.flags = leaf.flags[split:]
        right.size = _LEAF_HDR.size + sum(
            LeafNode.entry_size(k, v)
            for k, v in zip(right.keys, right.values)
        )
        del leaf.keys[split:]
        del leaf.values[split:]
        del leaf.flags[split:]
        leaf.size -= right.size - _LEAF_HDR.size

        if leaf.next:
            after = self.pool.get(self, leaf.next)
            after.prev = right_id
            self.pool.mark_dirty(self, after.page_id)
        else:
            self._last_leaf = right_id
        leaf.next = right_id
        self._num_leaves += 1
        self.pool.put_new(self, right_id, right)
        self.pool.mark_dirty(self, leaf.page_id)
        self._insert_into_parent(path, leaf.page_id, right.keys[0], right_id)

    def _insert_into_parent(self, path, left_id: int, sep: bytes,
                            right_id: int) -> None:
        if not path:
            self._grow_root(left_id, sep, right_id)
            return
        parent, child_index = path.pop()
        parent.keys.insert(child_index, sep)
        parent.children.insert(child_index + 1, right_id)
        parent.size += BranchNode.entry_size(sep)
        self.pool.mark_dirty(self, parent.page_id)
        if parent.size > self.page_size:
            self._split_branch(parent, path)

    def _split_branch(self, branch: BranchNode, path) -> None:
        self._m_branch_splits.inc()
        total = branch.size - _BRANCH_HDR.size
        acc = 0
        mid = len(branch.keys) - 1
        for i in range(len(branch.keys)):
            acc += BranchNode.entry_size(branch.keys[i])
            if acc >= total // 2:
                mid = i
                break
        mid = max(0, min(mid, len(branch.keys) - 2))
        sep = branch.keys[mid]

        right_id = self._allocate_page()
        right = BranchNode(right_id)
        right.keys = branch.keys[mid + 1:]
        right.children = branch.children[mid + 1:]
        right.size = _BRANCH_HDR.size + _CHILD.size + sum(
            BranchNode.entry_size(k) for k in right.keys
        )
        del branch.keys[mid:]
        del branch.children[mid + 1:]
        branch.size = _BRANCH_HDR.size + _CHILD.size + sum(
            BranchNode.entry_size(k) for k in branch.keys
        )
        self.pool.put_new(self, right_id, right)
        self.pool.mark_dirty(self, branch.page_id)
        self._insert_into_parent(path, branch.page_id, sep, right_id)

    def _grow_root(self, left_id: int, sep: bytes, right_id: int) -> None:
        root_id = self._allocate_page()
        root = BranchNode(root_id)
        root.keys = [sep]
        root.children = [left_id, right_id]
        root.size = _BRANCH_HDR.size + 2 * _CHILD.size + _KLEN.size + len(sep)
        self.pool.put_new(self, root_id, root)
        self._root = root_id
        self._height += 1
        self._header_dirty = True

    def _allocate_page(self) -> int:
        page_id = self.pager.allocate()
        # A recycled page id may have a stale (freed) frame cached.
        self.pool.discard(self, page_id)
        return page_id

    # ------------------------------------------------------------------
    # Overflow values
    # ------------------------------------------------------------------
    def _store_value(self, value: bytes) -> Tuple[bytes, int]:
        if len(value) <= self.max_inline:
            return value, 0
        self._m_ovf_spills.inc()
        chunk = self.page_size - _OVF_HDR.size
        nxt = 0
        for start in range(((len(value) - 1) // chunk) * chunk, -1, -chunk):
            page_id = self._allocate_page()
            node = OverflowNode(page_id, nxt, value[start:start + chunk])
            self.pager.write(page_id, self.encode_page(node))
            nxt = page_id
        return _OVF_PTR.pack(nxt, len(value)), _FLAG_SPILLED

    def _load_value(self, leaf: LeafNode, slot: int) -> bytes:
        if not leaf.flags[slot] & _FLAG_SPILLED:
            return leaf.values[slot]
        page_id, total = _OVF_PTR.unpack(leaf.values[slot])
        parts: List[bytes] = []
        while page_id:
            node = self.pool.get(self, page_id)
            self._m_ovf_follows.inc()
            parts.append(node.data)
            page_id = node.next
        value = b"".join(parts)
        if len(value) != total:
            raise CorruptPageError(
                f"{self.name!r}: overflow chain yielded {len(value)} bytes, "
                f"expected {total}"
            )
        return value

    def _free_overflow(self, stored: bytes) -> None:
        page_id, _ = _OVF_PTR.unpack(stored)
        while page_id:
            # Read the chain pointer without inserting doomed pages into
            # the pool (which could evict a leaf held by the caller).
            if self.pool.contains(self, page_id):
                node = self.pool.get(self, page_id)
            else:
                node = self.decode_page(page_id, self.pager.read(page_id))
            nxt = node.next
            self.pool.discard(self, page_id)
            self.pager.free(page_id)
            page_id = nxt

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def bulk_load(
        self,
        items: Iterable[Tuple[bytes, bytes]],
        fill: float = 1.0,
    ) -> int:
        """Build the tree bottom-up from sorted ``(key, value)`` pairs.

        Packs leaves to ``fill`` of their capacity (default ~100%: the
        write-once archive setting), links them, then builds each branch
        level from the one below. The tree must be empty. Duplicate keys
        are kept. Returns the number of entries loaded.
        """
        if self._num_entries:
            raise StorageError(
                f"bulk_load needs an empty tree; {self.name!r} has "
                f"{self._num_entries} entries"
            )
        if not 0.1 <= fill <= 1.0:
            raise StorageError(f"fill factor {fill} outside [0.1, 1.0]")
        # Discard the empty initial tree (root leaf + any branch pages).
        self._free_subtree(self._root)

        target = max(64, int((self.page_size - _LEAF_HDR.size) * fill))
        leaf: Optional[LeafNode] = None
        pending: Optional[LeafNode] = None
        seps: List[Tuple[bytes, int]] = []
        first_leaf = last_leaf = 0
        count = 0
        prev_key: Optional[bytes] = None

        def emit(nxt: int) -> None:
            nonlocal pending
            if pending is not None:
                pending.next = nxt
                self.pager.write(pending.page_id, self.encode_page(pending))
                pending = None

        for key, value in items:
            self._check_key(key)
            if prev_key is not None and key < prev_key:
                raise StorageError(
                    "bulk_load input is not sorted "
                    f"({prev_key!r} followed by {key!r})"
                )
            prev_key = key
            stored, flags = self._store_value(bytes(value))
            entry = LeafNode.entry_size(key, stored)
            if leaf is None or leaf.size + entry > target:
                page_id = self._allocate_page()
                new = LeafNode(page_id, prev=leaf.page_id if leaf else 0)
                emit(page_id)
                pending = new
                if leaf is None:
                    first_leaf = page_id
                leaf = new
                seps.append((key, page_id))
                last_leaf = page_id
            leaf.keys.append(key)
            leaf.values.append(stored)
            leaf.flags.append(flags)
            leaf.size += entry
            count += 1

        if leaf is None:  # empty input: recreate the empty root leaf
            root = self._allocate_page()
            self.pool.put_new(self, root, LeafNode(root))
            self._root = root
            self._first_leaf = self._last_leaf = root
            self._num_leaves = 1
            self._height = 1
            self._num_entries = 0
            self._header_dirty = True
            self.flush()
            return 0
        emit(0)

        num_leaves = len(seps)
        height = 1
        while len(seps) > 1:
            seps = self._build_branch_level(seps, fill)
            height += 1

        self._root = seps[0][1]
        self._first_leaf = first_leaf
        self._last_leaf = last_leaf
        self._num_leaves = num_leaves
        self._height = height
        self._num_entries = count
        self._header_dirty = True
        self._m_bulk_entries.inc(count)
        self.flush()
        return count

    def _build_branch_level(
        self, children: List[Tuple[bytes, int]], fill: float
    ) -> List[Tuple[bytes, int]]:
        target = max(
            64, int((self.page_size - _BRANCH_HDR.size - _CHILD.size) * fill)
        )
        out: List[Tuple[bytes, int]] = []
        node: Optional[BranchNode] = None
        for key, child in children:
            entry = BranchNode.entry_size(key)
            if node is None or node.size + entry > target:
                if node is not None:
                    self.pager.write(node.page_id, self.encode_page(node))
                page_id = self._allocate_page()
                node = BranchNode(page_id)
                node.children.append(child)
                node.size += _CHILD.size
                out.append((key, page_id))
            else:
                node.keys.append(key)
                node.children.append(child)
                node.size += entry
        if node is not None:
            self.pager.write(node.page_id, self.encode_page(node))
        return out

    def _free_subtree(self, page_id: int) -> None:
        node = self.pool.get(self, page_id)
        if isinstance(node, BranchNode):
            for child in node.children:
                self._free_subtree(child)
        elif isinstance(node, LeafNode):
            for stored, flags in zip(node.values, node.flags):
                if flags & _FLAG_SPILLED:
                    self._free_overflow(stored)
        self.pool.discard(self, page_id)
        self.pager.free(page_id)

    # ------------------------------------------------------------------
    # Cursors and scans
    # ------------------------------------------------------------------
    def cursor(self) -> "Cursor":
        return Cursor(self)

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        return self.range_items(None, None)

    def range_items(
        self,
        lo: Optional[bytes] = None,
        hi: Optional[bytes] = None,
        reverse: bool = False,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Yield ``(key, value)`` with ``lo <= key < hi``; ``reverse``
        walks the leaf chain backward (still within the same bounds)."""
        cur = self.cursor()
        try:
            if not reverse:
                ok = cur.first() if lo is None else cur.seek(lo)
                while ok and (hi is None or cur.key < hi):
                    yield cur.key, cur.value
                    ok = cur.next()
            else:
                if hi is None:
                    ok = cur.last()
                else:
                    ok = cur.seek(hi)
                    ok = cur.prev() if ok else cur.last()
                while ok and (lo is None or cur.key >= lo):
                    yield cur.key, cur.value
                    ok = cur.prev()
        finally:
            cur.close()

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def check(self):
        """Deep structural verification; returns a
        :class:`~repro.storage.fsck.CheckReport` (flushes first so the
        check sees the current disk image)."""
        from .fsck import check_tree

        self.flush()
        return check_tree(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write back dirty pages and the header; sync the pager."""
        self.pool.flush(self)
        if self._header_dirty:
            self._write_header()
        self.pager.sync()

    def close(self) -> None:
        if not self.pager.closed:
            self.flush()
            self.pool.discard(self)
            self.pager.close()


class Cursor:
    """A bidirectional cursor pinned to one leaf at a time.

    Positions on entries; ``seek`` lands on the first entry with
    ``key >= target``. ``next``/``prev`` follow the leaf sibling links,
    so a scan costs one logical page read per *leaf*, not per entry.
    Mutating the tree invalidates open cursors (write-once archives
    never do).
    """

    def __init__(self, tree: BTree) -> None:
        self._tree = tree
        self._leaf: Optional[LeafNode] = None
        self._slot = -1

    # -- position management -------------------------------------------
    def _move_to(self, leaf: Optional[LeafNode]) -> None:
        old = self._leaf
        if leaf is old:
            return
        if leaf is not None:
            self._tree.pool.pin(self._tree, leaf.page_id)
        if old is not None:
            self._tree.pool.unpin(self._tree, old.page_id)
        self._leaf = leaf

    def _settle_forward(self, leaf: LeafNode, slot: int) -> bool:
        """Land on (leaf, slot), skipping forward over empty leaves."""
        while slot >= len(leaf.keys):
            if not leaf.next:
                return self._invalidate()
            leaf = self._tree.pool.get(self._tree, leaf.next)
            slot = 0
        self._move_to(leaf)
        self._slot = slot
        return True

    def _settle_backward(self, leaf: LeafNode, slot: int) -> bool:
        while slot < 0:
            if not leaf.prev:
                return self._invalidate()
            leaf = self._tree.pool.get(self._tree, leaf.prev)
            slot = len(leaf.keys) - 1
        self._move_to(leaf)
        self._slot = slot
        return True

    def _invalidate(self) -> bool:
        self._move_to(None)
        self._slot = -1
        return False

    # -- public surface -------------------------------------------------
    @property
    def valid(self) -> bool:
        return self._leaf is not None

    @property
    def key(self) -> bytes:
        if self._leaf is None:
            raise StorageError("cursor is not positioned")
        return self._leaf.keys[self._slot]

    @property
    def value(self) -> bytes:
        if self._leaf is None:
            raise StorageError("cursor is not positioned")
        return self._tree._load_value(self._leaf, self._slot)

    def seek(self, key: bytes) -> bool:
        """Position on the first entry with key >= ``key``."""
        self._tree._check_key(key)
        leaf, _ = self._tree._descend(key)
        return self._settle_forward(leaf, bisect_left(leaf.keys, key))

    def first(self) -> bool:
        leaf = self._tree.pool.get(self._tree, self._tree._first_leaf)
        return self._settle_forward(leaf, 0)

    def last(self) -> bool:
        leaf = self._tree.pool.get(self._tree, self._tree._last_leaf)
        return self._settle_backward(leaf, len(leaf.keys) - 1)

    def next(self) -> bool:
        if self._leaf is None:
            return False
        self._tree._m_cursor_steps.inc()
        return self._settle_forward(self._leaf, self._slot + 1)

    def prev(self) -> bool:
        if self._leaf is None:
            return False
        self._tree._m_cursor_steps.inc()
        return self._settle_backward(self._leaf, self._slot - 1)

    def close(self) -> None:
        self._invalidate()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
