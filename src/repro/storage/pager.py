"""Fixed-size pages over an ordinary file — now crash-safe.

The pager is the only layer that touches the operating system: real
seek/read/write calls, one page at a time, each counted in the shared
:class:`~repro.storage.stats.IOStats`. Everything above (buffer pool,
B+ tree) deals in page ids.

Crash safety (see DESIGN.md "Durability & recovery"):

- Every page lives in a *frame* of ``page_size + 16`` bytes: a header
  of ``crc32 | lsn | payload_len`` followed by the client's page. The
  checksum is verified on every physical read, so a torn or corrupted
  frame raises :class:`~repro.errors.CorruptPageError` instead of
  decoding garbage (an all-zero frame is a never-written page and reads
  back as zeros).
- Writes never touch the main file directly. They append full frames to
  the write-ahead log (:mod:`~repro.storage.wal`) and park the frame in
  an in-memory table; :meth:`sync` commits (WAL fsync) and then
  checkpoints — in-place frame writes in page-id order, main-file
  fsync, WAL truncate. The main file is only ever written *after* the
  covering WAL records are durable, so any crash rolls back to the last
  :meth:`sync` on reopen.
- Opening a file whose WAL holds committed records replays them first
  (redo recovery), truncating the log at the first torn record.

File layout: page 0 is the pager's meta frame (magic, format version,
page size, allocation high-water mark, free-list head, LSN high-water,
checksum); pages 1..N-1 belong to the client. Freed pages form a linked
list threaded through their first 8 bytes and are reused before the
file grows. The meta frame records the page size so a file opened with
the wrong geometry fails loudly instead of shearing pages.
"""

from __future__ import annotations

import struct
import os
import zlib
from typing import Iterator, Optional

from ..errors import CorruptPageError, PageError, StorageError
from ..obs.metrics import NullRegistry
from .faults import NO_FAULTS, fsync_file
from .stats import IOStats
from .wal import WAL_SUFFIX, WriteAheadLog

DEFAULT_PAGE_SIZE = 4096
MIN_PAGE_SIZE = 128

_MAGIC = b"CALP"
_VERSION = 2
# magic, version, page_size, num_pages, free_head, lsn + trailing crc32
_META = struct.Struct(">4sHIQQQ")
_META_CRC = struct.Struct(">I")
_PAGE_HDR = struct.Struct(">IQI")   # crc32, lsn, payload_len
_PAGE_BODY = struct.Struct(">QI")   # lsn, payload_len (the crc'd part)
PAGE_HEADER_SIZE = _PAGE_HDR.size
_FREE_LINK = struct.Struct(">Q")


class Pager:
    """Page-granular access to one file, redo-logged and checksummed."""

    def __init__(
        self,
        path: str,
        page_size: Optional[int] = None,
        stats: Optional[IOStats] = None,
        create: bool = True,
        metrics=None,
        faults=None,
        tracer=None,
    ) -> None:
        self.path = path
        self.stats = stats if stats is not None else IOStats()
        self.metrics = metrics if metrics is not None else NullRegistry()
        self.faults = faults if faults is not None else NO_FAULTS
        self._m_reads = self.metrics.counter("pager.physical_reads")
        self._m_writes = self.metrics.counter("pager.physical_writes")
        self._m_alloc_fresh = self.metrics.counter("pager.pages_allocated")
        self._m_alloc_reused = self.metrics.counter("pager.pages_reused")
        self._m_freed = self.metrics.counter("pager.pages_freed")
        self._m_syncs = self.metrics.counter("pager.syncs")
        self._m_checksum_failures = self.metrics.counter(
            "pager.checksum_failures")
        self._m_checkpoint_pages = self.metrics.counter(
            "pager.checkpoint_pages")
        self._closed = False
        self._dirty = {}  # page_id -> frame, not yet checkpointed
        self._meta_dirty = False
        self._lsn = 0
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        self.wal = WriteAheadLog(path + WAL_SUFFIX, faults=self.faults,
                                 metrics=self.metrics, stats=self.stats)
        if not exists and self.wal.pending:
            # The main file was lost before its first checkpoint; the
            # committed state lives only in the log. Recreate and replay.
            if not os.path.exists(path):
                with open(path, "wb"):
                    pass
            exists = True
        if not exists and not create:
            self.wal.close()
            raise StorageError(f"no such storage file: {path}")
        if exists:
            self._file = self.faults.open(path, "r+b")
            self._recover(tracer)
            # An explicit page_size must match the file; None adopts it.
            self._read_meta(expected_page_size=page_size)
            self.wal.initialize(self.page_size)
        else:
            if page_size is None:
                page_size = DEFAULT_PAGE_SIZE
            if page_size < MIN_PAGE_SIZE:
                raise PageError(
                    f"page size {page_size} below minimum {MIN_PAGE_SIZE}"
                )
            self._file = self.faults.open(path, "w+b")
            self.page_size = page_size
            self.num_pages = 1  # the meta page
            self._free_head = 0
            self._meta_dirty = True
            self.wal.initialize(page_size)
            self.sync()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def frame_size(self) -> int:
        """On-disk bytes per page: the client page plus its header."""
        return self.page_size + PAGE_HEADER_SIZE

    @property
    def lsn(self) -> int:
        """The log sequence number of the most recent page write."""
        return self._lsn

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self, tracer) -> None:
        """Replay committed WAL records into the main file, then
        truncate the log — the redo half of crash recovery."""
        if not self.wal.pending:
            return
        frame_size = self.wal.page_size + PAGE_HEADER_SIZE

        def _replay() -> None:
            applied = self.wal.recover_into(self._file, frame_size)
            if applied:
                self.faults.fire("recover.fsync", handle=self._file)
                fsync_file(self._file)
            self.wal.reset()

        if tracer is not None:
            with tracer.span("wal.recover", file=os.path.basename(self.path)):
                _replay()
        else:
            _replay()

    # ------------------------------------------------------------------
    # Meta page
    # ------------------------------------------------------------------
    def _read_meta(self, expected_page_size: Optional[int]) -> None:
        self._file.seek(0)
        raw = self._file.read(_META.size + _META_CRC.size)
        try:
            magic, version, page_size, num_pages, free_head, lsn = \
                _META.unpack(raw[:_META.size])
            (crc,) = _META_CRC.unpack(raw[_META.size:])
        except struct.error:
            raise PageError(f"{self.path}: truncated meta page") from None
        if magic != _MAGIC:
            raise PageError(f"{self.path}: bad magic {magic!r}")
        if version != _VERSION:
            raise PageError(f"{self.path}: unsupported format v{version}")
        if crc != zlib.crc32(raw[:_META.size]):
            self._m_checksum_failures.inc()
            raise CorruptPageError(
                f"{self.path}: meta page checksum mismatch"
            )
        if expected_page_size is not None and page_size != expected_page_size:
            raise PageError(
                f"{self.path}: file has {page_size}-byte pages, "
                f"opened with page_size={expected_page_size}"
            )
        self.page_size = page_size
        self.num_pages = num_pages
        self._free_head = free_head
        self._lsn = lsn

    def _meta_frame(self) -> bytes:
        body = _META.pack(
            _MAGIC, _VERSION, self.page_size, self.num_pages,
            self._free_head, self._lsn,
        )
        raw = body + _META_CRC.pack(zlib.crc32(body))
        return raw.ljust(self.frame_size, b"\x00")

    # ------------------------------------------------------------------
    # Frame codec
    # ------------------------------------------------------------------
    def _make_frame(self, payload: bytes, lsn: int) -> bytes:
        body = _PAGE_BODY.pack(lsn, len(payload)) \
            + payload.ljust(self.page_size, b"\x00")
        return _META_CRC.pack(zlib.crc32(body)) + body

    def _open_frame(self, page_id: int, frame: bytes) -> bytes:
        if not any(frame):
            # Never written: a fresh page reads back as zeros.
            return bytes(self.page_size)
        crc, lsn, _payload_len = _PAGE_HDR.unpack_from(frame)
        if crc != zlib.crc32(frame[_META_CRC.size:]):
            self._m_checksum_failures.inc()
            raise CorruptPageError(
                f"{self.path}: checksum mismatch on page {page_id} "
                f"(lsn {lsn}) — torn or corrupted frame"
            )
        return frame[PAGE_HEADER_SIZE:]

    def frame_lsn(self, page_id: int) -> int:
        """The LSN stamped on a page's current frame (0 if unwritten)."""
        frame = self._dirty.get(page_id)
        if frame is None:
            self._file.seek(page_id * self.frame_size)
            frame = self._file.read(self.frame_size)
        if len(frame) < PAGE_HEADER_SIZE or not any(frame):
            return 0
        return _PAGE_HDR.unpack_from(frame)[1]

    # ------------------------------------------------------------------
    # Page I/O
    # ------------------------------------------------------------------
    def _check(self, page_id: int) -> None:
        if self._closed:
            raise StorageError(f"{self.path}: pager is closed")
        if not 1 <= page_id < self.num_pages:
            raise PageError(
                f"{self.path}: page {page_id} out of range "
                f"[1, {self.num_pages})"
            )

    def read(self, page_id: int) -> bytes:
        """Read and checksum-verify one page (zeros if never written)."""
        self._check(page_id)
        self.faults.fire("pager.read")
        frame = self._dirty.get(page_id)
        if frame is None:
            self._file.seek(page_id * self.frame_size)
            frame = self._file.read(self.frame_size)
            if len(frame) < self.frame_size:
                frame = frame.ljust(self.frame_size, b"\x00")
        self.stats.physical_reads += 1
        self._m_reads.inc()
        return self._open_frame(page_id, frame)

    def write(self, page_id: int, data: bytes) -> None:
        """Write one page (data must fit in a page).

        The frame goes to the write-ahead log, not the main file; it
        becomes durable at the next :meth:`sync` and reaches its
        in-place offset at that sync's checkpoint.
        """
        self._check(page_id)
        if len(data) > self.page_size:
            raise PageError(
                f"{self.path}: {len(data)} bytes exceed the "
                f"{self.page_size}-byte page"
            )
        self._lsn += 1
        frame = self._make_frame(bytes(data), self._lsn)
        self.wal.append(page_id, frame, self._lsn)
        self._dirty[page_id] = frame
        self.stats.physical_writes += 1
        self._m_writes.inc()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """A fresh page id: reuse the free list, else extend the file."""
        if self._closed:
            raise StorageError(f"{self.path}: pager is closed")
        self._meta_dirty = True
        if self._free_head:
            page_id = self._free_head
            raw = self.read(page_id)
            (self._free_head,) = _FREE_LINK.unpack_from(raw)
            self._m_alloc_reused.inc()
            return page_id
        page_id = self.num_pages
        self.num_pages += 1
        self._m_alloc_fresh.inc()
        return page_id

    def free(self, page_id: int) -> None:
        """Return a page to the free list."""
        self._check(page_id)
        self.write(page_id, _FREE_LINK.pack(self._free_head))
        self._free_head = page_id
        self._meta_dirty = True
        self._m_freed.inc()

    def free_pages(self) -> Iterator[int]:
        """Walk the free list; raises :class:`CorruptPageError` on a
        cycle or an out-of-range link."""
        seen = set()
        page_id = self._free_head
        while page_id:
            if page_id in seen:
                raise CorruptPageError(
                    f"{self.path}: free-list cycle at page {page_id}"
                )
            if not 1 <= page_id < self.num_pages:
                raise CorruptPageError(
                    f"{self.path}: free-list link to out-of-range page "
                    f"{page_id}"
                )
            seen.add(page_id)
            yield page_id
            (page_id,) = _FREE_LINK.unpack_from(self.read(page_id))

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _checkpoint(self) -> None:
        """Move committed frames from the WAL to their in-place offsets
        (deterministic page-id order), fsync, truncate the log."""
        for page_id in sorted(self._dirty):
            frame = self._dirty[page_id]
            self._file.seek(page_id * self.frame_size)
            self.faults.fire("checkpoint.write", handle=self._file,
                             data=frame)
            self._file.write(frame)
            self.stats.physical_writes += 1
            self._m_writes.inc()
            self._m_checkpoint_pages.inc()
        self.faults.fire("checkpoint.fsync", handle=self._file)
        fsync_file(self._file)
        self.wal.reset()
        self._dirty.clear()

    def sync(self) -> None:
        """Commit: meta to WAL, WAL fsync, then checkpoint. On return
        every page ever written is durable in the main file."""
        if self._closed:
            return
        if not self._dirty and not self._meta_dirty:
            return
        self._dirty[0] = self._meta_frame()
        self.wal.append(0, self._dirty[0], self._lsn)
        self.stats.physical_writes += 1
        self._m_writes.inc()
        self.wal.commit(self._lsn)
        self._meta_dirty = False
        self._checkpoint()
        self._m_syncs.inc()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        try:
            self.sync()
        finally:
            self._closed = True
            self.wal.close()
            if not getattr(self._file, "closed", False):
                self._file.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def file_size(self) -> int:
        """Allocated file extent in bytes (high-water mark)."""
        return self.num_pages * self.frame_size

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
