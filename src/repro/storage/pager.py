"""Fixed-size pages over an ordinary file.

The pager is the only layer that touches the operating system: real
seek/read/write calls, one page at a time, each counted in the shared
:class:`~repro.storage.stats.IOStats`. Everything above (buffer pool,
B+ tree) deals in page ids.

File layout: page 0 is the pager's meta page (magic, format version,
page size, allocation high-water mark, free-list head); pages 1..N-1
belong to the client. Freed pages form a linked list threaded through
their first 8 bytes and are reused before the file grows. The meta page
records the page size so a file opened with the wrong geometry fails
loudly instead of shearing pages.
"""

from __future__ import annotations

import os
import struct
from typing import Optional

from ..errors import PageError, StorageError
from ..obs.metrics import NullRegistry
from .stats import IOStats

DEFAULT_PAGE_SIZE = 4096
MIN_PAGE_SIZE = 128

_MAGIC = b"CALP"
_VERSION = 1
_META = struct.Struct(">4sHIQQ")  # magic, version, page_size, num_pages, free_head
_FREE_LINK = struct.Struct(">Q")


class Pager:
    """Page-granular access to one file."""

    def __init__(
        self,
        path: str,
        page_size: Optional[int] = None,
        stats: Optional[IOStats] = None,
        create: bool = True,
        metrics=None,
    ) -> None:
        self.path = path
        self.stats = stats if stats is not None else IOStats()
        self.metrics = metrics if metrics is not None else NullRegistry()
        self._m_reads = self.metrics.counter("pager.physical_reads")
        self._m_writes = self.metrics.counter("pager.physical_writes")
        self._m_alloc_fresh = self.metrics.counter("pager.pages_allocated")
        self._m_alloc_reused = self.metrics.counter("pager.pages_reused")
        self._m_freed = self.metrics.counter("pager.pages_freed")
        self._m_syncs = self.metrics.counter("pager.syncs")
        self._closed = False
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        if not exists and not create:
            raise StorageError(f"no such storage file: {path}")
        if exists:
            self._file = open(path, "r+b")
            # An explicit page_size must match the file; None adopts it.
            self._read_meta(expected_page_size=page_size)
        else:
            if page_size is None:
                page_size = DEFAULT_PAGE_SIZE
            if page_size < MIN_PAGE_SIZE:
                raise PageError(
                    f"page size {page_size} below minimum {MIN_PAGE_SIZE}"
                )
            self._file = open(path, "w+b")
            self.page_size = page_size
            self.num_pages = 1  # the meta page
            self._free_head = 0
            self._write_meta()

    # ------------------------------------------------------------------
    # Meta page
    # ------------------------------------------------------------------
    def _read_meta(self, expected_page_size: Optional[int]) -> None:
        self._file.seek(0)
        raw = self._file.read(_META.size)
        try:
            magic, version, page_size, num_pages, free_head = _META.unpack(raw)
        except struct.error:
            raise PageError(f"{self.path}: truncated meta page") from None
        if magic != _MAGIC:
            raise PageError(f"{self.path}: bad magic {magic!r}")
        if version != _VERSION:
            raise PageError(f"{self.path}: unsupported format v{version}")
        if expected_page_size is not None and page_size != expected_page_size:
            raise PageError(
                f"{self.path}: file has {page_size}-byte pages, "
                f"opened with page_size={expected_page_size}"
            )
        self.page_size = page_size
        self.num_pages = num_pages
        self._free_head = free_head

    def _write_meta(self) -> None:
        raw = _META.pack(
            _MAGIC, _VERSION, self.page_size, self.num_pages, self._free_head
        )
        self._file.seek(0)
        self._file.write(raw.ljust(self.page_size, b"\x00"))
        self.stats.physical_writes += 1
        self._m_writes.inc()

    # ------------------------------------------------------------------
    # Page I/O
    # ------------------------------------------------------------------
    def _check(self, page_id: int) -> None:
        if self._closed:
            raise StorageError(f"{self.path}: pager is closed")
        if not 1 <= page_id < self.num_pages:
            raise PageError(
                f"{self.path}: page {page_id} out of range "
                f"[1, {self.num_pages})"
            )

    def read(self, page_id: int) -> bytes:
        """Read one page (zero-padded if never written)."""
        self._check(page_id)
        self._file.seek(page_id * self.page_size)
        raw = self._file.read(self.page_size)
        self.stats.physical_reads += 1
        self._m_reads.inc()
        if len(raw) < self.page_size:
            raw = raw.ljust(self.page_size, b"\x00")
        return raw

    def write(self, page_id: int, data: bytes) -> None:
        """Write one page (data must fit in a page)."""
        self._check(page_id)
        if len(data) > self.page_size:
            raise PageError(
                f"{self.path}: {len(data)} bytes exceed the "
                f"{self.page_size}-byte page"
            )
        if len(data) < self.page_size:
            data = data.ljust(self.page_size, b"\x00")
        self._file.seek(page_id * self.page_size)
        self._file.write(data)
        self.stats.physical_writes += 1
        self._m_writes.inc()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """A fresh page id: reuse the free list, else extend the file."""
        if self._closed:
            raise StorageError(f"{self.path}: pager is closed")
        if self._free_head:
            page_id = self._free_head
            raw = self.read(page_id)
            (self._free_head,) = _FREE_LINK.unpack_from(raw)
            self._m_alloc_reused.inc()
            return page_id
        page_id = self.num_pages
        self.num_pages += 1
        self._m_alloc_fresh.inc()
        return page_id

    def free(self, page_id: int) -> None:
        """Return a page to the free list."""
        self._check(page_id)
        self.write(page_id, _FREE_LINK.pack(self._free_head))
        self._free_head = page_id
        self._m_freed.inc()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Persist the meta page and flush buffered writes."""
        if self._closed:
            return
        self._write_meta()
        self._file.flush()
        self._m_syncs.inc()

    def close(self) -> None:
        if self._closed:
            return
        self.sync()
        self._file.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def file_size(self) -> int:
        """Allocated file extent in bytes (high-water mark)."""
        return self.num_pages * self.page_size

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
