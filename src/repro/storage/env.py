"""A directory of named B+ trees sharing one buffer pool.

The Berkeley DB "environment" analogue: every tree (stream data, BT_C /
BT_P / MC indexes, the catalog) lives in its own ``<name>.btree`` file
under one directory, and all of them share a single LRU buffer pool and
a single :class:`~repro.storage.stats.IOStats` counter — so one query's
cost is one delta on one counter no matter how many files it touches.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..errors import StorageError
from ..obs.metrics import MetricsRegistry, NullRegistry
from ..obs.tracing import Tracer
from .btree import BTree
from .buffer_pool import DEFAULT_POOL_PAGES, BufferPool
from .faults import NO_FAULTS
from .pager import DEFAULT_PAGE_SIZE, Pager
from .stats import IOStats
from .wal import WAL_SUFFIX

_SUFFIX = ".btree"


class StorageEnvironment:
    """All storage state of one Caldera database directory.

    Besides the shared pool and :class:`IOStats`, the environment owns
    one :class:`~repro.obs.metrics.MetricsRegistry` that the pool, every
    pager, and every tree report through — per-environment telemetry
    with per-tree counters, cheap enough to leave on (pass
    ``metrics=False`` for no-op instruments).
    """

    def __init__(
        self,
        path: str,
        page_size: Optional[int] = DEFAULT_PAGE_SIZE,
        pool_pages: int = DEFAULT_POOL_PAGES,
        metrics=None,
        faults=None,
    ) -> None:
        self.path = os.path.abspath(path)
        self.page_size = page_size
        os.makedirs(self.path, exist_ok=True)
        self.stats = IOStats()
        if metrics is None or metrics is True:
            self.metrics = MetricsRegistry()
        elif metrics is False:
            self.metrics = NullRegistry()
        else:
            self.metrics = metrics
        #: Failpoint registry every pager and WAL routes file I/O
        #: through; NO_FAULTS (plain files) unless a test injects one.
        self.faults = faults if faults is not None else NO_FAULTS
        # Lifecycle spans (WAL recovery on tree open) land here.
        self._lifecycle_tracer = Tracer(io=self.stats,
                                        registry=self.metrics)
        self.pool = BufferPool(pool_pages, self.stats,
                               metrics=self.metrics)
        self._trees: Dict[str, BTree] = {}
        self._closed = False
        #: Errors swallowed by best-effort :meth:`close` (e.g. closing
        #: after a simulated crash), newest last.
        self.close_errors: List[str] = []

    # ------------------------------------------------------------------
    # Tree management
    # ------------------------------------------------------------------
    def _check_name(self, name: str) -> str:
        if not name or os.sep in name or (os.altsep and os.altsep in name) \
                or name.startswith("."):
            raise StorageError(f"bad tree name {name!r}")
        return os.path.join(self.path, name + _SUFFIX)

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"environment {self.path!r} is closed")

    def open_tree(self, name: str, create: bool = True) -> BTree:
        """The named tree, opened (or created) on first use and cached."""
        self._check_open()
        tree = self._trees.get(name)
        if tree is None:
            file_path = self._check_name(name)
            pager = Pager(file_path, page_size=self.page_size,
                          stats=self.stats, create=create,
                          metrics=self.metrics, faults=self.faults,
                          tracer=self._lifecycle_tracer)
            try:
                tree = BTree(pager, self.pool, name=name, create=create,
                             metrics=self.metrics)
            except StorageError:
                # Missing/corrupt tree header: release the clean pager
                # (nothing dirty, so this performs no page writes).
                # Anything else — a simulated crash above all — must
                # propagate without touching the file again.
                pager.close()
                raise
            self._trees[name] = tree
        return tree

    def exists(self, name: str) -> bool:
        return name in self._trees or os.path.exists(self._check_name(name))

    def list_trees(self) -> List[str]:
        """Every tree in the directory (open or not), sorted."""
        self._check_open()
        names = {
            entry[:-len(_SUFFIX)]
            for entry in os.listdir(self.path)
            if entry.endswith(_SUFFIX)
        }
        names.update(self._trees)
        return sorted(names)

    def drop_tree(self, name: str) -> None:
        """Delete a tree's file and purge its cached pages."""
        self._check_open()
        file_path = self._check_name(name)
        tree = self._trees.pop(name, None)
        if tree is not None:
            self.pool.discard(tree)
            tree.pager.close()
        elif not os.path.exists(file_path):
            raise StorageError(f"no such tree: {name!r}")
        if os.path.exists(file_path):
            os.remove(file_path)
        # A stale log must go with its file, or a future tree of the
        # same name would replay the dead tree's pages.
        wal_path = file_path + WAL_SUFFIX
        if os.path.exists(wal_path):
            os.remove(wal_path)

    def file_size(self, name: str) -> int:
        """On-disk bytes of one tree's file."""
        tree = self._trees.get(name)
        if tree is not None:
            return tree.pager.file_size()
        file_path = self._check_name(name)
        if not os.path.exists(file_path):
            raise StorageError(f"no such tree: {name!r}")
        return os.path.getsize(file_path)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def tracer(self, sink=None) -> Tracer:
        """A span tracer bound to this environment's I/O counters and
        metrics registry (span latencies land in ``span.<name>.ms``)."""
        return Tracer(io=self.stats, registry=self.metrics, sink=sink)

    # ------------------------------------------------------------------
    # Cache control and lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write back every dirty page and tree header."""
        self._check_open()
        for tree in self._trees.values():
            tree.flush()

    def drop_caches(self) -> None:
        """Flush, then evict the entire pool — the next access pattern
        pays full physical I/O (cold-cache measurements)."""
        self.flush()
        self.pool.evict_all()

    def fsck(self):
        """Deep-verify every tree and page file; returns a
        :class:`~repro.storage.fsck.FsckReport`. Flushes first so the
        check runs against the current on-disk image (a clean, flushed
        environment fscks with zero page writes)."""
        from .fsck import fsck_environment

        self._check_open()
        self.flush()
        return fsck_environment(self)

    def close(self) -> None:
        """Flush and close every tree. Idempotent, and best-effort: a
        tree that cannot flush (e.g. its file handle died in a
        simulated crash) is recorded in :attr:`close_errors` instead of
        aborting the shutdown — the remaining trees still close."""
        if self._closed:
            return
        self._closed = True
        for name in sorted(self._trees):
            try:
                self._trees[name].close()
            except (StorageError, OSError) as exc:
                self.close_errors.append(f"{name}: {exc}")
        self._trees.clear()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "StorageEnvironment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"StorageEnvironment({self.path!r}, page_size={self.page_size}, "
            f"trees={len(self._trees)} open)"
        )
