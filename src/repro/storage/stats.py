"""I/O accounting shared by every file of a storage environment.

The buffer pool counts a *logical read* for every page access, and the
pager counts a *physical read/write* for every page that actually moves
between the process and the file. The logical/physical split is the
measurement substrate of every benchmark: on a warm pool a workload's
physical reads drop to zero while its logical reads stay put, so cache
effectiveness is directly visible in the counters (see DESIGN.md,
substitution 1: page reads replace BDB wall-clock as the comparable
cost metric).

The write side mirrors it: a *logical write* is a page-mutation request
from above (a node created or dirtied in the pool — writes that bypass
the pool, like bulk-load streaming, count only as physical), an
*eviction* is a frame dropped from the pool (capacity pressure or an
explicit cold-cache reset), and a *flush* is one dirty frame written
back to disk, whether by eviction or an explicit flush.

Span tracing (:mod:`repro.obs.tracing`) snapshots and deltas this
struct around every traced extent, so all six counters appear per-span
in run manifests.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class IOStats:
    """Monotonic I/O counters (one instance per storage environment)."""

    logical_reads: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    logical_writes: int = 0
    evictions: int = 0
    flushes: int = 0

    # ------------------------------------------------------------------
    def snapshot(self) -> "IOStats":
        """A frozen copy of the current counter values."""
        return IOStats(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def delta(self, since: "IOStats") -> "IOStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        return IOStats(
            **{
                f.name: getattr(self, f.name) - getattr(since, f.name)
                for f in fields(self)
            }
        )

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Buffer-pool hit rate: fraction of logical reads served from
        cache (1.0 when nothing has been read)."""
        if self.logical_reads <= 0:
            return 1.0
        hits = self.logical_reads - self.physical_reads
        return max(0.0, hits / self.logical_reads)

    def summary(self) -> str:
        return (
            f"{self.logical_reads} logical / {self.physical_reads} physical "
            f"reads, {self.logical_writes} logical / {self.physical_writes} "
            f"physical writes, {self.evictions} evictions, "
            f"{self.flushes} flushes "
            f"({self.hit_rate * 100.0:.1f}% hit rate)"
        )
