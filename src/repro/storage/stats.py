"""I/O accounting shared by every file of a storage environment.

The buffer pool counts a *logical read* for every page access, and the
pager counts a *physical read/write* for every page that actually moves
between the process and the file. The logical/physical split is the
measurement substrate of every benchmark: on a warm pool a workload's
physical reads drop to zero while its logical reads stay put, so cache
effectiveness is directly visible in the counters (see DESIGN.md,
substitution 1: page reads replace BDB wall-clock as the comparable
cost metric).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOStats:
    """Monotonic I/O counters (one instance per storage environment)."""

    logical_reads: int = 0
    physical_reads: int = 0
    physical_writes: int = 0

    # ------------------------------------------------------------------
    def snapshot(self) -> "IOStats":
        """A frozen copy of the current counter values."""
        return IOStats(
            self.logical_reads, self.physical_reads, self.physical_writes
        )

    def delta(self, since: "IOStats") -> "IOStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        return IOStats(
            self.logical_reads - since.logical_reads,
            self.physical_reads - since.physical_reads,
            self.physical_writes - since.physical_writes,
        )

    def reset(self) -> None:
        self.logical_reads = 0
        self.physical_reads = 0
        self.physical_writes = 0

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Buffer-pool hit rate: fraction of logical reads served from
        cache (1.0 when nothing has been read)."""
        if self.logical_reads <= 0:
            return 1.0
        hits = self.logical_reads - self.physical_reads
        return max(0.0, hits / self.logical_reads)

    def summary(self) -> str:
        return (
            f"{self.logical_reads} logical / {self.physical_reads} physical "
            f"reads, {self.physical_writes} writes "
            f"({self.hit_rate * 100.0:.1f}% hit rate)"
        )
