"""Order-preserving key encoding.

B+ tree keys are raw byte strings compared with ``bytes.__lt__``; the
index layers build composite keys like ``(value_code, time)`` (BT_C) and
``(value_code, prob, time)`` (BT_P). :func:`encode_key` maps tuples of
ints / floats / strings / bytes to byte strings whose lexicographic
order equals the tuple order, component by component:

- **ints** — 8-byte big-endian with the sign bit flipped (bias by
  2^63), so negative values sort before positive;
- **floats** — IEEE 754 big-endian; negative values have all 64 bits
  inverted, non-negative values get the sign bit set. Total order:
  -inf < ... < -0.0 == 0.0 is *not* collapsed (they encode differently,
  -0.0 first) but both sort between negatives and positives;
- **strings / bytes** — the payload with ``0x00`` escaped as
  ``0x00 0xFF`` and a ``0x00`` terminator, so a proper prefix sorts
  first and no component ever runs into the next one;
- **Desc(x)** — payload bytes bit-inverted, so a *forward* cursor scan
  enumerates values in *descending* order (how BT_P orders
  probabilities high→low). Fixed-width payloads only (int / float).

Each component carries a type tag; tags only matter when a position
mixes types, which the index layers never do.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Tuple

from ..errors import KeyEncodingError

_INT = struct.Struct(">Q")
_FLOAT = struct.Struct(">d")

_TAG_NULL = 0x01
_TAG_INT = 0x10
_TAG_FLOAT = 0x20
_TAG_STR = 0x30
_TAG_BYTES = 0x38
_TAG_DESC = 0x50

_INT_BIAS = 1 << 63
_INT_MIN = -(1 << 63)
_INT_MAX = (1 << 63) - 1


class Desc:
    """Marks one key component as descending-order."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Desc({self.value!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Desc) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Desc", self.value))


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------

def _encode_int(value: int) -> bytes:
    if not _INT_MIN <= value <= _INT_MAX:
        raise KeyEncodingError(f"integer key component out of range: {value}")
    return _INT.pack(value + _INT_BIAS)


def _encode_float(value: float) -> bytes:
    if value != value:  # NaN has no place in a total order
        raise KeyEncodingError("NaN cannot be used as a key component")
    bits = _INT.unpack(_FLOAT.pack(value))[0]
    if bits & (1 << 63):
        bits ^= 0xFFFFFFFFFFFFFFFF  # negative: invert everything
    else:
        bits |= 1 << 63  # non-negative: flip the sign bit
    return _INT.pack(bits)


def _escape(payload: bytes) -> bytes:
    return payload.replace(b"\x00", b"\x00\xff") + b"\x00"


def _invert(payload: bytes) -> bytes:
    return bytes(b ^ 0xFF for b in payload)


def _encode_component(out: List[bytes], item) -> None:
    if isinstance(item, Desc):
        inner = item.value
        if isinstance(inner, bool) or not isinstance(inner, (int, float)):
            raise KeyEncodingError(
                f"Desc() supports int/float components, got {inner!r}"
            )
        if isinstance(inner, int):
            tag, payload = _TAG_INT, _encode_int(inner)
        else:
            tag, payload = _TAG_FLOAT, _encode_float(inner)
        out.append(bytes((_TAG_DESC, 0xFF - tag)))
        out.append(_invert(payload))
    elif item is None:
        out.append(bytes((_TAG_NULL,)))
    elif isinstance(item, bool):
        # bool is an int subclass; encode as its integer value.
        out.append(bytes((_TAG_INT,)))
        out.append(_encode_int(int(item)))
    elif isinstance(item, int):
        out.append(bytes((_TAG_INT,)))
        out.append(_encode_int(item))
    elif isinstance(item, float):
        out.append(bytes((_TAG_FLOAT,)))
        out.append(_encode_float(item))
    elif isinstance(item, str):
        out.append(bytes((_TAG_STR,)))
        out.append(_escape(item.encode("utf-8")))
    elif isinstance(item, (bytes, bytearray)):
        out.append(bytes((_TAG_BYTES,)))
        out.append(_escape(bytes(item)))
    else:
        raise KeyEncodingError(
            f"cannot encode key component of type {type(item).__name__}"
        )


def encode_key(components: Iterable) -> bytes:
    """Encode a tuple of key components into an order-preserving key."""
    if isinstance(components, (str, bytes, bytearray)):
        raise KeyEncodingError(
            "encode_key takes a tuple of components; wrap single values "
            "in a 1-tuple"
        )
    out: List[bytes] = []
    for item in components:
        _encode_component(out, item)
    return b"".join(out)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------

def _decode_terminated(data: bytes, pos: int) -> Tuple[bytes, int]:
    chunks: List[bytes] = []
    while True:
        end = data.index(b"\x00", pos)
        chunks.append(data[pos:end])
        if end + 1 < len(data) and data[end + 1] == 0xFF:
            chunks.append(b"\x00")
            pos = end + 2
        else:
            return b"".join(chunks), end + 1


def _decode_float_bits(bits: int) -> float:
    if bits & (1 << 63):
        bits &= ~(1 << 63) & 0xFFFFFFFFFFFFFFFF
    else:
        bits ^= 0xFFFFFFFFFFFFFFFF
    return _FLOAT.unpack(_INT.pack(bits))[0]


def decode_key(data: bytes) -> tuple:
    """Invert :func:`encode_key`. ``Desc`` components decode to their
    plain (unwrapped) values."""
    out = []
    pos = 0
    try:
        while pos < len(data):
            tag = data[pos]
            pos += 1
            if tag == _TAG_NULL:
                out.append(None)
            elif tag == _TAG_INT:
                out.append(_INT.unpack_from(data, pos)[0] - _INT_BIAS)
                pos += 8
            elif tag == _TAG_FLOAT:
                out.append(_decode_float_bits(_INT.unpack_from(data, pos)[0]))
                pos += 8
            elif tag == _TAG_STR:
                raw, pos = _decode_terminated(data, pos)
                out.append(raw.decode("utf-8"))
            elif tag == _TAG_BYTES:
                raw, pos = _decode_terminated(data, pos)
                out.append(raw)
            elif tag == _TAG_DESC:
                inner = 0xFF - data[pos]
                pos += 1
                payload = _invert(data[pos:pos + 8])
                pos += 8
                bits = _INT.unpack(payload)[0]
                if inner == _TAG_INT:
                    out.append(bits - _INT_BIAS)
                elif inner == _TAG_FLOAT:
                    out.append(_decode_float_bits(bits))
                else:
                    raise KeyEncodingError(
                        f"bad Desc inner tag 0x{inner:02x}"
                    )
            else:
                raise KeyEncodingError(f"bad key tag 0x{tag:02x} at {pos - 1}")
    except (struct.error, ValueError, IndexError) as exc:
        raise KeyEncodingError(f"truncated or corrupt key: {exc}") from None
    return tuple(out)


# ----------------------------------------------------------------------
# Range helpers
# ----------------------------------------------------------------------

def prefix_upper_bound(prefix: bytes) -> bytes:
    """The smallest byte string greater than every key starting with
    ``prefix`` — the exclusive upper bound of a prefix range scan."""
    suffix = bytearray(prefix)
    while suffix:
        if suffix[-1] != 0xFF:
            suffix[-1] += 1
            return bytes(suffix)
        suffix.pop()
    raise KeyEncodingError("prefix has no finite upper bound")
