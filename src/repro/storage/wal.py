"""A checksummed, length-framed redo log — one per page file.

The pager routes every page write into this log *first*; the main file
is only touched by a checkpoint, which runs strictly after the log has
been fsynced. That single ordering rule is the whole durability story:

1. ``append(page_id, frame)`` — buffered write of one full physical
   page frame (header + payload, checksum already embedded);
2. ``commit(lsn)`` — a commit record, then flush + fsync. Everything
   appended since the last reset is now durable; the commit record is
   the atomicity boundary recovery honors;
3. the pager checkpoints (in-place page writes, main-file fsync), then
   calls ``reset()`` to truncate the log back to its header.

A crash at any point leaves the main file restorable: records after the
last commit were never promised, records before it replay idempotently
(full page images), and a torn tail is detected by the per-record CRC
and cut off. Recovery (:meth:`recover_into`) is itself crash-safe — it
only writes committed images and re-running it is a no-op.

Log layout::

    header  := "CALW" | version u16 | page_size u32 | crc32 u32
    record  := kind u8 | lsn u64 | page_id u64 | length u32
               | payload[length] | crc32 u32     (crc over kind..payload)
    kind    := 1 page image | 2 commit (length 0)
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Optional, Tuple

from ..errors import RecoveryError, TornWriteError
from ..obs.metrics import NullRegistry
from .faults import NO_FAULTS, fsync_file

WAL_SUFFIX = ".wal"

_MAGIC = b"CALW"
_VERSION = 1
_FILE_HDR = struct.Struct(">4sHII")     # magic, version, page_size, crc
_REC_HDR = struct.Struct(">BQQI")       # kind, lsn, page_id, length
_CRC = struct.Struct(">I")

KIND_PAGE = 1
KIND_COMMIT = 2


def _header_bytes(page_size: int) -> bytes:
    body = _FILE_HDR.pack(_MAGIC, _VERSION, page_size, 0)[:-_CRC.size]
    return body + _CRC.pack(zlib.crc32(body))


class WriteAheadLog:
    """The redo log beside one page file (``<file>.wal``)."""

    def __init__(self, path: str, faults=None, metrics=None,
                 stats=None) -> None:
        self.path = path
        self.faults = faults if faults is not None else NO_FAULTS
        self.metrics = metrics if metrics is not None else NullRegistry()
        self.stats = stats
        self._m_appends = self.metrics.counter("wal.appends")
        self._m_commits = self.metrics.counter("wal.commits")
        self._m_fsyncs = self.metrics.counter("wal.fsyncs")
        self._m_recoveries = self.metrics.counter("wal.recoveries")
        self._m_replayed = self.metrics.counter("wal.records_replayed")
        self._m_applied = self.metrics.counter("wal.pages_applied")
        self._m_torn = self.metrics.counter("wal.torn_tails")
        self._m_truncations = self.metrics.counter("wal.truncations")
        self._m_bytes = self.metrics.gauge("wal.bytes")
        if not os.path.exists(path):
            with open(path, "wb"):
                pass
        self._file = self.faults.open(path, "r+b")
        self.page_size: Optional[int] = None
        self._size = 0
        self._read_header()

    # ------------------------------------------------------------------
    # Header
    # ------------------------------------------------------------------
    def _read_header(self) -> None:
        """Learn the log's geometry; an unreadable header means no
        record in the log was ever committed, so it carries nothing."""
        self._file.seek(0, 2)
        self._size = self._file.tell()
        if self._size < _FILE_HDR.size:
            return
        self._file.seek(0)
        raw = self._file.read(_FILE_HDR.size)
        magic, version, page_size, crc = _FILE_HDR.unpack(raw)
        if magic != _MAGIC or version != _VERSION:
            return
        if crc != zlib.crc32(raw[:-_CRC.size]):
            return
        self.page_size = page_size

    @property
    def pending(self) -> bool:
        """True when the log holds records that may need replay."""
        return self.page_size is not None and self._size > _FILE_HDR.size

    @property
    def size(self) -> int:
        return self._size

    def initialize(self, page_size: int) -> None:
        """Bind the log to its pager's geometry, writing (or resetting
        to) a fresh header when the log is empty, stale, or torn."""
        if self.page_size == page_size and self._size >= _FILE_HDR.size:
            return
        if self.pending:
            raise RecoveryError(
                f"{self.path}: log has pending records for "
                f"{self.page_size}-byte pages, cannot re-initialize for "
                f"{page_size}-byte pages"
            )
        self.page_size = page_size
        self.reset()

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _append_record(self, site: str, kind: int, lsn: int, page_id: int,
                       payload: bytes) -> None:
        head = _REC_HDR.pack(kind, lsn, page_id, len(payload))
        record = head + payload
        record += _CRC.pack(zlib.crc32(record))
        self._file.seek(0, 2)
        self.faults.fire(site, handle=self._file, data=record)
        self._file.write(record)
        self._size += len(record)
        self._m_bytes.set(self._size)

    def append(self, page_id: int, frame: bytes, lsn: int) -> None:
        """Log one full physical page frame (buffered; durable only
        after the next :meth:`commit`)."""
        self._append_record("wal.append", KIND_PAGE, lsn, page_id, frame)
        self._m_appends.inc()

    def commit(self, lsn: int) -> None:
        """The durability point: commit record, then flush + fsync."""
        self._append_record("wal.commit", KIND_COMMIT, lsn, 0, b"")
        self.faults.fire("wal.fsync", handle=self._file)
        fsync_file(self._file)
        self._m_commits.inc()
        self._m_fsyncs.inc()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _scan(self) -> Tuple[dict, int, int]:
        """All committed page frames: ``(frames, records_seen,
        valid_end_offset)``. Stops at the first torn or mis-checksummed
        record; pending (uncommitted) records are discarded."""
        committed: dict = {}
        pending: dict = {}
        seen = 0
        valid_end = _FILE_HDR.size
        self._file.seek(_FILE_HDR.size)
        pos = _FILE_HDR.size
        while True:
            head = self._file.read(_REC_HDR.size)
            if len(head) < _REC_HDR.size:
                if head:
                    self._m_torn.inc()
                break
            kind, lsn, page_id, length = _REC_HDR.unpack(head)
            body = self._file.read(length + _CRC.size)
            if len(body) < length + _CRC.size:
                self._m_torn.inc()
                break
            payload, crc = body[:length], _CRC.unpack(body[length:])[0]
            if crc != zlib.crc32(head + payload) or kind not in (
                KIND_PAGE, KIND_COMMIT
            ):
                self._m_torn.inc()
                break
            pos += len(head) + len(body)
            seen += 1
            if kind == KIND_PAGE:
                pending[page_id] = (lsn, payload)
            else:
                committed.update(pending)
                pending.clear()
                valid_end = pos
        return committed, seen, valid_end

    def recover_into(self, main_file, frame_size: int) -> int:
        """Replay every committed page frame into ``main_file`` (not yet
        fsynced — the caller owns checkpoint ordering). Returns the
        number of pages applied."""
        if self.page_size is None:
            raise RecoveryError(f"{self.path}: unreadable log header")
        committed, seen, _ = self._scan()
        self._m_recoveries.inc()
        self._m_replayed.inc(seen)
        for page_id in sorted(committed):
            lsn, frame = committed[page_id]
            if len(frame) != frame_size:
                raise TornWriteError(
                    f"{self.path}: committed frame for page {page_id} is "
                    f"{len(frame)} bytes, expected {frame_size}"
                )
            main_file.seek(page_id * frame_size)
            self.faults.fire("recover.apply", handle=main_file, data=frame)
            main_file.write(frame)
            self._m_applied.inc()
            if self.stats is not None:
                self.stats.physical_writes += 1
        return len(committed)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Truncate back to a bare header (post-checkpoint, when the
        main file durably holds everything the log was protecting)."""
        self.faults.fire("wal.truncate", handle=self._file)
        self._file.seek(0)
        self._file.truncate(0)
        header = _header_bytes(self.page_size or 0)
        self._file.write(header)
        fsync_file(self._file)
        self._size = len(header)
        self._m_truncations.inc()
        self._m_fsyncs.inc()
        self._m_bytes.set(self._size)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __repr__(self) -> str:
        return f"WriteAheadLog({self.path!r}, {self._size}B)"
