# Convenience targets for the Caldera reproduction.

PYTHON ?= python

.PHONY: install lint test test-fast bench bench-storage bench-streams \
	bench-fig8b crash-sweep fsck figures figures-full examples clean

lint:
	ruff check src tests benchmarks examples

install:
	$(PYTHON) -m pip install -e ".[dev]"

test:
	PYTHONPATH=src $(PYTHON) -m pytest tests/

test-fast:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -m "not slow" -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only \
		-o python_files="test_*.py bench_*.py"

bench-storage:
	PYTHONPATH=src $(PYTHON) -m benchmarks.bench_storage_micro

# Streams/access-method benchmarks: Fig 4 signal, Fig 8a layout costs,
# and the Reg kernel shootout. Each emits a run manifest; the fig8a
# logical-read counters are then diffed against the committed baseline
# (deterministic counters only — wall times never fail the guard).
bench-streams:
	PYTHONPATH=src $(PYTHON) -m benchmarks.bench_fig4_signal
	PYTHONPATH=src $(PYTHON) -m benchmarks.bench_fig8a_layouts
	PYTHONPATH=src $(PYTHON) -m benchmarks.bench_reg_kernel
	PYTHONPATH=src $(PYTHON) -m repro.obs.report \
		benchmarks/baselines/fig8a.manifest.json \
		benchmarks/results/fig8a.manifest.json --fail-on-change

# Fig 8b variable-length benchmark: MC index vs naive scan over gap
# length and alpha. Ends by diffing the deterministic cost counters
# (logical reads, MC lookups/pieces) against the committed baseline —
# wall times never fail the guard.
bench-fig8b:
	PYTHONPATH=src $(PYTHON) -m benchmarks.bench_fig8b_variable
	PYTHONPATH=src $(PYTHON) -m repro.obs.report \
		benchmarks/baselines/fig8b.manifest.json \
		benchmarks/results/fig8b.manifest.json --fail-on-change

# Deterministic crash-point sweep: every single-fault schedule must
# recover to a committed state with a clean fsck. Bounded (~30s);
# exits non-zero on any recovery or verification failure.
crash-sweep:
	PYTHONPATH=src $(PYTHON) -m benchmarks.crash_sweep

# Build a small database, verify it with the CLI deep checker.
fsck:
	@PYTHONPATH=src $(PYTHON) -c "\
	import tempfile; \
	from repro.storage import StorageEnvironment; \
	d = tempfile.mkdtemp(prefix='fsck_smoke_'); \
	env = StorageEnvironment(d, page_size=512); \
	env.open_tree('t').bulk_load((b'k%05d' % i, b'v' * (i % 80)) for i in range(5000)); \
	env.close(); \
	print(d)" > .fsck_smoke_dir
	PYTHONPATH=src $(PYTHON) -m repro fsck "$$(cat .fsck_smoke_dir)"
	@rm -rf "$$(cat .fsck_smoke_dir)" .fsck_smoke_dir

figures:
	$(PYTHON) -m benchmarks.run_all

figures-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m benchmarks.run_all

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf benchmarks/.cache benchmarks/.cache-full .pytest_cache \
		.hypothesis .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
