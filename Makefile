# Convenience targets for the Caldera reproduction.

PYTHON ?= python

.PHONY: install lint test test-fast bench bench-storage figures \
	figures-full examples clean

lint:
	ruff check src tests benchmarks examples

install:
	$(PYTHON) -m pip install -e ".[dev]"

test:
	PYTHONPATH=src $(PYTHON) -m pytest tests/

test-fast:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -m "not slow" -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only \
		-o python_files="test_*.py bench_*.py"

bench-storage:
	PYTHONPATH=src $(PYTHON) -m benchmarks.bench_storage_micro

figures:
	$(PYTHON) -m benchmarks.run_all

figures-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m benchmarks.run_all

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf benchmarks/.cache benchmarks/.cache-full .pytest_cache \
		.hypothesis .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
