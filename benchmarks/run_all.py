"""Regenerate every figure and table of the paper.

Usage::

    python -m benchmarks.run_all            # scaled-down streams
    REPRO_BENCH_FULL=1 python -m benchmarks.run_all   # paper scale

Writes one text + JSON report per figure under ``benchmarks/results/``;
EXPERIMENTS.md summarizes them against the paper's claims.

Figure modules are imported lazily: figures whose layers are not yet
built (see ROADMAP.md) are reported as skipped instead of crashing the
whole run. The run emits a ``results/run_all.manifest.json`` manifest
— one span per figure — so two regeneration runs are diffable with
``python -m repro.obs.report``.
"""

from __future__ import annotations

import importlib
import sys
import time

from repro.obs import MetricsRegistry

from .harness import finish_run, start_run

# (figure name, module under benchmarks.) — imported on demand.
FIGURES = [
    ("storage_micro", "bench_storage_micro"),
    ("fig4", "bench_fig4_signal"),
    ("fig8a", "bench_fig8a_layouts"),
    ("fig8b", "bench_fig8b_real_fixed"),
    ("fig8c", "bench_fig8c_matchrate"),
    ("fig9a", "bench_fig9a_variable"),
    ("fig9b", "bench_fig9b_real_variable"),
    ("fig9c", "bench_fig9c_accuracy"),
    ("fig10", "bench_fig10_table"),
    ("fig11a", "bench_fig11a_mc_lookup"),
    ("fig11b", "bench_fig11b_mc_storage"),
    ("ablation_merge", "bench_ablation_merge"),
    ("ablation_topk_bound", "bench_ablation_topk_bound"),
    ("ablation_mc_alpha", "bench_ablation_mc_alpha"),
]


def _load(module_name: str):
    """The figure module, or the missing repro layer's name."""
    try:
        return importlib.import_module(f".{module_name}", __package__), None
    except ModuleNotFoundError as exc:
        name = exc.name or ""
        if name == "repro" or name.startswith("repro."):
            return None, ".".join(name.split(".")[:2])
        raise


def main(only=None) -> int:
    start = time.time()
    registry = MetricsRegistry()
    manifest, tracer = start_run("run_all", registry=registry)
    done, skipped = [], []
    for name, module_name in FIGURES:
        if only and name not in only:
            continue
        module, missing = _load(module_name)
        if module is None:
            print(f"[{name}] skipped: needs the {missing} layer "
                  "(not yet implemented, see ROADMAP.md)")
            skipped.append({"figure": name, "missing_layer": missing})
            continue
        print(f"\n##### {name} " + "#" * 40)
        t0 = time.time()
        with tracer.span("figure", figure=name):
            module.generate()
        print(f"[{name}] done in {time.time() - t0:.1f}s")
        done.append(name)
    path = finish_run(
        manifest, tracer, registry=registry,
        extra={"figures_done": done, "figures_skipped": skipped},
    )
    print(f"\n{len(done)} figure(s) regenerated, {len(skipped)} skipped "
          f"in {time.time() - start:.1f}s; reports in benchmarks/results/")
    print(f"run manifest: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(set(sys.argv[1:]) or None))
