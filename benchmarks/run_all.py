"""Regenerate every figure and table of the paper.

Usage::

    python -m benchmarks.run_all            # scaled-down streams
    REPRO_BENCH_FULL=1 python -m benchmarks.run_all   # paper scale

Writes one text + JSON report per figure under ``benchmarks/results/``;
EXPERIMENTS.md summarizes them against the paper's claims.
"""

from __future__ import annotations

import sys
import time

from . import (
    bench_ablation_mc_alpha,
    bench_ablation_merge,
    bench_ablation_topk_bound,
    bench_fig4_signal,
    bench_fig8a_layouts,
    bench_fig8b_real_fixed,
    bench_fig8c_matchrate,
    bench_fig9a_variable,
    bench_fig9b_real_variable,
    bench_fig9c_accuracy,
    bench_fig10_table,
    bench_fig11a_mc_lookup,
    bench_fig11b_mc_storage,
)

FIGURES = [
    ("fig4", bench_fig4_signal),
    ("fig8a", bench_fig8a_layouts),
    ("fig8b", bench_fig8b_real_fixed),
    ("fig8c", bench_fig8c_matchrate),
    ("fig9a", bench_fig9a_variable),
    ("fig9b", bench_fig9b_real_variable),
    ("fig9c", bench_fig9c_accuracy),
    ("fig10", bench_fig10_table),
    ("fig11a", bench_fig11a_mc_lookup),
    ("fig11b", bench_fig11b_mc_storage),
    ("ablation_merge", bench_ablation_merge),
    ("ablation_topk_bound", bench_ablation_topk_bound),
    ("ablation_mc_alpha", bench_ablation_mc_alpha),
]


def main(only=None) -> int:
    start = time.time()
    for name, module in FIGURES:
        if only and name not in only:
            continue
        print(f"\n##### {name} " + "#" * 40)
        t0 = time.time()
        module.generate()
        print(f"[{name}] done in {time.time() - t0:.1f}s")
    print(f"\nAll figures regenerated in {time.time() - start:.1f}s; "
          "reports in benchmarks/results/")
    return 0


if __name__ == "__main__":
    sys.exit(main(set(sys.argv[1:]) or None))
