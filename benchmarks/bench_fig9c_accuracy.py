"""Figure 9(c): approximation error of the semi-independent method.

Two workloads:

1. **Routine streams** (the real-data substitute): the same Kleene
   queries as Figure 9(b), plus cross-room variants whose relevant
   timesteps are separated by gaps. On forward-backward-smoothed
   streams these errors are small — smoothing resolves most ambiguity,
   and correlations across long gaps genuinely decay — mirroring the
   paper's *favorable* case (peak identified, modest relative error).

2. **Fork streams**: hand-built Markovian streams with *unresolvable*
   branch ambiguity (the tag approached a room along one of two
   sensor-silent corridors; only one passes the query's first
   predicate). Correlation across the gap persists no matter how good
   the smoothing, and the independence assumption splits the joint —
   reproducing the paper's unfavorable case (raw errors up to ~0.29 and
   mis-identified peaks, §4.3.2).
"""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.core import Caldera
from repro.probability import CPT, SparseDistribution
from repro.rfid import HALLWAY
from repro.streams import MarkovianStream, single_attribute_space

from .harness import print_table, save_report
from .workloads import room_queries_for, routines_db, world

NUM_QUERIES = 6


def _signals(db, stream, text):
    exact = db.query(stream, text, method="mc").as_dict()
    approx = db.query(stream, text, method="semi").as_dict()
    return exact, approx


def error_report(db, stream, text, label=None):
    from repro.core import approximation_report

    exact, approx = _signals(db, stream, text)
    report = approximation_report(sorted(exact.items()),
                                  sorted(approx.items()))
    if report is None:
        return None
    return {
        "case": label or stream,
        "peak_found": report.peak_found,
        "peak_exact": round(report.peak_exact, 4),
        "peak_approx": round(report.peak_approx, 4),
        "rel_error_at_peak": round(report.rel_error_at_peak, 4),
        "max_raw_error": round(report.max_raw_error, 4),
        "mean_raw_error": round(report.mean_raw_error, 4),
    }


# ---------------------------------------------------------------------------
# Part 2: fork streams with persistent ambiguity.
# ---------------------------------------------------------------------------

FORK_SPACE = single_attribute_space(
    "location", ["X", "A", "C", "M1", "M2", "B", "D"]
)
X, A, C, M1, M2, B, D = range(7)

FORK_QUERY = "location=A -> (!location=B)* location=B"


def fork_stream(name: str, p_a: float = 0.5, gap: int = 3,
                arrive_other: float = 0.1, tail: int = 4,
                seed: int = 0) -> MarkovianStream:
    """A tag approaches room B along one of two sensor-silent corridors.

    With probability ``p_a`` it takes the corridor through doorway A
    (matching the query's first predicate) and surely reaches B; with
    ``1 - p_a`` it takes the other corridor, reaching B only with
    probability ``arrive_other``. The ``gap`` middle timesteps sit in
    M1/M2 — irrelevant to both predicates — so the semi-independent
    method must take the independence shortcut exactly where the branch
    correlation matters.
    """
    rng = random.Random(seed)
    marginals = [SparseDistribution({X: 1.0})]
    cpts: List[CPT] = []

    def step(cpt: CPT) -> None:
        cpts.append(cpt)
        marginals.append(cpt.apply(marginals[-1]))

    step(CPT({X: {A: p_a, C: 1.0 - p_a}}))
    step(CPT({A: {M1: 1.0}, C: {M2: 1.0}}))
    for _ in range(gap - 1):
        step(CPT({M1: {M1: 1.0}, M2: {M2: 1.0}}))
    step(CPT({M1: {B: 1.0}, M2: {B: arrive_other, D: 1.0 - arrive_other}}))
    for _ in range(tail):
        jitter = 0.02 + 0.01 * rng.random()
        step(CPT({B: {B: 1.0 - jitter, D: jitter}, D: {D: 1.0}}))
    return MarkovianStream(name, FORK_SPACE, marginals, cpts)


def fork_cases():
    return [
        ("fork p_a=0.5 gap=3", dict(p_a=0.5, gap=3, arrive_other=0.1)),
        ("fork p_a=0.3 gap=5", dict(p_a=0.3, gap=5, arrive_other=0.2)),
        ("fork p_a=0.7 gap=2", dict(p_a=0.7, gap=2, arrive_other=0.0)),
        ("fork p_a=0.5 gap=8", dict(p_a=0.5, gap=8, arrive_other=0.5)),
    ]


def fork_reports(tmp_dir: str):
    rows = []
    for i, (label, kwargs) in enumerate(fork_cases()):
        with Caldera(f"{tmp_dir}/fork{i}", page_size=4096) as db:
            stream = fork_stream(f"fork{i}", seed=i, **kwargs)
            db.archive(stream, mc_alpha=2)
            report = error_report(db, stream.name, FORK_QUERY, label=label)
            if report is not None:
                rows.append(report)
    return rows


def routine_reports(db) -> List[dict]:
    plan, _, _ = world()
    rows = []
    for person in range(4):
        stream = f"person{person}"
        queries = room_queries_for(db, stream, count=NUM_QUERIES,
                                   variable=True)
        report = error_report(db, stream, queries[-1][1],
                              label=f"{stream} (room query)")
        if report is not None:
            rows.append(report)
        # A cross-room query: dense room's doorway, then eventually a
        # rarely-visited room (gap-heavy).
        rooms = [r for r, _ in room_queries_for(db, stream, count=22)]
        if len(rooms) >= 2:
            door = next(
                n for n in plan.neighbors(rooms[0])
                if plan.kind_of(n) == HALLWAY
            )
            text = (f"location={door} -> (!location={rooms[-1]})* "
                    f"location={rooms[-1]}")
            report = error_report(db, stream, text,
                                  label=f"{stream} (cross-room)")
            if report is not None:
                rows.append(report)
    return rows


def generate():
    import tempfile

    rows = []
    db = routines_db()
    try:
        rows.extend(routine_reports(db))
    finally:
        db.close()
    with tempfile.TemporaryDirectory() as tmp:
        rows.extend(fork_reports(tmp))
    text_out = print_table(
        "Figure 9(c): semi-independent approximation error",
        rows,
        columns=["case", "peak_found", "peak_exact", "peak_approx",
                 "rel_error_at_peak", "max_raw_error", "mean_raw_error"],
    )
    save_report("fig9c", text_out, {"rows": rows})
    return rows


@pytest.fixture(scope="module")
def db():
    database = routines_db()
    yield database
    database.close()


def test_fig9c_benchmark_semi_vs_mc(benchmark, db):
    queries = room_queries_for(db, "person0", count=NUM_QUERIES,
                               variable=True)
    _, text = queries[-1]
    benchmark.pedantic(
        lambda: db.query("person0", text, method="semi", cold=True),
        rounds=3, iterations=1,
    )


def test_fig9c_shape_probabilities_bounded(db):
    """Approximate probabilities stay in [0, 1]."""
    queries = room_queries_for(db, "person0", count=NUM_QUERIES,
                               variable=True)
    for _, text in queries:
        approx = db.query("person0", text, method="semi").as_dict()
        assert all(-1e-9 <= p <= 1 + 1e-9 for p in approx.values())


def test_fig9c_shape_routine_errors_are_modest(db):
    """The favorable regime: on smoothed routine streams the peak is
    found and errors stay modest (the paper's 'tracks fairly well')."""
    rows = routine_reports(db)
    assert rows
    assert all(r["mean_raw_error"] <= 0.5 for r in rows)


def test_fig9c_shape_fork_streams_break_independence(tmp_path):
    """The unfavorable regime: persistent branch ambiguity produces raw
    errors on the order of the paper's 0.286."""
    rows = fork_reports(str(tmp_path))
    assert rows
    assert max(r["max_raw_error"] for r in rows) >= 0.15

    # The exact answer on the canonical fork is p_a; independence gives
    # p_a * P(B), a large underestimate.
    with Caldera(str(tmp_path / "canon"), page_size=4096) as db:
        stream = fork_stream("canon", p_a=0.5, gap=3, arrive_other=0.1)
        db.archive(stream, mc_alpha=2)
        arrival_t = 2 + 3  # X, fork, gap, then B
        exact = db.query("canon", FORK_QUERY, method="mc").as_dict()
        approx = db.query("canon", FORK_QUERY, method="semi").as_dict()
        assert exact[arrival_t] == pytest.approx(0.5, abs=1e-9)
        p_b = 0.5 + 0.5 * 0.1
        assert approx[arrival_t] == pytest.approx(0.5 * p_b, abs=1e-9)


if __name__ == "__main__":
    generate()
