"""Figure 11(a): MC-index CPT computation time vs interval span.

Measures the average time to compute the CPT across spans of varying
length, averaged over span placements, with an increasing number of the
*lowest* index levels omitted (a proxy for larger alpha). The naive
baseline composes raw CPTs one by one. Expected shape: each available
level halves lookup work; spans below the lowest available level's
granularity degrade toward the raw scan.
"""

from __future__ import annotations

import time

import pytest

from repro.indexes import MCLookupStats, open_mc
from repro.streams import Layout

from .harness import print_table, save_report
from .workloads import synthetic_db

SPANS = [4, 8, 16, 32, 64, 128, 256]
MIN_LEVELS = [1, 2, 3, 4]
PLACEMENTS = 12


def _setup():
    db = synthetic_db(density=0.1, layouts=(Layout.SEPARATED,))
    reader = db.reader("syn_separated")
    mc = open_mc(db.env, "syn_separated", alpha=2, length=reader.length)
    return db, reader, mc


def _avg_lookup(mc, reader, span, min_level, use_index=True):
    """Average (seconds, pieces) over placements of one span length."""
    length = reader.length
    total_time = 0.0
    total_pieces = 0
    placements = 0
    step = max(1, (length - 1 - span) // PLACEMENTS)
    for t1 in range(0, length - 1 - span, step):
        t2 = t1 + span
        stats = MCLookupStats()
        start = time.perf_counter()
        if use_index:
            mc.compute_cpt(t1, t2, reader, min_level=min_level, stats=stats)
        else:
            cpt = reader.cpt_into(t1 + 1)
            pieces = 1
            for t in range(t1 + 2, t2 + 1):
                cpt = cpt.compose(reader.cpt_into(t))
                pieces += 1
            stats.raw_cpts = pieces
        total_time += time.perf_counter() - start
        total_pieces += stats.index_entries + stats.raw_cpts
        placements += 1
    return total_time / placements, total_pieces / placements


def generate():
    db, reader, mc = _setup()
    rows = []
    try:
        for span in SPANS:
            if span > reader.length - 2:
                continue
            naive_s, naive_pieces = _avg_lookup(mc, reader, span, 1,
                                                use_index=False)
            rows.append({
                "span": span,
                "series": "naive scan",
                "avg_ms": round(naive_s * 1000, 3),
                "avg_pieces": round(naive_pieces, 1),
            })
            for min_level in MIN_LEVELS:
                avg_s, pieces = _avg_lookup(mc, reader, span, min_level)
                rows.append({
                    "span": span,
                    "series": f"min_level={min_level}",
                    "avg_ms": round(avg_s * 1000, 3),
                    "avg_pieces": round(pieces, 1),
                })
        text = print_table(
            "Figure 11(a): composed-CPT lookup cost vs span "
            "(levels omitted from below)",
            rows,
            columns=["span", "series", "avg_ms", "avg_pieces"],
        )
        save_report("fig11a", text, {"rows": rows})
        return rows
    finally:
        db.close()


@pytest.fixture(scope="module")
def setup():
    db, reader, mc = _setup()
    yield db, reader, mc
    db.close()


@pytest.mark.parametrize("min_level", [1, 3])
def test_fig11a_lookup(benchmark, setup, min_level):
    db, reader, mc = setup
    span = min(256, reader.length - 2)
    benchmark.pedantic(
        lambda: mc.compute_cpt(100, 100 + span, reader, min_level=min_level),
        rounds=5, iterations=1,
    )


def test_fig11a_shape_each_level_halves_pieces(setup):
    """§4.4: each additional index level reduces lookup cost by half."""
    db, reader, mc = setup
    span = min(128, reader.length - 2)
    _, pieces_full = _avg_lookup(mc, reader, span, min_level=1)
    _, pieces_omit2 = _avg_lookup(mc, reader, span, min_level=3)
    assert pieces_full < pieces_omit2

    _, naive_pieces = _avg_lookup(mc, reader, span, 1, use_index=False)
    assert pieces_full * 4 < naive_pieces


if __name__ == "__main__":
    generate()
