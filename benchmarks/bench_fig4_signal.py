"""Figure 4: the Entered-Room query signal on a routine stream.

Reproduces the paper's motivating plot: the query probability over time
for an Entered-Room query on a routine stream — a dominant peak when the
person actually enters the room, and (possibly) lower false-positive
bumps when they merely walk past the door. Applications threshold this
signal (e.g., p > 0.3) to detect events.

The run writes ``results/fig4.manifest.json`` with one span per access
method (wall time + logical/physical page-read deltas) and the signal's
nonzero points in the report JSON.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry

from .harness import finish_run, measure, print_table, save_report, start_run
from .workloads import room_queries_for, routines_db

STREAM = "person0"


def pick_query(db):
    """The low-density Entered-Room query with the sharpest peak — the
    regime Figure 4 plots (one true entry, low false-positive bumps)."""
    queries = room_queries_for(db, STREAM, count=22)
    half = queries[len(queries) // 2:]  # lower-density half
    best = None
    best_peak = -1.0
    for room, text in half:
        result = db.query(STREAM, text, method="btree")
        peak = result.peak()
        if peak is not None and peak[1] > best_peak:
            best_peak = peak[1]
            best = (room, text)
    return best if best is not None else queries[-1]


def generate():
    registry = MetricsRegistry()
    manifest, tracer = start_run("fig4", config={"stream": STREAM})
    db = routines_db()
    try:
        room, text = pick_query(db)
        for method in ("naive", "btree"):
            with tracer.span(f"query/{method}", io=db.stats):
                m = measure(db, STREAM, text, method, method)
            registry.counter("cost.logical_reads",
                             method=method).inc(m.logical_reads)
            registry.counter("cost.reg_updates",
                             method=method).inc(m.extra["reg_updates"])
        result = db.query(STREAM, text, method="btree")
        signal = result.as_dict()
        rows = []
        peak = result.peak()
        for t, p in sorted(signal.items()):
            if p > 1e-4:
                rows.append({"t": t, "p": round(p, 4),
                             "is_peak": t == (peak[0] if peak else None)})
        header = [
            {"room": room, "signal_points": len(result.signal),
             "nonzero_points": len(rows),
             "peak_t": peak[0] if peak else None,
             "peak_p": round(peak[1], 4) if peak else None},
        ]
        text_out = print_table("Figure 4: query metadata", header)
        text_out += print_table(
            f"Figure 4: Entered-{room} signal (nonzero points)", rows,
            columns=["t", "p", "is_peak"],
        )
        save_report("fig4", text_out, {"rows": rows, "meta": header[0]})
        finish_run(manifest, tracer, registry, extra={"meta": header[0]})
        return rows
    finally:
        db.close()


@pytest.fixture(scope="module")
def db():
    database = routines_db()
    yield database
    database.close()


def test_fig4_signal_query(benchmark, db):
    _, text = pick_query(db)
    benchmark.pedantic(
        lambda: db.query(STREAM, text, method="btree", cold=True),
        rounds=3, iterations=1,
    )


def test_fig4_shape_peak_dominates(db):
    """The signal has a clear dominant peak (thresholdable, §2.2)."""
    _, text = pick_query(db)
    result = db.query(STREAM, text, method="btree")
    probs = sorted((p for _, p in result.signal), reverse=True)
    assert probs, "the query matched nowhere"
    assert probs[0] > 0.01


def test_fig4_naive_and_btree_agree(db):
    """Alg 1 and Alg 2 compute the same signal on emitted timesteps."""
    _, text = pick_query(db)
    naive = dict(db.query(STREAM, text, method="naive").signal)
    btree = db.query(STREAM, text, method="btree").signal
    for t, p in btree:
        assert abs(naive.get(t, 0.0) - p) < 1e-9


if __name__ == "__main__":
    generate()
