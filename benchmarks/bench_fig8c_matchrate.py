"""Figure 8(c): B+Tree performance vs density at varying match rates.

Each curve fixes the fraction of relevant timesteps that participate in
query matches (100/75/50/25%); the x-axis sweeps data density. Expected
shape: for a fixed density, fewer matches -> proportionally faster; the
100% curve is Figure 8(a)'s worst case.
"""

from __future__ import annotations

import pytest

from repro.streams import Layout

from .harness import measure, print_table, save_report
from .workloads import ENTERED_ROOM_QUERY, synthetic_db

DENSITIES = [0.01, 0.05, 0.1, 0.25, 0.5, 1.0]
MATCH_RATES = [1.0, 0.75, 0.5, 0.25]


def _db(density, match_rate):
    return synthetic_db(density=density, match_rate=match_rate,
                        layouts=(Layout.SEPARATED,))


def generate():
    rows = []
    for match_rate in MATCH_RATES:
        for density in DENSITIES:
            db = _db(density, match_rate)
            try:
                result = db.query("syn_separated", ENTERED_ROOM_QUERY,
                                  method="btree", cold=True)
                m = measure(db, "syn_separated", ENTERED_ROOM_QUERY, "btree",
                            "btree", repeats=1)
                rows.append({
                    "match_rate": match_rate,
                    "target_density": density,
                    "measured_density": round(
                        db.data_density("syn_separated", ENTERED_ROOM_QUERY), 4
                    ),
                    "wall_ms": round(m.wall_ms, 2),
                    "matches": result.match_count,
                    "reg_updates": m.extra["reg_updates"],
                })
            finally:
                db.close()
    text = print_table(
        "Figure 8(c): B+Tree time vs density at fixed match rates",
        rows,
        columns=["match_rate", "target_density", "measured_density",
                 "wall_ms", "matches", "reg_updates"],
    )
    save_report("fig8c", text, {"rows": rows})
    return rows


@pytest.mark.parametrize("match_rate", [1.0, 0.25])
def test_fig8c_btree_at_match_rate(benchmark, match_rate):
    db = _db(0.1, match_rate)
    try:
        benchmark.pedantic(
            lambda: db.query("syn_separated", ENTERED_ROOM_QUERY,
                             method="btree", cold=True),
            rounds=3, iterations=1,
        )
    finally:
        db.close()


def test_fig8c_shape_fewer_matches_fewer_candidates():
    """At equal density, a lower match rate yields fewer candidate
    match intervals for the B+Tree method."""
    full = _db(0.25, 1.0)
    quarter = _db(0.25, 0.25)
    try:
        r_full = full.query("syn_separated", ENTERED_ROOM_QUERY,
                            method="btree")
        r_quarter = quarter.query("syn_separated", ENTERED_ROOM_QUERY,
                                  method="btree")
        assert r_quarter.match_count < r_full.match_count
    finally:
        full.close()
        quarter.close()


if __name__ == "__main__":
    generate()
