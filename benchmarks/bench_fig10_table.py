"""Figure 10 (table): all algorithms on real streams, 2/3/4-link queries.

The paper's table runs three real streams (James: Entered-Office on a
high-density stream; Sally: Entered-Office on a low-density stream; Pat:
Coffee-Room on a longer stream) against queries of 2, 3, and 4 links.
The NEXT block uses adjacent links (fixed-length: full scan, B+Tree,
top-k B+Tree); the BEFORE block inserts Kleene closures (variable-length:
MC index, semi-independent). Rows report stream statistics, match
counts, and per-algorithm times.

Longer queries pin a tag at successive hallway segments outside the room
before it is entered, exactly as in §4.2.4.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.rfid import HALLWAY

from .harness import measure, print_table, save_report
from .workloads import room_queries_for, routines_db, world

MATCH_THRESHOLD = 1e-3


def hallway_chain(room: str, length: int) -> Optional[List[str]]:
    """Hallway segments walking away from the room's doorway:
    ``[h_far, ..., h2, h1]`` with ``h1`` adjacent to the room."""
    plan, _, _ = world()
    halls = [n for n in plan.neighbors(room) if plan.kind_of(n) == HALLWAY]
    if not halls:
        return None
    chain = [halls[0]]
    while len(chain) < length:
        nxt = [
            n for n in plan.neighbors(chain[-1])
            if plan.kind_of(n) == HALLWAY and n not in chain
        ]
        if not nxt:
            return None
        chain.append(nxt[0])
    chain.reverse()
    return chain


def query_text(room: str, links: int, before: bool) -> Optional[str]:
    """An Entered-Room query with the given number of links."""
    chain = hallway_chain(room, links - 1)
    if chain is None:
        return None
    stops = chain + [room]
    if not before:
        return " -> ".join(f"location={stop}" for stop in stops)
    parts = [f"location={stops[0]}"]
    for stop in stops[1:]:
        parts.append(f"(!location={stop})* location={stop}")
    return " -> ".join(parts)


def pick_scenarios(db) -> List[Tuple[str, str, str]]:
    """(label, stream, room) triples mirroring James / Sally / Pat."""
    scenarios = []
    dense = room_queries_for(db, "person0", count=1)[0][0]
    scenarios.append(("James (dense office)", "person0", dense))
    sparse_list = room_queries_for(db, "person1", count=22)
    scenarios.append(("Sally (sparse office)", "person1", sparse_list[-1][0]))
    plan, _, _ = world()
    coffee_rooms = set(plan.of_kind("CoffeeRoom"))
    pat_room = None
    for room, _ in room_queries_for(db, "person2", count=50):
        if room in coffee_rooms:
            pat_room = room
            break
    if pat_room is None:
        pat_room = room_queries_for(db, "person2", count=22)[-1][0]
    scenarios.append(("Pat (coffee room)", "person2", pat_room))
    return scenarios


def generate():
    db = routines_db()
    rows = []
    try:
        for label, stream, room in pick_scenarios(db):
            meta = db.stream_meta(stream)
            for links in (2, 3, 4):
                next_text = query_text(room, links, before=False)
                before_text = query_text(room, links, before=True)
                if next_text is None or before_text is None:
                    continue
                relevant = round(
                    db.data_density(stream, next_text) * meta.length
                )
                row = {
                    "scenario": label,
                    "links": links,
                    "timesteps": meta.length,
                    "relevant": relevant,
                }
                scan = measure(db, stream, next_text, "naive", "scan",
                               repeats=1)
                row["scan_ms"] = round(scan.wall_ms, 1)
                next_result = db.query(stream, next_text, method="btree")
                row["next_matches"] = len(
                    next_result.above(MATCH_THRESHOLD)
                )
                btree = measure(db, stream, next_text, "btree", "btree",
                                repeats=1)
                row["btree_ms"] = round(btree.wall_ms, 1)
                topk = measure(db, stream, next_text, "topk", "topk",
                               repeats=1, k=1)
                row["topk_ms"] = round(topk.wall_ms, 1)
                before_result = db.query(stream, before_text, method="mc")
                row["before_matches"] = len(
                    before_result.above(MATCH_THRESHOLD)
                )
                mc = measure(db, stream, before_text, "mc", "mc", repeats=1)
                row["mc_ms"] = round(mc.wall_ms, 1)
                semi = measure(db, stream, before_text, "semi", "semi",
                               repeats=1)
                row["semi_ms"] = round(semi.wall_ms, 1)
                rows.append(row)
        text = print_table(
            "Figure 10: algorithm times on real streams, 2-4 link queries",
            rows,
            columns=["scenario", "links", "timesteps", "relevant", "scan_ms",
                     "next_matches", "btree_ms", "topk_ms", "before_matches",
                     "mc_ms", "semi_ms"],
        )
        save_report("fig10", text, {"rows": rows})
        return rows
    finally:
        db.close()


@pytest.fixture(scope="module")
def db():
    database = routines_db()
    yield database
    database.close()


@pytest.fixture(scope="module")
def james(db):
    label, stream, room = pick_scenarios(db)[0]
    return stream, room


@pytest.mark.parametrize("links", [2, 3, 4])
def test_fig10_btree_scales_with_links(benchmark, db, james, links):
    stream, room = james
    text = query_text(room, links, before=False)
    assert text is not None
    benchmark.pedantic(
        lambda: db.query(stream, text, method="btree", cold=True),
        rounds=3, iterations=1,
    )


@pytest.mark.parametrize("links", [2, 4])
def test_fig10_mc_before_queries(benchmark, db, james, links):
    stream, room = james
    text = query_text(room, links, before=True)
    assert text is not None
    benchmark.pedantic(
        lambda: db.query(stream, text, method="mc", cold=True),
        rounds=3, iterations=1,
    )


def test_fig10_shape_btree_beats_scan_more_on_longer_queries(db):
    """§4.2.4: the Reg operator slows with extra links, and the B+Tree
    method avoids many updates, so its relative advantage grows."""
    label, stream, room = pick_scenarios(db)[1]  # sparse stream
    ratios = {}
    for links in (2, 4):
        text = query_text(room, links, before=False)
        scan = measure(db, stream, text, "naive", "s", repeats=1)
        btree = measure(db, stream, text, "btree", "b", repeats=1)
        ratios[links] = scan.wall_ms / max(btree.wall_ms, 1e-6)
    assert ratios[4] > 1.0  # B+Tree wins on the longer query
    assert ratios[2] > 1.0


if __name__ == "__main__":
    generate()
