"""Measurement and reporting helpers shared by the figure benchmarks.

Every benchmark also reports through :mod:`repro.obs`:
:func:`start_run` hands out a :class:`~repro.obs.manifest.RunManifest`
plus a :class:`~repro.obs.tracing.Tracer` whose spans stream to
``results/<name>.spans.jsonl``, and :func:`finish_run` writes the
finished manifest (span tree with per-span wall time and I/O deltas,
registry snapshot with histogram summaries) to
``results/<name>.manifest.json`` — the file
``python -m repro.obs.report`` renders and diffs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.obs import JsonlSink, RunManifest, Tracer

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def start_run(
    name: str,
    config: Optional[Dict] = None,
    io=None,
    registry=None,
    stream_spans: bool = True,
) -> Tuple[RunManifest, Tracer]:
    """A manifest + tracer pair for one benchmark run.

    ``io`` is the default IOStats spans delta against (benchmarks that
    open one environment per phase pass ``io=env.stats`` per span
    instead); ``registry`` collects span-latency histograms. Span
    completions stream to ``results/<name>.spans.jsonl`` as they
    happen, so an interrupted run still leaves its trace.
    """
    manifest = RunManifest.new(name, config)
    sink = None
    if stream_spans:
        sink = JsonlSink(os.path.join(RESULTS_DIR, f"{name}.spans.jsonl"))
        sink.emit({
            "type": "run_start",
            "run_id": manifest.run_id,
            "name": name,
            "created": manifest.created,
        })
    return manifest, Tracer(io=io, registry=registry, sink=sink)


def finish_run(
    manifest: RunManifest,
    tracer: Tracer,
    registry=None,
    extra: Optional[Dict] = None,
) -> str:
    """Attach spans + metrics, write the manifest JSON, close the
    sink; returns the manifest path."""
    manifest.finish(tracer, registry)
    if extra:
        manifest.extra.update(extra)
    if tracer.sink is not None:
        tracer.sink.emit({"type": "run_end", "run_id": manifest.run_id})
        tracer.sink.close()
    path = os.path.join(RESULTS_DIR, f"{manifest.name}.manifest.json")
    return manifest.save(path)


@dataclass
class Measurement:
    """One measured query execution."""

    label: str
    wall_ms: float
    logical_reads: int
    physical_reads: int
    extra: Dict = field(default_factory=dict)

    def row(self) -> Dict:
        out = {
            "label": self.label,
            "wall_ms": round(self.wall_ms, 3),
            "logical_reads": self.logical_reads,
            "physical_reads": self.physical_reads,
        }
        out.update(self.extra)
        return out


def measure(db, stream_name: str, query, method: str, label: str,
            cold: bool = True, repeats: int = 3, **kwargs) -> Measurement:
    """Run a query ``repeats`` times (cold caches each time) and report
    the median wall time with the first run's I/O counts."""
    results = []
    for _ in range(max(1, repeats)):
        result = db.query(stream_name, query, method=method, cold=cold,
                          **kwargs)
        results.append(result)
    walls = sorted(r.stats.wall_time for r in results)
    median = walls[len(walls) // 2]
    first = results[0]
    return Measurement(
        label=label,
        wall_ms=median * 1000.0,
        logical_reads=first.stats.io.logical_reads,
        physical_reads=first.stats.io.physical_reads,
        extra={
            "reg_updates": first.stats.reg_updates,
            "marginals_read": first.stats.marginals_read,
            "cpts_read": first.stats.cpts_read,
            "signal_points": len(first.signal),
            "mc_lookups": first.stats.mc_lookups.lookups,
            "mc_base_cpts": first.stats.mc_lookups.base_cpts_read,
        },
    )


def print_table(title: str, rows: Sequence[Dict],
                columns: Optional[Sequence[str]] = None) -> str:
    """Format rows as an aligned text table; returns the text."""
    if not rows:
        return f"== {title} ==\n(no data)\n"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), max(len(_fmt(r.get(c, ""))) for r in rows))
        for c in columns
    }
    lines = [f"== {title} =="]
    lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
    lines.append("  ".join("-" * widths[c] for c in columns))
    for r in rows:
        lines.append(
            "  ".join(_fmt(r.get(c, "")).ljust(widths[c]) for c in columns)
        )
    text = "\n".join(lines) + "\n"
    print(text)
    return text


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def save_report(name: str, text: str, data: Optional[Dict] = None) -> str:
    """Persist a figure's report under ``benchmarks/results``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text)
    if data is not None:
        with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
    return path


def speedup(baseline_ms: float, other_ms: float) -> float:
    """How many times faster ``other`` is than ``baseline``."""
    if other_ms <= 0:
        return float("inf")
    return baseline_ms / other_ms
