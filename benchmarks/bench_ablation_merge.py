"""Ablation: interval merging in the B+Tree method (§3.1).

The paper notes that merging overlapping candidate intervals lets the
B+Tree method "avoid double-processing" of shared timesteps, and that
this is why it can beat the top-k method on dense, overlapping data.
This ablation disables merging and measures the cost difference on
high-density synthetic data (heavily overlapping matches).
"""

from __future__ import annotations

import pytest

from repro.access import FixedBTree
from repro.streams import Layout

from .harness import print_table, save_report
from .workloads import ENTERED_ROOM_QUERY, synthetic_db

DENSITIES = [0.1, 0.5, 1.0]


def _run(db, merge):
    ctx = db.context("syn_separated", ENTERED_ROOM_QUERY)
    db.drop_caches()
    return FixedBTree(merge_overlapping=merge).run(ctx)


def generate():
    rows = []
    for density in DENSITIES:
        db = synthetic_db(density=density, match_rate=1.0,
                          layouts=(Layout.SEPARATED,))
        try:
            merged = _run(db, True)
            unmerged = _run(db, False)
            rows.append({
                "density": density,
                "merged_ms": round(merged.stats.wall_time * 1000, 2),
                "unmerged_ms": round(unmerged.stats.wall_time * 1000, 2),
                "merged_updates": merged.stats.reg_updates,
                "unmerged_updates": unmerged.stats.reg_updates,
                "merged_intervals": merged.stats.intervals_processed,
                "unmerged_intervals": unmerged.stats.intervals_processed,
            })
        finally:
            db.close()
    text = print_table(
        "Ablation: interval merging in the B+Tree method", rows,
        columns=["density", "merged_ms", "unmerged_ms", "merged_updates",
                 "unmerged_updates", "merged_intervals",
                 "unmerged_intervals"],
    )
    save_report("ablation_merge", text, {"rows": rows})
    return rows


@pytest.fixture(scope="module")
def dense_db():
    db = synthetic_db(density=1.0, match_rate=1.0,
                      layouts=(Layout.SEPARATED,))
    yield db
    db.close()


@pytest.mark.parametrize("merge", [True, False])
def test_ablation_merge(benchmark, dense_db, merge):
    benchmark.pedantic(lambda: _run(dense_db, merge), rounds=3, iterations=1)


def test_ablation_merge_shape(dense_db):
    """Merging strictly reduces Reg updates on overlapping data, without
    changing emitted probabilities."""
    merged = _run(dense_db, True)
    unmerged = _run(dense_db, False)
    assert merged.stats.reg_updates <= unmerged.stats.reg_updates
    merged_signal = merged.as_dict()
    for t, p in unmerged.as_dict().items():
        assert abs(merged_signal[t] - p) < 1e-9


if __name__ == "__main__":
    generate()
