"""Figure 8(b): fixed-length access methods on "real" (routine) data.

22 Entered-Room queries against one routine stream; each query plots
three points (naive scan / B+Tree / top-k B+Tree with k=1) at its
measured data density. Expected shape: bimodal densities; B+Tree speedup
grows as density falls; top-k poor at low density, often best at high
density when the signal has sharp peaks.
"""

from __future__ import annotations

import pytest

from .harness import measure, print_table, save_report
from .workloads import room_queries_for, routines_db

STREAM = "person0"
NUM_QUERIES = 22


def generate():
    db = routines_db()
    try:
        queries = room_queries_for(db, STREAM, count=NUM_QUERIES)
        rows = []
        for room, text in queries:
            density = db.data_density(STREAM, text)
            for method, kwargs in (
                ("naive", {}),
                ("btree", {}),
                ("topk", {"k": 1}),
            ):
                m = measure(db, STREAM, text, method, f"{method}/{room}",
                            repeats=1, **kwargs)
                rows.append({
                    "room": room,
                    "density": round(density, 4),
                    "method": method,
                    "wall_ms": round(m.wall_ms, 2),
                    "physical_reads": m.physical_reads,
                })
        rows.sort(key=lambda r: (-r["density"], r["room"], r["method"]))
        text_out = print_table(
            f"Figure 8(b): {len(queries)} Entered-Room queries on a routine "
            "stream",
            rows,
            columns=["room", "density", "method", "wall_ms", "physical_reads"],
        )
        save_report("fig8b", text_out, {"rows": rows})
        return rows
    finally:
        db.close()


@pytest.fixture(scope="module")
def db():
    database = routines_db()
    yield database
    database.close()


@pytest.fixture(scope="module")
def sample_queries(db):
    queries = room_queries_for(db, STREAM, count=NUM_QUERIES)
    # Highest- and lowest-density queries as benchmark representatives.
    return queries[0], queries[-1]


@pytest.mark.parametrize("method", ["naive", "btree", "topk"])
def test_fig8b_low_density_query(benchmark, db, sample_queries, method):
    _, low = sample_queries
    kwargs = {"k": 1} if method == "topk" else {}
    benchmark.pedantic(
        lambda: db.query(STREAM, low[1], method=method, cold=True, **kwargs),
        rounds=3, iterations=1,
    )


@pytest.mark.parametrize("method", ["naive", "btree", "topk"])
def test_fig8b_high_density_query(benchmark, db, sample_queries, method):
    high, _ = sample_queries
    kwargs = {"k": 1} if method == "topk" else {}
    benchmark.pedantic(
        lambda: db.query(STREAM, high[1], method=method, cold=True, **kwargs),
        rounds=3, iterations=1,
    )


def test_fig8b_shape_btree_beats_naive_at_low_density(db, sample_queries):
    _, (room, text) = sample_queries
    naive = measure(db, STREAM, text, "naive", "n", repeats=1)
    btree = measure(db, STREAM, text, "btree", "b", repeats=1)
    assert btree.wall_ms < naive.wall_ms


def test_fig8b_density_is_bimodal(db):
    """§4.1.2: most queries sit near density 0 or near density 1."""
    queries = room_queries_for(db, STREAM, count=NUM_QUERIES)
    densities = [db.data_density(STREAM, text) for _, text in queries]
    middle = [d for d in densities if 0.25 <= d <= 0.55]
    assert len(middle) <= len(densities) // 2


if __name__ == "__main__":
    generate()
