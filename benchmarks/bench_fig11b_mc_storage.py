"""Figure 11(b): MC index storage requirements vs alpha and stream length.

Builds MC indexes with alpha in {2, 4, 8, 16} over streams of increasing
length and reports index size (bytes and entries) against raw stream
size. Expected shape: storage grows linearly with stream length; alpha=2
roughly doubles the stream's storage (sum over levels of M/alpha^i ~=
M/(alpha-1)); larger alpha shrinks the index quickly.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.indexes import build_mc
from repro.storage import StorageEnvironment
from repro.streams import Layout, open_reader, write_stream

from .harness import print_table, save_report
from .workloads import CACHE_ROOT, world
from repro.rfid import synthesize_stream

ALPHAS = [2, 4, 8, 16]
LENGTH_SNIPPETS = [25, 50, 100]  # x30 timesteps each


def _make_stream(num_snippets, seed=5):
    plan, sensors, space = world()
    return synthesize_stream(
        plan, sensors, f"len{num_snippets}", target_room="F0C0R5a",
        num_snippets=num_snippets, density=0.2, seed=seed, space=space,
        prune=1e-3,
    )


def generate():
    rows = []
    scratch = os.path.join(CACHE_ROOT, "fig11b-scratch")
    if os.path.exists(scratch):
        shutil.rmtree(scratch)
    for num_snippets in LENGTH_SNIPPETS:
        stream = _make_stream(num_snippets)
        for alpha in ALPHAS:
            path = os.path.join(scratch, f"{num_snippets}-{alpha}")
            with StorageEnvironment(path, page_size=8192) as env:
                write_stream(env, stream, Layout.SEPARATED)
                reader = open_reader(env, stream.name, stream.space,
                                     len(stream), Layout.SEPARATED)
                index = build_mc(env, stream.name, reader, alpha=alpha)
                stream_bytes = (
                    env.file_size(stream.name + "__marg")
                    + env.file_size(stream.name + "__cpt")
                )
                rows.append({
                    "timesteps": len(stream),
                    "alpha": alpha,
                    "index_entries": index.num_entries(),
                    "index_mb": round(index.storage_bytes() / 2**20, 3),
                    "stream_mb": round(stream_bytes / 2**20, 3),
                    "overhead_ratio": round(
                        index.storage_bytes() / stream_bytes, 3
                    ),
                })
    text = print_table(
        "Figure 11(b): MC index storage vs alpha and stream length",
        rows,
        columns=["timesteps", "alpha", "index_entries", "index_mb",
                 "stream_mb", "overhead_ratio"],
    )
    save_report("fig11b", text, {"rows": rows})
    shutil.rmtree(scratch, ignore_errors=True)
    return rows


@pytest.mark.parametrize("alpha", [2, 8])
def test_fig11b_build_cost(benchmark, tmp_path, alpha):
    stream = _make_stream(25)

    def build():
        import uuid

        path = str(tmp_path / uuid.uuid4().hex)
        with StorageEnvironment(path, page_size=8192) as env:
            write_stream(env, stream, Layout.SEPARATED)
            reader = open_reader(env, stream.name, stream.space,
                                 len(stream), Layout.SEPARATED)
            build_mc(env, stream.name, reader, alpha=alpha)

    benchmark.pedantic(build, rounds=2, iterations=1)


def test_fig11b_shape_alpha_tradeoff(tmp_path):
    """Larger alpha -> smaller index; alpha=2 entry count ~= M-ish."""
    stream = _make_stream(25)
    sizes = {}
    for alpha in (2, 8):
        path = str(tmp_path / f"a{alpha}")
        with StorageEnvironment(path, page_size=8192) as env:
            write_stream(env, stream, Layout.SEPARATED)
            reader = open_reader(env, stream.name, stream.space,
                                 len(stream), Layout.SEPARATED)
            index = build_mc(env, stream.name, reader, alpha=alpha)
            sizes[alpha] = (index.num_entries(), index.storage_bytes())
    assert sizes[8][0] < sizes[2][0]
    assert sizes[8][1] <= sizes[2][1]
    # alpha=2 stores close to one entry per timestep (sum_i M/2^i ~ M).
    assert sizes[2][0] <= len(stream)


if __name__ == "__main__":
    generate()
