"""Figure 8(a): worst-case B+Tree vs naive scan, across disk layouts.

The paper's setup: synthetic streams where *every* relevant timestep
participates in a valid query match (match rate 100% — worst case for
pruning), an Entered-Room query, log-scale time vs data density.

This reproduction measures three layouts — ``separated`` (marginals and
CPTs in their own trees), ``cell`` (co-clustered, one entry per
timestep), and ``packed`` (K timesteps per B+ tree value) — under both
the naive scan (Alg 1) and the B+Tree access method (Alg 2).

Expected shape: at low density the B+Tree method wins by 1-2 orders of
magnitude; as density approaches 1 it degenerates into a scan with B+
tree overhead. The packed layout cuts a sequential scan's *logical*
page reads by ~1/K (every ``tree.get`` resolves K timesteps).

The run writes ``results/fig8a.manifest.json`` with one span per
measured query and a registry of deterministic cost counters
(logical page reads and Reg updates per configuration) — the manifest
CI diffs against its committed baseline to catch cost regressions.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.streams import DEFAULT_PACK, Layout

from .harness import finish_run, measure, print_table, save_report, start_run
from .workloads import ENTERED_ROOM_QUERY, SYNTHETIC_SNIPPETS, synthetic_db

DENSITIES = [0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0]
LAYOUTS = (Layout.SEPARATED, Layout.CELL, Layout.PACKED)


def _db(density, num_snippets=None):
    return synthetic_db(density=density, match_rate=1.0, layouts=LAYOUTS,
                        num_snippets=num_snippets)


def generate(num_snippets=None):
    """The full Figure 8(a) series."""
    num_snippets = num_snippets if num_snippets is not None \
        else SYNTHETIC_SNIPPETS
    registry = MetricsRegistry()
    manifest, tracer = start_run(
        "fig8a",
        config={
            "densities": DENSITIES,
            "layouts": [layout.value for layout in LAYOUTS],
            "num_snippets": num_snippets,
            "pack": DEFAULT_PACK,
        },
    )
    rows = []
    for density in DENSITIES:
        db = _db(density, num_snippets)
        try:
            measured_density = db.data_density("syn_separated",
                                               ENTERED_ROOM_QUERY)
            for layout in LAYOUTS:
                stream = f"syn_{layout.value}"
                for method in ("naive", "btree"):
                    label = f"{method}/{layout.value}/d={density}"
                    with tracer.span(label, io=db.stats):
                        m = measure(db, stream, ENTERED_ROOM_QUERY, method,
                                    label)
                    labels = {"layout": layout.value, "method": method,
                              "density": density}
                    registry.counter("cost.logical_reads",
                                     **labels).inc(m.logical_reads)
                    registry.counter("cost.reg_updates",
                                     **labels).inc(m.extra["reg_updates"])
                    rows.append({
                        "target_density": density,
                        "measured_density": round(measured_density, 4),
                        "layout": layout.value,
                        "method": method,
                        "wall_ms": round(m.wall_ms, 2),
                        "logical_reads": m.logical_reads,
                        "physical_reads": m.physical_reads,
                        "reg_updates": m.extra["reg_updates"],
                    })
        finally:
            db.close()
    text = print_table(
        "Figure 8(a): B+Tree vs naive scan x layouts (worst case)",
        rows,
        columns=["target_density", "measured_density", "layout", "method",
                 "wall_ms", "logical_reads", "physical_reads",
                 "reg_updates"],
    )
    save_report("fig8a", text, {"rows": rows})
    finish_run(manifest, tracer, registry, extra={"rows": rows})
    return rows


@pytest.fixture(scope="module")
def low_density_db():
    db = _db(0.05)
    yield db
    db.close()


@pytest.fixture(scope="module")
def high_density_db():
    db = _db(0.75)
    yield db
    db.close()


@pytest.mark.parametrize("method", ["naive", "btree"])
@pytest.mark.parametrize("layout", ["separated", "cell", "packed"])
def test_fig8a_low_density(benchmark, low_density_db, method, layout):
    db = low_density_db
    stream = f"syn_{layout}"
    benchmark.pedantic(
        lambda: db.query(stream, ENTERED_ROOM_QUERY, method=method, cold=True),
        rounds=3, iterations=1,
    )


@pytest.mark.parametrize("method", ["naive", "btree"])
def test_fig8a_high_density(benchmark, high_density_db, method):
    db = high_density_db
    benchmark.pedantic(
        lambda: db.query("syn_separated", ENTERED_ROOM_QUERY, method=method,
                         cold=True),
        rounds=3, iterations=1,
    )


def test_fig8a_shape_btree_wins_at_low_density(low_density_db):
    """Reproduction criterion: order-of-magnitude speedup at low density."""
    db = low_density_db
    naive = measure(db, "syn_separated", ENTERED_ROOM_QUERY, "naive", "n",
                    repeats=1)
    btree = measure(db, "syn_separated", ENTERED_ROOM_QUERY, "btree", "b",
                    repeats=1)
    assert btree.wall_ms * 4 < naive.wall_ms
    assert btree.extra["reg_updates"] * 4 < naive.extra["reg_updates"]


def test_fig8a_shape_packed_cuts_logical_reads(low_density_db):
    """Reproduction criterion: the packed layout's sequential scan costs
    ~1/K the logical page reads of the one-entry-per-timestep layout."""
    db = low_density_db
    cell = measure(db, "syn_cell", ENTERED_ROOM_QUERY, "naive", "c",
                   repeats=1)
    packed = measure(db, "syn_packed", ENTERED_ROOM_QUERY, "naive", "p",
                     repeats=1)
    # Tree heights differ by at most one level, so demand at least a
    # K/2 reduction rather than exactly K.
    assert packed.logical_reads * (DEFAULT_PACK // 2) <= cell.logical_reads


if __name__ == "__main__":
    generate()
