"""Figure 8(a): worst-case B+Tree vs naive scan, separated vs co-clustered.

The paper's setup: synthetic streams where *every* relevant timestep
participates in a valid query match (match rate 100% — worst case for
pruning), an Entered-Room query, both disk layouts, log-scale time vs
data density.

Expected shape: at low density the B+Tree method wins by 1-2 orders of
magnitude; as density approaches 1 it degenerates into a scan with B+
tree overhead. Both methods run faster on the separated layout.
"""

from __future__ import annotations

import pytest

from repro.streams import Layout

from .harness import measure, print_table, save_report
from .workloads import ENTERED_ROOM_QUERY, synthetic_db

DENSITIES = [0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0]
LAYOUTS = (Layout.SEPARATED, Layout.CO_CLUSTERED)


def _db(density):
    return synthetic_db(density=density, match_rate=1.0, layouts=LAYOUTS)


def generate():
    """The full Figure 8(a) series."""
    rows = []
    for density in DENSITIES:
        db = _db(density)
        try:
            measured_density = db.data_density("syn_separated",
                                               ENTERED_ROOM_QUERY)
            for layout in LAYOUTS:
                stream = f"syn_{layout.value}"
                for method in ("naive", "btree"):
                    m = measure(db, stream, ENTERED_ROOM_QUERY, method,
                                f"{method}/{layout.value}")
                    rows.append({
                        "target_density": density,
                        "measured_density": round(measured_density, 4),
                        "layout": layout.value,
                        "method": method,
                        "wall_ms": round(m.wall_ms, 2),
                        "physical_reads": m.physical_reads,
                        "reg_updates": m.extra["reg_updates"],
                    })
        finally:
            db.close()
    text = print_table(
        "Figure 8(a): B+Tree vs naive scan x layouts (worst case)",
        rows,
        columns=["target_density", "measured_density", "layout", "method",
                 "wall_ms", "physical_reads", "reg_updates"],
    )
    save_report("fig8a", text, {"rows": rows})
    return rows


@pytest.fixture(scope="module")
def low_density_db():
    db = _db(0.05)
    yield db
    db.close()


@pytest.fixture(scope="module")
def high_density_db():
    db = _db(0.75)
    yield db
    db.close()


@pytest.mark.parametrize("method", ["naive", "btree"])
@pytest.mark.parametrize("layout", ["separated", "co_clustered"])
def test_fig8a_low_density(benchmark, low_density_db, method, layout):
    db = low_density_db
    stream = f"syn_{layout}"
    benchmark.pedantic(
        lambda: db.query(stream, ENTERED_ROOM_QUERY, method=method, cold=True),
        rounds=3, iterations=1,
    )


@pytest.mark.parametrize("method", ["naive", "btree"])
def test_fig8a_high_density(benchmark, high_density_db, method):
    db = high_density_db
    benchmark.pedantic(
        lambda: db.query("syn_separated", ENTERED_ROOM_QUERY, method=method,
                         cold=True),
        rounds=3, iterations=1,
    )


def test_fig8a_shape_btree_wins_at_low_density(low_density_db):
    """Reproduction criterion: order-of-magnitude speedup at low density."""
    db = low_density_db
    naive = measure(db, "syn_separated", ENTERED_ROOM_QUERY, "naive", "n",
                    repeats=1)
    btree = measure(db, "syn_separated", ENTERED_ROOM_QUERY, "btree", "b",
                    repeats=1)
    assert btree.wall_ms * 4 < naive.wall_ms
    assert btree.extra["reg_updates"] * 4 < naive.extra["reg_updates"]


if __name__ == "__main__":
    generate()
