"""Workload construction and caching for the benchmark suite.

Datasets mirror §4.1:

- **synthetic** (§4.1.1): snippet-concatenated streams with controlled
  data density and query-match rate. When the RFID simulator
  (:mod:`repro.rfid`) is available these live in the paper-scale
  two-floor building (30,000 timesteps at full scale); until then the
  streams-level generator (:mod:`repro.streams.synthetic`) provides the
  same snippet construction over a small cell grid.
- **routines** (§4.1.2): simulated daily routines — the "real data"
  substitute with bimodal density.

Scaled down by default so the whole suite runs in minutes of pure
Python; set ``REPRO_BENCH_FULL=1`` for paper scale. Built databases are
cached on disk under ``benchmarks/.cache`` keyed by their parameters,
so repeated benchmark runs skip regeneration.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import Caldera
from repro.streams import Layout

try:  # The building/antenna simulator is a later PR.
    from repro.rfid import (  # noqa: F401
        RFIDSensorModel,
        default_deployment,
        routine_dataset,
        synthesize_stream,
        uw_building,
    )

    HAVE_RFID = True
except ModuleNotFoundError:
    HAVE_RFID = False

CACHE_ROOT = os.environ.get(
    "REPRO_BENCH_CACHE",
    os.path.join(os.path.dirname(__file__), ".cache"),
)
FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

#: Snippets per synthetic stream (30 timesteps each).
SYNTHETIC_SNIPPETS = 1000 if FULL_SCALE else 100
#: Timesteps per routine trace (the paper's Pat stream is 1683).
ROUTINE_DURATION = 1683 if FULL_SCALE else 600
ROUTINE_PEOPLE = 8 if FULL_SCALE else 4

PAGE_SIZE = 8192

if HAVE_RFID:
    #: The synthetic target: an office off floor-0 corridor-0 segment 5.
    TARGET_ROOM = "F0C0R5a"
    TARGET_DOORWAY = "F0C0H5"
else:
    TARGET_ROOM = "Room"
    TARGET_DOORWAY = "Door"

ENTERED_ROOM_QUERY = f"location={TARGET_DOORWAY} -> location={TARGET_ROOM}"
ENTERED_ROOM_KLEENE = (
    f"location={TARGET_DOORWAY} -> "
    f"(!location={TARGET_ROOM})* location={TARGET_ROOM}"
)

_world_cache: Dict[str, object] = {}


def world():
    """The shared building, sensors, and state space (memoized).

    Requires :mod:`repro.rfid`.
    """
    if not HAVE_RFID:
        raise ModuleNotFoundError("repro.rfid is not implemented yet")
    if not _world_cache:
        plan = uw_building()
        sensors = RFIDSensorModel(plan, default_deployment(plan))
        _world_cache["plan"] = plan
        _world_cache["sensors"] = sensors
        _world_cache["space"] = plan.state_space()
    return (
        _world_cache["plan"],
        _world_cache["sensors"],
        _world_cache["space"],
    )


def _cache_dir(kind: str, params: Dict) -> Tuple[str, bool]:
    """Cache directory for one workload; returns (path, already_built)."""
    key = json.dumps(params, sort_keys=True)
    import hashlib

    digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]
    path = os.path.join(CACHE_ROOT, f"{kind}-{digest}")
    marker = os.path.join(path, "BUILT.json")
    if os.path.exists(marker):
        return path, True
    if os.path.exists(path):
        shutil.rmtree(path)  # partial build: start over
    os.makedirs(path, exist_ok=True)
    return path, False


def _mark_built(path: str, params: Dict) -> None:
    with open(os.path.join(path, "BUILT.json"), "w") as handle:
        json.dump(params, handle, indent=2, sort_keys=True)


def synthetic_db(
    density: float,
    match_rate: float = 1.0,
    num_snippets: Optional[int] = None,
    layouts: Sequence[Layout] = (Layout.SEPARATED,),
    seed: int = 7,
    mc_alpha: Optional[int] = None,
) -> Caldera:
    """A Caldera DB holding one synthetic stream per requested layout.

    Stream names are ``syn_{layout.value}``. Indexed with BT_C and BT_P
    (plus the MC index when ``mc_alpha`` is set — requires the MC PR).
    """
    num_snippets = num_snippets if num_snippets is not None else SYNTHETIC_SNIPPETS
    params = {
        "density": density,
        "match_rate": match_rate,
        "num_snippets": num_snippets,
        "layouts": sorted(layout.value for layout in layouts),
        "seed": seed,
        "mc_alpha": mc_alpha,
        "target": TARGET_ROOM,
        "rfid": HAVE_RFID,
    }
    path, built = _cache_dir("synthetic", params)
    db = Caldera(path, page_size=PAGE_SIZE)
    if built:
        return db
    if HAVE_RFID:
        plan, sensors, space = world()
        stream = synthesize_stream(
            plan, sensors, "syn", target_room=TARGET_ROOM,
            num_snippets=num_snippets, density=density,
            match_rate=match_rate, seed=seed, space=space, prune=1e-3,
        )
    else:
        from repro.streams import synthetic_stream

        stream = synthetic_stream(
            "syn", num_snippets=num_snippets, density=density,
            match_rate=match_rate, seed=seed,
        )
    for layout in layouts:
        stream.name = f"syn_{layout.value}"
        db.archive(stream, layout=layout, mc_alpha=mc_alpha)
    _mark_built(path, params)
    return db


def routines_db(
    num_people: Optional[int] = None,
    duration: Optional[int] = None,
    seed: int = 11,
    layout: Layout = Layout.SEPARATED,
    mc_alpha: Optional[int] = None,
) -> Caldera:
    """A Caldera DB holding the routine ("real data") streams
    ``person0..personN`` (plus the LocationType dimension table when
    the RFID simulator provides one)."""
    num_people = num_people if num_people is not None else ROUTINE_PEOPLE
    duration = duration if duration is not None else ROUTINE_DURATION
    params = {
        "num_people": num_people,
        "duration": duration,
        "seed": seed,
        "layout": layout.value,
        "mc_alpha": mc_alpha,
        "rfid": HAVE_RFID,
    }
    path, built = _cache_dir("routines", params)
    db = Caldera(path, page_size=PAGE_SIZE)
    if built:
        return db
    if HAVE_RFID:
        plan, sensors, space = world()
        db.register_dimension_table("LocationType", plan.dimension_table())
        streams = routine_dataset(
            plan, sensors, num_people=num_people, duration=duration,
            seed=seed, space=space, prune=1e-3,
        )
        for stream in streams:
            db.archive(stream, layout=layout, mc_alpha=mc_alpha,
                       join_tables=("LocationType",))
    else:
        from repro.streams import routine_stream

        snippets = max(3, duration // 30)
        for person in range(num_people):
            stream = routine_stream(
                f"person{person}", num_snippets=snippets,
                seed=seed + person,
            )
            db.archive(stream, layout=layout, mc_alpha=mc_alpha)
    _mark_built(path, params)
    return db


def room_queries_for(db: Caldera, stream_name: str, count: int = 22,
                     variable: bool = False) -> List[Tuple[str, str]]:
    """Entered-Room queries for rooms spanning the density spectrum.

    Mirrors §4.2.2's 22 Entered-Room queries on one real stream: one
    query per room (its doorway then the room), ordered by decreasing
    data density, sampled across the spectrum. Returns (room, query
    text) pairs. Without the RFID building there is a single room, so
    the list collapses to one query.
    """
    if not HAVE_RFID:
        text = ENTERED_ROOM_KLEENE if variable else ENTERED_ROOM_QUERY
        return [(TARGET_ROOM, text)]
    plan, _, space = world()
    from repro.rfid import HALLWAY

    reader = db.reader(stream_name)
    # Room densities w.r.t. the stream (marginal support).
    relevant_counts: Dict[str, int] = {}
    room_doorway: Dict[str, str] = {}
    rooms = [n for n in plan.names() if plan.kind_of(n) != HALLWAY]
    for room in rooms:
        halls = [n for n in plan.neighbors(room) if plan.kind_of(n) == HALLWAY]
        room_doorway[room] = halls[0]
        relevant_counts[room] = 0
    room_states = {
        room: space.states_with_value("location", room) for room in rooms
    }
    door_states = {
        room: space.states_with_value("location", room_doorway[room])
        for room in rooms
    }
    for _t, marginal in reader.scan_marginals():
        for room in rooms:
            if any(s in marginal for s in room_states[room]) or any(
                s in marginal for s in door_states[room]
            ):
                relevant_counts[room] += 1
    ranked = sorted(rooms, key=lambda r: -relevant_counts[r])
    nonzero = [r for r in ranked if relevant_counts[r] > 0]
    take = nonzero[: max(count, 1)]
    queries = []
    for room in take:
        door = room_doorway[room]
        if variable:
            text = f"location={door} -> (!location={room})* location={room}"
        else:
            text = f"location={door} -> location={room}"
        queries.append((room, text))
    return queries
