"""Figure 8(b): the variable-length cost curve — MC index vs naive scan.

The paper's headline experiment for Algorithm 4: a Kleene
(variable-length) Entered-Room query over a *sparse* synthetic stream,
answered by the naive scan and by the MC-index method at
alpha in {2, 4, 8}. Two views are measured:

1. **query level** — end-to-end logical page reads of the full query
   per (method, alpha): the MC method touches the relevant events plus
   O(log gap) span records per gap, the scan touches every timestep;
2. **span level** — the cost of covering a single ``[start,
   start+g)`` gap for an exponential ladder of gap lengths ``g``:
   pieces composed and logical page reads through the index vs the
   ``g`` sequential CPT reads of a scan — the log-vs-linear scaling
   picture.

The run writes ``results/fig8b.manifest.json`` whose registry holds
only deterministic counters (``cost.logical_reads``, ``mc.lookups``,
``mc.pieces``, ``cost.reg_updates``) — CI diffs it against the
committed baseline with ``repro.obs.report --fail-on-change``; wall
times are reported in the table but never gate.
"""

from __future__ import annotations

import pytest

from repro.indexes import MCLookupStats, open_mc
from repro.obs import MetricsRegistry
from repro.streams import Layout

from .harness import finish_run, measure, print_table, save_report, start_run
from .workloads import ENTERED_ROOM_KLEENE, synthetic_db

ALPHAS = (2, 4, 8)
#: Sparse workload: long irrelevant stretches between relevant events.
DENSITY = 0.05
#: Exponential gap ladder, capped below the default stream length.
GAPS = (4, 16, 64, 256, 1024, 2048)
#: Unaligned gap start: exercises both sides of the greedy descent.
GAP_START = 37


def _db(alpha, num_snippets=None):
    return synthetic_db(density=DENSITY, match_rate=1.0,
                        layouts=(Layout.SEPARATED,), mc_alpha=alpha,
                        num_snippets=num_snippets)


def _span_rows(db, alpha, registry):
    """The span-level ladder: one row per gap length."""
    reader = db.reader("syn_separated")
    mc = open_mc(db.env, "syn_separated", alpha=alpha,
                 length=reader.length)
    rows = []
    for gap in GAPS:
        end = GAP_START + gap
        if end > reader.length - 1:
            continue
        stats = MCLookupStats()
        db.env.stats.reset()
        mc.compute_cpt(GAP_START, end, reader, stats=stats)
        mc_reads = db.env.stats.logical_reads
        db.env.stats.reset()
        for t in range(GAP_START + 1, end + 1):
            reader.cpt_into(t)
        scan_reads = db.env.stats.logical_reads
        labels = {"alpha": alpha, "gap": gap}
        registry.counter("mc.lookups", **labels).inc(stats.lookups)
        registry.counter("mc.pieces", **labels).inc(stats.pieces)
        registry.counter("cost.logical_reads", kind="span",
                         **labels).inc(mc_reads)
        if alpha == ALPHAS[0]:
            # The scan baseline is alpha-independent: record it once.
            registry.counter("cost.logical_reads", kind="scan",
                             gap=gap).inc(scan_reads)
        rows.append({
            "alpha": alpha,
            "gap": gap,
            "pieces": stats.pieces,
            "mc_lookups": stats.lookups,
            "base_cpts": stats.base_cpts_read,
            "mc_logical_reads": mc_reads,
            "scan_logical_reads": scan_reads,
        })
    return rows


def generate(num_snippets=None):
    """The full Figure 8(b) series."""
    registry = MetricsRegistry()
    manifest, tracer = start_run(
        "fig8b",
        config={
            "alphas": list(ALPHAS),
            "density": DENSITY,
            "gaps": list(GAPS),
            "gap_start": GAP_START,
            "num_snippets": num_snippets,
            "query": ENTERED_ROOM_KLEENE,
        },
    )
    query_rows = []
    span_rows = []
    for alpha in ALPHAS:
        db = _db(alpha, num_snippets)
        try:
            for method in ("naive", "mc"):
                label = f"{method}/alpha={alpha}"
                with tracer.span(label, io=db.stats):
                    m = measure(db, "syn_separated", ENTERED_ROOM_KLEENE,
                                method, label)
                labels = {"method": method, "alpha": alpha}
                registry.counter("cost.logical_reads", kind="query",
                                 **labels).inc(m.logical_reads)
                registry.counter("cost.reg_updates",
                                 **labels).inc(m.extra["reg_updates"])
                if method == "mc":
                    registry.counter("mc.lookups", kind="query",
                                     alpha=alpha).inc(
                                         m.extra["mc_lookups"])
                query_rows.append({
                    "alpha": alpha,
                    "method": method,
                    "wall_ms": round(m.wall_ms, 2),
                    "logical_reads": m.logical_reads,
                    "physical_reads": m.physical_reads,
                    "reg_updates": m.extra["reg_updates"],
                    "mc_lookups": m.extra["mc_lookups"],
                })
            with tracer.span(f"spans/alpha={alpha}", io=db.stats):
                span_rows.extend(_span_rows(db, alpha, registry))
        finally:
            db.close()
    text = print_table(
        "Figure 8(b): variable-length query — MC index vs naive scan",
        query_rows,
        columns=["alpha", "method", "wall_ms", "logical_reads",
                 "physical_reads", "reg_updates", "mc_lookups"],
    )
    text += print_table(
        "Figure 8(b) inset: single-gap cost vs gap length",
        span_rows,
        columns=["alpha", "gap", "pieces", "mc_lookups", "base_cpts",
                 "mc_logical_reads", "scan_logical_reads"],
    )
    # "fig8b_variable" keeps clear of bench_fig8b_real_fixed's report
    # files; the run manifest (results/fig8b.manifest.json) is this
    # benchmark's alone.
    save_report("fig8b_variable", text,
                {"query_rows": query_rows, "span_rows": span_rows})
    finish_run(manifest, tracer, registry,
               extra={"query_rows": query_rows, "span_rows": span_rows})
    return query_rows, span_rows


@pytest.fixture(scope="module")
def sparse_db():
    db = _db(2)
    yield db
    db.close()


def test_fig8b_shape_mc_beats_naive_reads(sparse_db):
    """Reproduction criterion: on the sparse workload the MC method
    costs strictly fewer logical page reads than the naive scan."""
    db = sparse_db
    naive = measure(db, "syn_separated", ENTERED_ROOM_KLEENE, "naive",
                    "n", repeats=1)
    mc = measure(db, "syn_separated", ENTERED_ROOM_KLEENE, "mc", "m",
                 repeats=1)
    assert mc.logical_reads < naive.logical_reads
    assert mc.logical_reads * 2 < naive.logical_reads


def test_fig8b_shape_lookups_scale_logarithmically(sparse_db):
    """Quadrupling the gap adds a bounded number of pieces — the
    log-vs-linear separation of the inset."""
    db = sparse_db
    reader = db.reader("syn_separated")
    mc = open_mc(db.env, "syn_separated", alpha=2, length=reader.length)
    pieces = []
    for gap in GAPS:
        if GAP_START + gap > reader.length - 1:
            break
        stats = MCLookupStats()
        mc.compute_cpt(GAP_START, GAP_START + gap, reader, stats=stats)
        pieces.append(stats.pieces)
    assert len(pieces) >= 4
    for prev, nxt in zip(pieces, pieces[1:]):
        assert nxt <= prev + 4  # 2*(alpha-1) per doubling, x2 rungs
    assert pieces[-1] < GAPS[len(pieces) - 1] // 8


if __name__ == "__main__":
    generate()
