"""Storage-engine microbenchmarks: the costs every access method pays.

Four experiments over a bulk-loaded tree of ``N`` entries:

1. Point lookups — logical page reads per ``get`` must equal the tree
   height (one page per level), cold or warm.
2. Full range scan — a cold scan reads exactly one physical page per
   leaf (the leaf chain, no descent); a warm repeat is served entirely
   from the buffer pool (0 physical reads).
3. Build strategy — bottom-up bulk loading vs random-order incremental
   inserts: build time, leaf count, and the resulting fill factor.
4. Buffer-pool hit rate vs pool size under a skewed point-lookup
   workload — the knob Figure 10's cold/warm split turns on.

Besides the text/JSON report, the run emits a
``results/storage_micro.manifest.json`` run manifest (span tree with
per-span wall time + I/O deltas, counter snapshot, histogram
summaries) and streams span events to
``results/storage_micro.spans.jsonl`` — render or diff with
``python -m repro.obs.report``.

Run directly (``make bench-storage``) or via the figure runner.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time

from repro.obs import MetricsRegistry
from repro.storage import StorageEnvironment, encode_key

from .harness import finish_run, print_table, save_report, start_run

N_ENTRIES = 120_000
PAGE_SIZE = 4096
N_LOOKUPS = 2_000
N_HISTOGRAM_PROBES = 500
POOL_SIZES = [32, 128, 512, 2048]


def _items(n):
    return [
        (encode_key((i // 997, i)), f"marginal-{i:08d}".encode())
        for i in range(n)
    ]


def _fill_factor(tree, items):
    """Mean bytes of payload per leaf relative to the page size."""
    payload = sum(len(k) + len(v) for k, v in items)
    return payload / (tree.num_leaves * tree.pager.page_size)


def _bench_lookups_and_scans(workdir, items, tracer, registry):
    env = StorageEnvironment(f"{workdir}/lookup", page_size=PAGE_SIZE,
                             pool_pages=4 * len(items) // 100,
                             metrics=registry)
    tree = env.open_tree("t")
    with tracer.span("bulk_load", io=env.stats, entries=len(items)):
        tree.bulk_load(items)
    rng = random.Random(42)
    probes = [items[rng.randrange(len(items))] for _ in range(N_LOOKUPS)]

    rows = []
    for label, cold in (("cold", True), ("warm", False)):
        if cold:
            env.drop_caches()
        snap = env.stats.snapshot()
        with tracer.span(f"point_lookup_{label}", io=env.stats,
                         probes=len(probes)):
            start = time.perf_counter()
            for key, value in probes:
                assert tree.get(key) == value
            wall = time.perf_counter() - start
        delta = env.stats.delta(snap)
        rows.append({
            "op": f"point_lookup_{label}",
            "wall_ms": wall * 1000.0,
            "logical_reads_per_op": delta.logical_reads / len(probes),
            "physical_reads_per_op": delta.physical_reads / len(probes),
            "tree_height": tree.height,
        })

    # Per-op page-read distributions (outside the timed loops so the
    # per-probe snapshots never pollute the wall-clock rows).
    h_logical = registry.histogram("lookup.logical_reads_per_op")
    h_physical = registry.histogram("lookup.physical_reads_per_op")
    env.drop_caches()
    for key, _ in probes[:N_HISTOGRAM_PROBES]:
        snap = env.stats.snapshot()
        tree.get(key)
        delta = env.stats.delta(snap)
        h_logical.observe(delta.logical_reads)
        h_physical.observe(delta.physical_reads)

    scan = {"op": "full_scan", "tree_height": tree.height}
    env.drop_caches()
    snap = env.stats.snapshot()
    with tracer.span("full_scan_cold", io=env.stats):
        start = time.perf_counter()
        count = sum(1 for _ in tree.items())
        scan["wall_ms_cold"] = (time.perf_counter() - start) * 1000.0
    cold_io = env.stats.delta(snap)
    assert count == len(items)
    snap = env.stats.snapshot()
    with tracer.span("full_scan_warm", io=env.stats):
        start = time.perf_counter()
        sum(1 for _ in tree.items())
        scan["wall_ms_warm"] = (time.perf_counter() - start) * 1000.0
    warm_io = env.stats.delta(snap)
    scan.update({
        "leaf_pages": tree.num_leaves,
        "scan_cold_physical_reads": cold_io.physical_reads,
        "scan_warm_physical_reads": warm_io.physical_reads,
        "scan_logical_reads": cold_io.logical_reads,
    })
    env.close()
    return rows, scan


def _bench_build(workdir, items, tracer, registry):
    rows = []
    env = StorageEnvironment(f"{workdir}/build", page_size=PAGE_SIZE,
                             pool_pages=1024, metrics=registry)
    for fill in (1.0, 0.67):
        tree = env.open_tree(f"bulk_{int(fill * 100)}")
        with tracer.span("build_bulk", io=env.stats, fill=fill):
            start = time.perf_counter()
            tree.bulk_load(items, fill=fill)
            tree.flush()
        rows.append({
            "strategy": f"bulk_load(fill={fill})",
            "build_s": time.perf_counter() - start,
            "leaf_pages": tree.num_leaves,
            "height": tree.height,
            "fill_factor": _fill_factor(tree, items),
            "file_mb": env.file_size(tree.name) / 2**20,
        })

    tree = env.open_tree("incremental")
    shuffled = items[:]
    random.Random(7).shuffle(shuffled)
    with tracer.span("build_incremental", io=env.stats):
        start = time.perf_counter()
        for n, (key, value) in enumerate(shuffled, 1):
            tree.put(key, value)
            # Commit periodically: page writes accumulate in the WAL
            # until a flush checkpoints them, so an unbounded build
            # would grow the log without bound (and measure nothing a
            # real ingest would do — real loads commit in batches).
            if n % 10_000 == 0:
                tree.flush()
        tree.flush()
    rows.append({
        "strategy": "incremental(random order)",
        "build_s": time.perf_counter() - start,
        "leaf_pages": tree.num_leaves,
        "height": tree.height,
        "fill_factor": _fill_factor(tree, items),
        "file_mb": env.file_size(tree.name) / 2**20,
    })
    env.close()
    return rows


def _bench_pool_sizes(workdir, items, tracer, registry):
    rows = []
    rng = random.Random(1234)
    # Zipf-ish skew: most probes hit a small hot set.
    hot = items[: len(items) // 20]
    probes = [
        pool[rng.randrange(len(pool))]
        for pool in (hot if rng.random() < 0.8 else items
                     for _ in range(N_LOOKUPS))
    ]
    for pool_pages in POOL_SIZES:
        env = StorageEnvironment(f"{workdir}/pool_{pool_pages}",
                                 page_size=PAGE_SIZE, pool_pages=pool_pages,
                                 metrics=registry)
        tree = env.open_tree("t")
        tree.bulk_load(items)
        env.drop_caches()
        snap = env.stats.snapshot()
        with tracer.span("skewed_lookups", io=env.stats,
                         pool_pages=pool_pages):
            for key, _ in probes:
                tree.get(key)
        delta = env.stats.delta(snap)
        rows.append({
            "pool_pages": pool_pages,
            "pool_mb": pool_pages * PAGE_SIZE / 2**20,
            "hit_rate": delta.hit_rate,
            "physical_reads": delta.physical_reads,
            "logical_reads": delta.logical_reads,
        })
        env.close()
    return rows


def generate():
    registry = MetricsRegistry()
    manifest, tracer = start_run(
        "storage_micro",
        config={
            "n_entries": N_ENTRIES,
            "page_size": PAGE_SIZE,
            "n_lookups": N_LOOKUPS,
            "pool_sizes": POOL_SIZES,
        },
        registry=registry,
    )
    workdir = tempfile.mkdtemp(prefix="bench_storage_")
    try:
        items = _items(N_ENTRIES)
        with tracer.span("lookups_and_scans"):
            lookup_rows, scan_row = _bench_lookups_and_scans(
                workdir, items, tracer, registry)
        with tracer.span("build_strategies"):
            build_rows = _bench_build(workdir, items, tracer, registry)
        with tracer.span("pool_sizes"):
            pool_rows = _bench_pool_sizes(workdir, items, tracer, registry)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    text = print_table(
        f"Point lookups ({N_ENTRIES} entries, {N_LOOKUPS} probes)",
        lookup_rows,
        columns=["op", "wall_ms", "logical_reads_per_op",
                 "physical_reads_per_op", "tree_height"],
    )
    text += print_table(
        "Full scan: cold reads one page per leaf, warm reads none",
        [scan_row],
        columns=["op", "leaf_pages", "scan_cold_physical_reads",
                 "scan_warm_physical_reads", "wall_ms_cold", "wall_ms_warm"],
    )
    text += print_table(
        "Build strategy: bulk load vs incremental inserts",
        build_rows,
        columns=["strategy", "build_s", "leaf_pages", "height",
                 "fill_factor", "file_mb"],
    )
    text += print_table(
        "Buffer-pool hit rate vs pool size (skewed point lookups)",
        pool_rows,
        columns=["pool_pages", "pool_mb", "hit_rate", "physical_reads",
                 "logical_reads"],
    )
    data = {
        "n_entries": N_ENTRIES,
        "page_size": PAGE_SIZE,
        "point_lookups": lookup_rows,
        "full_scan": scan_row,
        "build": build_rows,
        "pool_sizes": pool_rows,
    }
    save_report("storage_micro", text, data)
    path = finish_run(manifest, tracer, registry=registry)
    print(f"run manifest: {path}")
    return data


if __name__ == "__main__":
    generate()
