"""pytest configuration for the benchmark suite.

The ``bench_*`` modules double as plain tests: their ``*_shape_*``
functions assert the paper's qualitative claims (who wins, where the
crossovers are) and run under ordinary ``pytest benchmarks/``; the
benchmark-fixture functions time representative configurations under
``pytest benchmarks/ --benchmark-only``.
"""
