"""Benchmark harness reproducing every table and figure of the paper.

Each ``bench_fig*`` module regenerates one figure/table: it builds (and
caches) the workload, runs the relevant access methods, and reports the
same series/rows the paper reports. Two entry points:

- ``pytest benchmarks/ --benchmark-only`` — pytest-benchmark timings for
  every figure's representative configurations;
- ``python -m benchmarks.run_all`` — regenerate every figure's full
  data series into ``benchmarks/results/*.txt`` (used to fill
  EXPERIMENTS.md).

Scale: the default stream sizes are scaled down from the paper's 30,000
timesteps to keep a full run in minutes of pure Python; set
``REPRO_BENCH_FULL=1`` for paper-scale streams.
"""
