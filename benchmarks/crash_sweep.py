"""The crash-point sweep as a reportable benchmark (``make crash-sweep``).

Runs the same deterministic single-fault methodology as
``tests/storage/test_crash_sweep.py`` at a larger scale: a mixed
workload (bulk load, upserts, deletes, overflow values, multiple
trees) is probed once to learn its failpoint space, then every
``(site, hit, action)`` schedule runs to its fault, loses its unsynced
bytes, and must recover to a committed state with a clean fsck.

Emits ``results/crash_sweep.{txt,json}`` plus a run manifest +
span stream (``results/crash_sweep.manifest.json`` /
``.spans.jsonl``) whose counters record schedules run, faults by
action, recoveries replayed, and fsck pages checked. Bounded: the
whole sweep is a few hundred small in-process runs, ~10-30s.
"""

from __future__ import annotations

import shutil
import tempfile
import time

from repro.errors import StorageError
from repro.obs import MetricsRegistry
from repro.storage import StorageEnvironment
from repro.storage.faults import (
    FaultInjector,
    SimulatedCrash,
    enumerate_schedules,
)

from .harness import finish_run, print_table, save_report, start_run

PAGE_SIZE = 256
POOL_PAGES = 12
SWEEP_SEEDS = (0, 1, 2)
MAX_HITS_PER_SITE = 8
N_KEYS = 160


def workload(env, mark):
    state = {"t": {}, "u": {}}
    t = env.open_tree("t")
    u = env.open_tree("u")
    mark({"t": dict(state["t"]), "u": dict(state["u"])})

    items = [(f"k{i:05d}".encode(), bytes([i % 251]) * (10 + i % 90))
             for i in range(N_KEYS)]
    t.bulk_load(items)
    state["t"].update(items)
    mark({"t": dict(state["t"]), "u": dict(state["u"])})

    for i in range(0, N_KEYS, 4):
        key = f"k{i:05d}".encode()
        t.put(key, b"rev2" * 8)
        state["t"][key] = b"rev2" * 8
    for i in range(2, N_KEYS, 16):
        key = f"k{i:05d}".encode()
        t.delete(key)
        del state["t"][key]
    for i in range(6):
        key = f"blob{i}".encode()
        value = bytes([97 + i]) * (PAGE_SIZE * 2 + 31 * i)
        u.put(key, value)
        state["u"][key] = value
    env.flush()
    mark({"t": dict(state["t"]), "u": dict(state["u"])})

    u.delete(b"blob3")
    del state["u"][b"blob3"]
    for i in range(N_KEYS, N_KEYS + 30):
        key = f"k{i:05d}".encode()
        t.put(key, b"late")
        state["t"][key] = b"late"
    env.flush()
    mark({"t": dict(state["t"]), "u": dict(state["u"])})


def run_once(dirname, injector):
    marks = []
    env = StorageEnvironment(dirname, page_size=PAGE_SIZE,
                             pool_pages=POOL_PAGES, metrics=False,
                             faults=injector)
    try:
        workload(env, marks.append)
        env.close()
        if env.close_errors:
            raise OSError(env.close_errors[0])
        return marks, True
    except (OSError, SimulatedCrash):
        return marks, False


def recover_and_verify(dirname, registry):
    """Reopen cleanly; returns (state-dict or None, fsck_clean)."""
    env = StorageEnvironment(dirname, page_size=PAGE_SIZE,
                             pool_pages=POOL_PAGES, metrics=registry)
    try:
        state = {}
        for name in ("t", "u"):
            try:
                state[name] = dict(env.open_tree(name, create=False).items())
            except StorageError:
                state[name] = None
        report = env.fsck()
        if state["t"] is None and state["u"] is None:
            state = None
        return state, report.clean
    finally:
        env.close()


def tree_acceptable(marks, completed, finished, name, value):
    """Each tree commits through its own WAL, so ``env.flush()`` is not
    atomic across trees: a fault between the two commits may leave one
    tree a mark ahead of the other. Zero committed-key loss is
    therefore judged per tree — its recovered contents must equal that
    tree's slice of a mark no earlier than the last completed one."""
    if finished:
        window = marks[-1:]
    else:
        window = marks[max(0, completed - 1):completed + 1]
    return any(value == m[name] for m in window)


def normalize(state):
    """Recovered envs show a missing tree as None; marks use {}."""
    if state is None:
        return None
    return {k: (v if v is not None else {}) for k, v in state.items()}


def generate():
    registry = MetricsRegistry()
    manifest, tracer = start_run(
        "crash_sweep",
        config={
            "page_size": PAGE_SIZE,
            "pool_pages": POOL_PAGES,
            "seeds": list(SWEEP_SEEDS),
            "max_hits_per_site": MAX_HITS_PER_SITE,
            "n_keys": N_KEYS,
        },
        registry=registry,
    )
    c_runs = registry.counter("sweep.schedules_run")
    c_recovered = registry.counter("sweep.recovered_clean")
    c_failures = registry.counter("sweep.failures")

    workdir = tempfile.mkdtemp(prefix="crash_sweep_")
    start = time.perf_counter()
    failures = []
    by_action = {}
    by_site = {}
    try:
        probe = FaultInjector()
        with tracer.span("baseline"):
            marks, finished = run_once(f"{workdir}/baseline", probe)
            assert finished and len(marks) == 4
            state, clean = recover_and_verify(f"{workdir}/baseline",
                                              registry)
            assert clean and normalize(state) == marks[-1]

        schedules = enumerate_schedules(probe.hits,
                                        max_hits_per_site=MAX_HITS_PER_SITE)
        with tracer.span("sweep", schedules=len(schedules),
                         seeds=len(SWEEP_SEEDS)):
            for seed in SWEEP_SEEDS:
                for n, rule in enumerate(schedules):
                    dirname = f"{workdir}/s{seed}_{n}"
                    injector = FaultInjector([rule], seed=seed)
                    run_marks, finished = run_once(dirname, injector)
                    injector.crash()
                    c_runs.inc()
                    by_action[rule.action] = by_action.get(rule.action,
                                                           0) + 1
                    site = rule.site
                    by_site[site] = by_site.get(site, 0) + 1
                    state, clean = recover_and_verify(dirname, registry)
                    ok = True
                    if not clean:
                        ok = False
                        failures.append((seed, rule.label(), "fsck dirty"))
                    completed = len(run_marks)
                    state = normalize(state)
                    if state is None:
                        if completed > 0:
                            ok = False
                            failures.append((seed, rule.label(),
                                             "committed trees vanished"))
                    else:
                        for name in ("t", "u"):
                            if not tree_acceptable(marks, completed,
                                                   finished, name,
                                                   state[name]):
                                ok = False
                                failures.append(
                                    (seed, rule.label(),
                                     f"tree {name!r} matches no "
                                     f"committed mark"))
                    if ok:
                        c_recovered.inc()
                    shutil.rmtree(dirname, ignore_errors=True)
        c_failures.inc(len(failures))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    wall = time.perf_counter() - start

    total = len(schedules) * len(SWEEP_SEEDS)
    summary = [{
        "schedules": total,
        "seeds": len(SWEEP_SEEDS),
        "failures": len(failures),
        "wall_s": wall,
    }]
    site_rows = [
        {"site": site, "schedules": count,
         "of_which_failed": sum(1 for _, label, _r in failures
                                if label.startswith(site + "#"))}
        for site, count in sorted(by_site.items())
    ]
    text = print_table("Crash-point sweep", summary,
                       columns=["schedules", "seeds", "failures", "wall_s"])
    text += print_table("Schedules by failpoint site", site_rows,
                        columns=["site", "schedules", "of_which_failed"])
    if failures:
        text += "FAILURES:\n" + "\n".join(
            f"  seed={s} {label}: {reason}"
            for s, label, reason in failures[:20]) + "\n"
        print(text.splitlines()[-1])
    data = {
        "schedules": total,
        "failures": [
            {"seed": s, "rule": label, "reason": reason}
            for s, label, reason in failures
        ],
        "by_action": by_action,
        "by_site": by_site,
        "wall_s": wall,
    }
    save_report("crash_sweep", text, data)
    path = finish_run(manifest, tracer, registry=registry,
                      extra={"failures": len(failures)})
    print(f"run manifest: {path}")
    if failures:
        raise SystemExit(1)
    return data


if __name__ == "__main__":
    generate()
