"""Figure 9(a): variable-length access methods vs data density (synthetic).

The Entered-Room query with a Kleene closure, processed by the naive
scan, the MC-index method (alpha=2), and the approximate semi-independent
method, over the density sweep of Figure 8(a) (directly comparable).

Expected shape: both indexed methods scale inversely with density and
beat the scan by an order of magnitude or more at low density; the
semi-independent method is consistently faster than the MC method.
"""

from __future__ import annotations

import pytest

from repro.streams import Layout

from .harness import measure, print_table, save_report
from .workloads import ENTERED_ROOM_KLEENE, synthetic_db

DENSITIES = [0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0]
METHODS = ("naive", "mc", "semi")


def _db(density):
    return synthetic_db(density=density, match_rate=1.0,
                        layouts=(Layout.SEPARATED,), mc_alpha=2)


def generate():
    rows = []
    for density in DENSITIES:
        db = _db(density)
        try:
            measured = db.data_density("syn_separated", ENTERED_ROOM_KLEENE)
            for method in METHODS:
                m = measure(db, "syn_separated", ENTERED_ROOM_KLEENE, method,
                            method)
                rows.append({
                    "target_density": density,
                    "measured_density": round(measured, 4),
                    "method": method,
                    "wall_ms": round(m.wall_ms, 2),
                    "physical_reads": m.physical_reads,
                    "reg_updates": m.extra["reg_updates"],
                })
        finally:
            db.close()
    text = print_table(
        "Figure 9(a): variable-length methods vs density (synthetic)",
        rows,
        columns=["target_density", "measured_density", "method", "wall_ms",
                 "physical_reads", "reg_updates"],
    )
    save_report("fig9a", text, {"rows": rows})
    return rows


@pytest.fixture(scope="module")
def low_density_db():
    db = _db(0.05)
    yield db
    db.close()


@pytest.mark.parametrize("method", METHODS)
def test_fig9a_low_density(benchmark, low_density_db, method):
    db = low_density_db
    benchmark.pedantic(
        lambda: db.query("syn_separated", ENTERED_ROOM_KLEENE, method=method,
                         cold=True),
        rounds=3, iterations=1,
    )


def test_fig9a_shape_indexed_methods_beat_scan(low_density_db):
    db = low_density_db
    naive = measure(db, "syn_separated", ENTERED_ROOM_KLEENE, "naive", "n",
                    repeats=1)
    mc = measure(db, "syn_separated", ENTERED_ROOM_KLEENE, "mc", "m",
                 repeats=1)
    semi = measure(db, "syn_separated", ENTERED_ROOM_KLEENE, "semi", "s",
                   repeats=1)
    assert mc.wall_ms < naive.wall_ms
    assert semi.wall_ms <= mc.wall_ms * 1.2  # semi never meaningfully slower


def test_fig9a_semi_reads_less_than_mc(low_density_db):
    db = low_density_db
    mc = db.query("syn_separated", ENTERED_ROOM_KLEENE, method="mc",
                  cold=True)
    semi = db.query("syn_separated", ENTERED_ROOM_KLEENE, method="semi",
                    cold=True)
    assert semi.stats.io.logical_reads <= mc.stats.io.logical_reads


if __name__ == "__main__":
    generate()
