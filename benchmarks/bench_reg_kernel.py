"""Reg kernel microbenchmark: vectorized vs reference implementation.

The vectorized Reg (:class:`repro.lahar.reg.Reg`) carries the joint
(NFA-set x stream-state) mass as a dense NumPy matrix in full-space
coordinates and consumes a timestep as one matmul plus one ``bincount``
scatter; the reference (:class:`repro.lahar.reg.ReferenceReg`) walks
dict-of-dicts in Python, paying O(nnz) dict arithmetic per live DFA
set. The gap therefore widens with query complexity: a single-link
query keeps 2-3 sets live and the kernel roughly breaks even, while a
multi-link query with negated Kleene loops keeps many sets live and
the kernel wins well past the 3x acceptance bar.

Writes ``results/reg_kernel.manifest.json``; wall times live in spans
(machine-dependent), while the registry records the deterministic
update counts.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.lahar import ReferenceReg, Reg
from repro.obs import MetricsRegistry
from repro.probability import CPT, SparseDistribution
from repro.query import parse_query
from repro.streams import ENTERED_ROOM_QUERY, MarkovianStream
from repro.streams.synthetic import synthetic_space

from .harness import finish_run, print_table, save_report, start_run
from .workloads import FULL_SCALE

#: A wide state space (40 background cells + door + room) with dense
#: CPT rows, so every timestep's support covers most of the space —
#: the regime where the matrix kernel matters. (The RFID snippet
#: streams have narrow supports where dicts are fine; wide supports
#: arise from long smoothing windows and noisy deployments.)
NUM_CELLS = 40
LENGTH = 2000 if FULL_SCALE else 600
REPEATS = 3

#: The headline query: a three-hop patrol with negated Kleene loops
#: between the hops. Each negated loop keeps extra DFA sets alive, so
#: the reference's per-set dict passes multiply while the kernel's
#: matmul cost stays flat.
PATROL_QUERY = (
    "location=C0 -> (!location=C5)* location=C1 -> "
    "(!location=C6)* location=C2 -> location=Room"
)


def _stream():
    space = synthetic_space(NUM_CELLS)
    rng = random.Random(13)
    n = len(space)

    def dense_row():
        weights = [rng.random() for _ in range(n)]
        total = sum(weights)
        return SparseDistribution(
            {s: w / total for s, w in enumerate(weights)}
        )

    marginals = [SparseDistribution.uniform(range(n))]
    cpts = []
    for _ in range(LENGTH - 1):
        cpt = CPT({s: dense_row() for s in marginals[-1].support()})
        cpts.append(cpt)
        marginals.append(cpt.apply(marginals[-1]))
    return MarkovianStream("wide", space, marginals, cpts, validate=False)


def _run(reg, stream):
    probs = [reg.initialize(stream.marginal(0))]
    for t in range(1, len(stream)):
        probs.append(reg.update(stream.cpt_into(t)))
    return probs


def _time(make_reg, stream):
    best = float("inf")
    probs = None
    for _ in range(REPEATS):
        reg = make_reg()
        t0 = time.perf_counter()
        probs = _run(reg, stream)
        best = min(best, time.perf_counter() - t0)
    return best * 1000.0, probs


def generate():
    registry = MetricsRegistry()
    manifest, tracer = start_run(
        "reg_kernel",
        config={"num_cells": NUM_CELLS, "length": LENGTH},
    )
    stream = _stream()
    space = stream.space
    rows = []
    max_diff = 0.0
    for name, text in (("entered-room", ENTERED_ROOM_QUERY),
                       ("patrol", PATROL_QUERY)):
        query = parse_query(text)
        with tracer.span(f"reference/{name}"):
            ref_ms, ref_probs = _time(
                lambda: ReferenceReg(query, space), stream)
        with tracer.span(f"vectorized/{name}"):
            vec_ms, vec_probs = _time(lambda: Reg(query, space), stream)
        diff = max(abs(a - b) for a, b in zip(ref_probs, vec_probs))
        max_diff = max(max_diff, diff)
        rows.append({"query": name, "impl": "reference",
                     "wall_ms": round(ref_ms, 2), "speedup": 1.0})
        rows.append({
            "query": name, "impl": "vectorized",
            "wall_ms": round(vec_ms, 2),
            "speedup": round(ref_ms / vec_ms, 2) if vec_ms
            else float("inf"),
        })
    registry.counter("reg.timesteps").inc(len(stream))
    registry.counter("reg.states").inc(len(space))
    text = print_table(
        f"Reg kernel: {len(stream)} timesteps x {len(space)} states "
        f"(max |diff| {max_diff:.2e})",
        rows, columns=["query", "impl", "wall_ms", "speedup"],
    )
    save_report("reg_kernel", text,
                {"rows": rows, "max_abs_diff": max_diff})
    finish_run(manifest, tracer, registry,
               extra={"rows": rows, "max_abs_diff": max_diff})
    return rows


@pytest.fixture(scope="module")
def stream():
    return _stream()


def test_reg_kernel_matches_reference(stream):
    """Both implementations emit identical probabilities."""
    query = parse_query(ENTERED_ROOM_QUERY)
    ref = ReferenceReg(query, stream.space)
    vec = Reg(query, stream.space)
    ref_probs = _run(ref, stream)
    vec_probs = _run(vec, stream)
    assert max(abs(a - b) for a, b in zip(ref_probs, vec_probs)) < 1e-9


def test_reg_kernel_shape_vectorized_3x(stream):
    """Acceptance bar: the NumPy kernel beats the reference >= 3x at
    smoke scale on the multi-link patrol query, with identical
    probabilities."""
    query = parse_query(PATROL_QUERY)
    ref_ms, ref_probs = _time(lambda: ReferenceReg(query, stream.space),
                              stream)
    vec_ms, vec_probs = _time(lambda: Reg(query, stream.space), stream)
    assert max(abs(a - b) for a, b in zip(ref_probs, vec_probs)) < 1e-9
    assert vec_ms * 3 <= ref_ms, f"{ref_ms:.1f}ms ref vs {vec_ms:.1f}ms vec"


if __name__ == "__main__":
    generate()
