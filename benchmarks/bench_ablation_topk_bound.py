"""Ablation: top-k pruning strength (Alg 3, line 9).

The paper prunes a candidate interval only when some link's marginal at
its aligned position is *zero*. A sound, strictly stronger test prunes
when the *minimum* link marginal cannot beat the current k-th best
match (an event is never more likely than any component). This ablation
measures how many Reg evaluations the stronger bound saves.
"""

from __future__ import annotations

import pytest

from repro.access import FixedTopK
from repro.streams import Layout

from .harness import print_table, save_report
from .workloads import ENTERED_ROOM_QUERY, synthetic_db

DENSITIES = [0.1, 0.5, 1.0]


def _run(db, enhanced, k=1):
    ctx = db.context("syn_separated", ENTERED_ROOM_QUERY)
    db.drop_caches()
    return FixedTopK(k=k, enhanced_pruning=enhanced).run(ctx)


def generate():
    rows = []
    for density in DENSITIES:
        db = synthetic_db(density=density, match_rate=1.0,
                          layouts=(Layout.SEPARATED,))
        try:
            paper = _run(db, False)
            enhanced = _run(db, True)
            rows.append({
                "density": density,
                "paper_ms": round(paper.stats.wall_time * 1000, 2),
                "enhanced_ms": round(enhanced.stats.wall_time * 1000, 2),
                "paper_intervals": paper.stats.intervals_processed,
                "enhanced_intervals": enhanced.stats.intervals_processed,
                "paper_pruned": paper.stats.candidates_pruned,
                "enhanced_pruned": enhanced.stats.candidates_pruned,
            })
        finally:
            db.close()
    text = print_table(
        "Ablation: top-k pruning bound (zero-check vs min-marginal)", rows,
        columns=["density", "paper_ms", "enhanced_ms", "paper_intervals",
                 "enhanced_intervals", "paper_pruned", "enhanced_pruned"],
    )
    save_report("ablation_topk_bound", text, {"rows": rows})
    return rows


@pytest.fixture(scope="module")
def dense_db():
    db = synthetic_db(density=1.0, match_rate=1.0,
                      layouts=(Layout.SEPARATED,))
    yield db
    db.close()


@pytest.mark.parametrize("enhanced", [False, True])
def test_ablation_topk_bound(benchmark, dense_db, enhanced):
    benchmark.pedantic(lambda: _run(dense_db, enhanced), rounds=3,
                       iterations=1)


def test_ablation_topk_bound_shape(dense_db):
    """The stronger bound never evaluates more intervals and returns the
    same top-k probabilities."""
    paper = _run(dense_db, False, k=3)
    enhanced = _run(dense_db, True, k=3)
    assert enhanced.stats.intervals_processed <= paper.stats.intervals_processed
    a = sorted(p for _, p in paper.signal)
    b = sorted(p for _, p in enhanced.signal)
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert abs(x - y) < 1e-9


if __name__ == "__main__":
    generate()
