"""Figure 9(b): variable-length access methods on "real" (routine) data.

The same 22 room queries as Figure 8(b), with Kleene closures added
(directly comparable: the naive scan costs the same in both figures).
Expected shape: MC index beats the scan by more than an order of
magnitude at low density; semi-independent is faster still.
"""

from __future__ import annotations

import pytest

from .harness import measure, print_table, save_report
from .workloads import room_queries_for, routines_db

STREAM = "person0"
NUM_QUERIES = 22
METHODS = ("naive", "mc", "semi")


def generate():
    db = routines_db()
    try:
        queries = room_queries_for(db, STREAM, count=NUM_QUERIES,
                                   variable=True)
        rows = []
        for room, text in queries:
            density = db.data_density(STREAM, text)
            for method in METHODS:
                m = measure(db, STREAM, text, method, f"{method}/{room}",
                            repeats=1)
                rows.append({
                    "room": room,
                    "density": round(density, 4),
                    "method": method,
                    "wall_ms": round(m.wall_ms, 2),
                    "physical_reads": m.physical_reads,
                })
        rows.sort(key=lambda r: (-r["density"], r["room"], r["method"]))
        text_out = print_table(
            f"Figure 9(b): {len(queries)} Kleene room queries on a routine "
            "stream",
            rows,
            columns=["room", "density", "method", "wall_ms", "physical_reads"],
        )
        save_report("fig9b", text_out, {"rows": rows})
        return rows
    finally:
        db.close()


@pytest.fixture(scope="module")
def db():
    database = routines_db()
    yield database
    database.close()


@pytest.fixture(scope="module")
def low_density_query(db):
    queries = room_queries_for(db, STREAM, count=NUM_QUERIES, variable=True)
    return queries[-1]


@pytest.mark.parametrize("method", METHODS)
def test_fig9b_low_density_query(benchmark, db, low_density_query, method):
    _, text = low_density_query
    benchmark.pedantic(
        lambda: db.query(STREAM, text, method=method, cold=True),
        rounds=3, iterations=1,
    )


def test_fig9b_shape_mc_beats_scan(db, low_density_query):
    _, text = low_density_query
    naive = measure(db, STREAM, text, "naive", "n", repeats=1)
    mc = measure(db, STREAM, text, "mc", "m", repeats=1)
    assert mc.wall_ms < naive.wall_ms


def test_fig9b_mc_matches_naive_signal(db, low_density_query):
    """Correctness on real data: the MC method's emitted probabilities
    equal the naive scan's at every emitted timestep."""
    _, text = low_density_query
    naive = db.query(STREAM, text, method="naive").as_dict()
    mc = db.query(STREAM, text, method="mc").as_dict()
    for t, p in mc.items():
        assert abs(p - naive[t]) < 1e-6


if __name__ == "__main__":
    generate()
