"""Ablation: MC index alpha vs query latency (§4.4's tradeoff, measured
end-to-end on queries rather than isolated lookups).

Builds the same stream with alpha in {2, 4, 8} and runs the Kleene
Entered-Room query through the MC method. Lower alpha stores more
precomputed CPTs (more disk) and needs fewer compositions per gap.
"""

from __future__ import annotations

import pytest

from repro.streams import Layout

from .harness import measure, print_table, save_report
from .workloads import ENTERED_ROOM_KLEENE, synthetic_db

ALPHAS = [2, 4, 8]
DENSITY = 0.05


def _db(alpha):
    return synthetic_db(density=DENSITY, match_rate=1.0,
                        layouts=(Layout.SEPARATED,), mc_alpha=alpha)


def generate():
    rows = []
    for alpha in ALPHAS:
        db = _db(alpha)
        try:
            m = measure(db, "syn_separated", ENTERED_ROOM_KLEENE, "mc",
                        f"alpha={alpha}")
            result = db.query("syn_separated", ENTERED_ROOM_KLEENE,
                              method="mc", cold=True)
            mc_size = sum(
                size for name, size in db.storage_report().items()
                if "__mc" in name
            )
            rows.append({
                "alpha": alpha,
                "wall_ms": round(m.wall_ms, 2),
                "index_entries_fetched":
                    result.stats.mc_lookups.index_entries,
                "raw_cpts_fetched": result.stats.mc_lookups.raw_cpts,
                "compositions": result.stats.mc_lookups.compositions,
                "index_mb": round(mc_size / 2**20, 3),
            })
        finally:
            db.close()
    text = print_table(
        "Ablation: MC index alpha vs query latency and storage", rows,
        columns=["alpha", "wall_ms", "index_entries_fetched",
                 "raw_cpts_fetched", "compositions", "index_mb"],
    )
    save_report("ablation_mc_alpha", text, {"rows": rows})
    return rows


@pytest.mark.parametrize("alpha", ALPHAS)
def test_ablation_mc_alpha(benchmark, alpha):
    db = _db(alpha)
    try:
        benchmark.pedantic(
            lambda: db.query("syn_separated", ENTERED_ROOM_KLEENE,
                             method="mc", cold=True),
            rounds=3, iterations=1,
        )
    finally:
        db.close()


def test_ablation_mc_alpha_shape():
    """Higher alpha fetches more raw fringe CPTs per gap and stores a
    smaller index."""
    results = {}
    sizes = {}
    for alpha in (2, 8):
        db = _db(alpha)
        try:
            result = db.query("syn_separated", ENTERED_ROOM_KLEENE,
                              method="mc", cold=True)
            results[alpha] = result.stats.mc_lookups
            sizes[alpha] = sum(
                size for name, size in db.storage_report().items()
                if "__mc" in name
            )
        finally:
            db.close()
    assert sizes[8] <= sizes[2]
    pieces2 = results[2].index_entries + results[2].raw_cpts
    pieces8 = results[8].index_entries + results[8].raw_cpts
    assert pieces2 <= pieces8


if __name__ == "__main__":
    generate()
