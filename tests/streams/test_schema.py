"""StateSpace / Vocabulary unit tests."""

import pytest

from repro.errors import StreamError
from repro.streams import StateSpace, single_attribute_space
from repro.streams.schema import Vocabulary


def test_vocabulary_codes_follow_sorted_order():
    vocab = Vocabulary(["Room", "Door", "C1", "C0"])
    assert vocab.values() == ["C0", "C1", "Door", "Room"]
    assert vocab.code("C0") == 0
    assert vocab.code("Room") == 3
    assert "Door" in vocab and "Hall" not in vocab
    with pytest.raises(StreamError):
        vocab.code("Hall")


def test_single_attribute_space_ids_follow_given_order():
    space = single_attribute_space("location", ["A", "B", "C"])
    assert len(space) == 3
    assert space.state_id("B") == 1
    assert space.state_id(("C",)) == 2
    assert space.attribute_value(0, "location") == "A"


def test_states_with_value_and_vocabulary():
    space = StateSpace(
        ("location", "activity"),
        [("Hall", "walk"), ("Hall", "stand"), ("Room", "stand")],
    )
    assert space.states_with_value("location", "Hall") == frozenset({0, 1})
    assert space.states_with_value("activity", "stand") == frozenset({1, 2})
    assert space.states_with_value("location", "Lab") == frozenset()
    assert space.vocabulary("activity").values() == ["stand", "walk"]


def test_space_rejects_bad_shapes():
    with pytest.raises(StreamError):
        StateSpace((), [("x",)])
    with pytest.raises(StreamError):
        StateSpace(("a",), [])
    with pytest.raises(StreamError):
        StateSpace(("a",), [("x",), ("x",)])  # duplicate
    with pytest.raises(StreamError):
        StateSpace(("a", "b"), [("x",)])  # arity mismatch
    space = single_attribute_space("a", ["x"])
    with pytest.raises(StreamError):
        space.state_id("missing")
    with pytest.raises(StreamError):
        space.attribute_value(0, "nope")
    with pytest.raises(StreamError):
        space.state_values(5)


def test_space_dict_round_trip_preserves_identity():
    space = StateSpace(
        ("location", "activity"),
        [("Hall", "walk"), ("Room", "stand")],
    )
    clone = StateSpace.from_dict(space.to_dict())
    assert clone == space
    assert hash(clone) == hash(space)
    assert clone.state_id(("Room", "stand")) == 1
