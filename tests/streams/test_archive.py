"""Archive round-trip tests: every layout must reproduce the stream
bit-exactly through its :class:`StreamReader`."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CatalogError, StreamError
from repro.probability import CPT, SparseDistribution
from repro.storage import StorageEnvironment
from repro.streams import (
    DEFAULT_PACK,
    Layout,
    MarkovianStream,
    open_reader,
    single_attribute_space,
    write_stream,
)

LAYOUTS = [Layout.SEPARATED, Layout.CELL, Layout.PACKED]


def random_stream(seed: int, length: int, num_states: int,
                  name: str = "s") -> MarkovianStream:
    """A consistent stream built forward from seeded random rows."""
    rng = random.Random(seed)
    space = single_attribute_space(
        "location", [f"S{i}" for i in range(num_states)])

    def row():
        targets = rng.sample(range(num_states),
                             rng.randint(1, num_states))
        weights = [rng.random() + 1e-3 for _ in targets]
        total = sum(weights)
        return SparseDistribution(
            {s: w / total for s, w in zip(targets, weights)})

    marginals = [row()]
    cpts = []
    for _ in range(length - 1):
        cpt = CPT({x: row() for x in marginals[-1].support()})
        cpts.append(cpt)
        marginals.append(cpt.apply(marginals[-1]))
    return MarkovianStream(name, space, marginals, cpts)


def assert_streams_equal(a: MarkovianStream, b: MarkovianStream):
    assert len(a) == len(b)
    for t in range(len(a)):
        assert a.marginal(t) == b.marginal(t), f"marginal mismatch at {t}"
    for t in range(1, len(a)):
        got, want = a.cpt_into(t), b.cpt_into(t)
        assert dict(got.rows()) == dict(want.rows()), f"CPT mismatch at {t}"


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    length=st.integers(1, 20),
    num_states=st.integers(2, 6),
    layout=st.sampled_from(LAYOUTS),
    pack=st.integers(1, 5),
)
def test_round_trip_any_layout(tmp_path_factory, seed, length, num_states,
                               layout, pack):
    stream = random_stream(seed, length, num_states)
    path = tmp_path_factory.mktemp("arch")
    with StorageEnvironment(str(path)) as env:
        reader = write_stream(env, stream, layout=layout, pack=pack)
        assert reader.length == length
        assert_streams_equal(reader.materialize(), stream)


@pytest.mark.parametrize("layout", LAYOUTS)
def test_reopen_from_metadata_alone(tmp_path, layout):
    """open_reader recovers length/layout/pack from the archive's
    reserved metadata record when the catalog supplies nothing."""
    stream = random_stream(42, 11, 4)
    with StorageEnvironment(str(tmp_path)) as env:
        write_stream(env, stream, layout=layout, pack=3)
        reader = open_reader(env, "s", stream.space)
        assert reader.layout is layout
        assert reader.length == 11
        if layout is Layout.PACKED:
            assert reader.pack == 3
        assert_streams_equal(reader.materialize(), stream)


def test_open_reader_unknown_stream(tmp_path):
    with StorageEnvironment(str(tmp_path)) as env:
        with pytest.raises(CatalogError):
            open_reader(env, "ghost",
                        single_attribute_space("location", ["A"]))


def test_point_access_and_scans_agree(tmp_path):
    stream = random_stream(7, 13, 5)
    with StorageEnvironment(str(tmp_path)) as env:
        for layout in LAYOUTS:
            stream.name = f"s_{layout.value}"
            reader = write_stream(env, stream, layout=layout)
            assert [m for _, m in reader.scan_marginals()] == \
                stream.marginals
            assert [t for t, _ in reader.scan_cpts()] == \
                list(range(1, 13))
            assert reader.marginal(6) == stream.marginal(6)
            with pytest.raises(StreamError):
                reader.marginal(13)
            with pytest.raises(StreamError):
                reader.cpt_into(0)


def test_scan_window_clamps(tmp_path):
    stream = random_stream(9, 10, 3)
    with StorageEnvironment(str(tmp_path)) as env:
        reader = write_stream(env, stream, layout=Layout.PACKED, pack=4)
        window = list(reader.scan_marginals(3, 7))
        assert [t for t, _ in window] == [3, 4, 5, 6]
        assert list(reader.scan_cpts(0, 100))[0][0] == 1


def test_layout_parse_aliases():
    assert Layout.parse("co_clustered") is Layout.CELL
    assert Layout.parse("CELL") is Layout.CELL
    assert Layout.parse(Layout.PACKED) is Layout.PACKED
    assert Layout.CO_CLUSTERED is Layout.CELL
    with pytest.raises(StreamError):
        Layout.parse("btree")


def test_pack_must_be_positive(tmp_path):
    stream = random_stream(1, 4, 3)
    with StorageEnvironment(str(tmp_path)) as env:
        with pytest.raises(StreamError):
            write_stream(env, stream, layout=Layout.PACKED, pack=0)


def test_default_pack_is_sane():
    assert DEFAULT_PACK >= 2
