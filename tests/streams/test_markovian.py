"""MarkovianStream model tests: the consistency invariant and the
interval probability semantics (§2)."""

import itertools

import pytest

from repro.errors import StreamError
from repro.probability import CPT, SparseDistribution
from repro.streams import MarkovianStream, single_attribute_space

SPACE = single_attribute_space("location", ["A", "B", "C"])


def tiny_stream() -> MarkovianStream:
    """Three timesteps over three states, consistent by construction."""
    m0 = SparseDistribution({0: 0.5, 1: 0.5})
    c1 = CPT({0: {0: 0.8, 2: 0.2}, 1: {1: 1.0}})
    m1 = c1.apply(m0)
    c2 = CPT({0: {1: 1.0}, 1: {1: 0.5, 2: 0.5}, 2: {2: 1.0}})
    m2 = c2.apply(m1)
    return MarkovianStream("tiny", SPACE, [m0, m1, m2], [c1, c2])


def test_validate_accepts_consistent_stream():
    stream = tiny_stream()
    assert len(stream) == stream.length == 3
    stream.validate()  # no raise


def test_validate_rejects_inconsistent_cpt():
    stream = tiny_stream()
    broken = CPT({0: {0: 1.0}, 1: {1: 1.0}})  # doesn't produce m1
    with pytest.raises(StreamError, match="inconsistent"):
        MarkovianStream("bad", SPACE, stream.marginals,
                        [broken, stream.cpts[1]])


def test_validate_rejects_unnormalized_marginal():
    stream = tiny_stream()
    marginals = list(stream.marginals)
    marginals[0] = SparseDistribution({0: 0.4, 1: 0.4})
    with pytest.raises(StreamError, match="mass"):
        MarkovianStream("bad", SPACE, marginals, stream.cpts)


def test_validate_rejects_states_outside_space():
    m0 = SparseDistribution({7: 1.0})
    with pytest.raises(StreamError, match="outside"):
        MarkovianStream("bad", SPACE, [m0], [])


def test_cpt_orientation():
    stream = tiny_stream()
    assert stream.cpt_into(1) is stream.cpt(0)
    with pytest.raises(StreamError):
        stream.cpt_into(0)
    with pytest.raises(StreamError):
        stream.marginal(3)
    cells = list(stream.iter_cells())
    assert [t for t, _, _ in cells] == [0, 1, 2]
    assert cells[0][2] is None and cells[1][2] is stream.cpts[0]


def brute_force_interval(stream, start, state_sets):
    """Enumerate every concrete path and sum the Markov path products."""
    total = 0.0
    supports = [sorted(stream.marginal(start + i).support())
                for i in range(len(state_sets))]
    for path in itertools.product(*supports):
        if any(x not in s for x, s in zip(path, state_sets)):
            continue
        p = stream.marginal(start).prob(path[0])
        for i in range(1, len(path)):
            p *= stream.cpt_into(start + i).row(path[i - 1]).prob(path[i])
        total += p
    return total


def test_interval_probability_matches_path_enumeration():
    stream = tiny_stream()
    for start, sets in [
        (0, [{0, 1}, {0, 1, 2}, {1, 2}]),
        (0, [{0}, {2}]),
        (1, [{1}, {1, 2}]),
        (0, [{0, 1}]),
    ]:
        got = stream.interval_probability(start, sets)
        want = brute_force_interval(stream, start, sets)
        assert got == pytest.approx(want, abs=1e-12)


def test_interval_probability_bounds_checked():
    stream = tiny_stream()
    assert stream.interval_probability(0, []) == 0.0
    with pytest.raises(StreamError):
        stream.interval_probability(1, [{0}, {0}, {0}])
