"""Page-read accounting over the archive layouts (satellite of the
layout experiment, Fig 8): the logical-read counts of scans and point
accesses are exact functions of tree height and pack factor, so the
tests pin them exactly rather than approximately."""

import pytest

from repro.storage import StorageEnvironment
from repro.streams import Layout, write_stream
from repro.streams.archive import data_tree_name, marg_tree_name

from test_archive import random_stream

LENGTH = 64
PACK = 8


@pytest.fixture()
def env(tmp_path):
    # Page size must keep packed frames inline (<= 1/4 page): an
    # overflow chain would add per-frame page reads and break the exact
    # height arithmetic below.
    with StorageEnvironment(str(tmp_path), page_size=8192) as env:
        stream = random_stream(5, LENGTH, 4)
        for layout in (Layout.SEPARATED, Layout.CELL, Layout.PACKED):
            stream.name = f"s_{layout.value}"
            write_stream(env, stream, layout=layout, pack=PACK)
        yield env


def _reader(env, layout):
    from repro.streams import open_reader

    return open_reader(env, f"s_{layout.value}",
                       random_stream(5, LENGTH, 4).space)


def _cold_scan_reads(env, reader):
    env.pool.evict_all()
    env.stats.reset()
    for _ in reader.scan_cells():
        pass
    return env.stats.logical_reads


def test_packed_scan_costs_one_kth_of_cell(env):
    """A packed(K) sequential scan descends once per K-step frame, so
    its logical reads are exactly ceil(L/K)/L of the cell layout's
    (when both trees have equal height)."""
    cell_reader = _reader(env, Layout.CELL)
    packed_reader = _reader(env, Layout.PACKED)
    cell_height = env.open_tree(data_tree_name("s_cell")).height
    packed_height = env.open_tree(data_tree_name("s_packed")).height

    cell_reads = _cold_scan_reads(env, cell_reader)
    packed_reads = _cold_scan_reads(env, packed_reader)

    assert cell_reads == LENGTH * cell_height
    assert packed_reads == -(-LENGTH // PACK) * packed_height
    # The headline ratio: ~1/K fewer logical reads, modulo one level of
    # height difference between the two trees.
    assert packed_reads * (PACK // 2) <= cell_reads


def test_marginal_point_access_costs_height(env):
    """marginal(t) is one tree descent: exactly ``height`` logical
    reads, regardless of where t falls in the stream."""
    marg_tree = env.open_tree(marg_tree_name("s_separated"))
    reader = _reader(env, Layout.SEPARATED)
    for t in (0, 1, LENGTH // 2, LENGTH - 1):
        env.pool.evict_all()
        env.stats.reset()
        reader.marginal(t)
        assert env.stats.logical_reads == marg_tree.height


def test_packed_point_access_costs_height_once_per_frame(env):
    """Point access in packed decodes a whole frame but still costs one
    descent; accesses within the cached frame cost zero page reads."""
    reader = _reader(env, Layout.PACKED)
    tree = env.open_tree(data_tree_name("s_packed"))
    env.pool.evict_all()
    env.stats.reset()
    reader.marginal(17)
    assert env.stats.logical_reads == tree.height
    before = env.stats.logical_reads
    reader.cpt_into(17)  # same frame: served from the reader's cache
    reader.marginal(16)
    assert env.stats.logical_reads == before


def test_warm_pool_serves_logical_reads_without_physical(env):
    """Re-scanning with a warm pool keeps logical reads constant while
    physical reads drop to zero — the split the benchmarks report."""
    reader = _reader(env, Layout.CELL)
    cold = _cold_scan_reads(env, reader)
    env.stats.reset()
    for _ in reader.scan_cells():
        pass
    assert env.stats.logical_reads == cold
    assert env.stats.physical_reads == 0
