"""Forward-backward smoothing produces *consistent* Markovian streams:
``C_t.apply(m_t) == m_{t+1}`` exactly — the invariant the stream layer
validates and the archive round-trips (satellite check for the
``repro.hmm`` -> ``repro.streams`` pipeline, Fig 1)."""

import random

import pytest

from repro.hmm import HiddenMarkovModel, TabularEmission, smooth, viterbi
from repro.probability import CPT, SparseDistribution
from repro.streams import CONSISTENCY_TOL, single_attribute_space

#: A 4-room corridor: 0 - 1 - 2 - 3, sticky self-transitions.
SPACE = single_attribute_space("location", ["R0", "R1", "R2", "R3"])


def corridor_hmm(p_stay=0.5, noise=0.15) -> HiddenMarkovModel:
    n = 4
    rows = {}
    for s in range(n):
        neighbors = [x for x in (s - 1, s + 1) if 0 <= x < n]
        move = (1.0 - p_stay) / len(neighbors)
        rows[s] = {s: p_stay, **{x: move for x in neighbors}}
    emission = {
        obs: {
            s: (1.0 - noise) if s == obs else noise / (n - 1)
            for s in range(n)
        }
        for obs in range(n)
    }
    return HiddenMarkovModel(
        num_states=n,
        initial=SparseDistribution.uniform(range(n)),
        transition=CPT(rows),
        emission=TabularEmission(emission),
    )


def observations(seed: int, length: int, gap_rate=0.3):
    """A noisy walk with sensor gaps (None observations)."""
    rng = random.Random(seed)
    hmm = corridor_hmm()
    path = hmm.simulate(length, rng)
    obs = []
    for s in path:
        if rng.random() < gap_rate:
            obs.append(None)  # missed read
        elif rng.random() < 0.1:
            obs.append(rng.randrange(4))  # cross-read
        else:
            obs.append(s)
    return obs


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("length", [1, 5, 40])
def test_smoothed_stream_satisfies_consistency_invariant(seed, length):
    stream = smooth(corridor_hmm(), observations(seed, length), SPACE,
                    name=f"walk{seed}")
    assert len(stream) == length
    stream.validate(tol=CONSISTENCY_TOL)  # raises on violation
    for t in range(length):
        assert stream.marginal(t).is_normalized(tol=1e-9)


def test_smoothing_recovers_a_clean_trajectory():
    """With noise-free dense observations the smoothed marginals put
    almost all mass on the true path, and Viterbi agrees."""
    hmm = corridor_hmm(noise=1e-6)
    true_path = [0, 1, 1, 2, 3, 3, 2, 1]
    stream = smooth(hmm, true_path, SPACE, name="clean")
    for t, s in enumerate(true_path):
        assert stream.marginal(t).prob(s) > 0.99
    assert list(viterbi(hmm, true_path)) == true_path


def test_smoothing_survives_conflicting_evidence():
    """An impossible reading (teleport across the corridor) is dropped
    rather than crashing, and the result is still consistent."""
    hmm = corridor_hmm(noise=1e-9)
    obs = [0, 0, 3, 0, 0]  # R3 is unreachable from R0 in one step
    stream = smooth(hmm, obs, SPACE, name="conflict")
    stream.validate(tol=CONSISTENCY_TOL)
    assert stream.marginal(2).prob(3) < 0.5
