"""Run manifests: round trips, the report CLI, and the JSONL sink."""

import io
import json

import pytest

from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    RunManifest,
    Tracer,
    environment_info,
    git_revision,
)
from repro.obs.report import main as report_main
from repro.storage.stats import IOStats


def _sample_manifest(name="bench", reads=5):
    stats = IOStats()
    registry = MetricsRegistry()
    tracer = Tracer(io=stats, registry=registry)
    with tracer.span("phase"):
        stats.logical_reads += reads
        stats.physical_reads += reads // 2
        registry.counter("pool.hits").inc(reads)
        registry.histogram("lookup.reads").observe(reads)
    return RunManifest.new(name, {"n": reads}).finish(tracer, registry)


def test_manifest_round_trip(tmp_path):
    manifest = _sample_manifest()
    path = manifest.save(str(tmp_path / "run.manifest.json"))
    loaded = RunManifest.load(path)
    assert loaded.to_dict() == manifest.to_dict()
    assert loaded.run_id == manifest.run_id
    assert loaded.spans[0]["name"] == "phase"
    assert loaded.spans[0]["io"]["logical_reads"] == 5
    assert loaded.counters()["pool.hits"] == 5
    assert loaded.histograms()["lookup.reads"]["count"] == 1


def test_manifest_file_is_plain_json(tmp_path):
    path = _sample_manifest().save(str(tmp_path / "m.json"))
    with open(path) as handle:
        data = json.load(handle)
    assert data["version"] == 1
    assert set(data) >= {
        "name", "run_id", "created", "git_rev", "config",
        "environment", "spans", "metrics",
    }


def test_new_manifest_is_stamped():
    manifest = RunManifest.new("x")
    assert manifest.run_id
    assert manifest.created
    assert manifest.environment.get("python")
    # In this repo the git rev resolves; elsewhere None is legal.
    rev = git_revision()
    if rev is not None:
        assert manifest.git_rev == rev
        assert len(rev) == 40
    assert set(environment_info()) >= {"python", "platform"}


def test_jsonl_sink_round_trip(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with JsonlSink(path) as sink:
        sink.emit({"type": "a", "n": 1})
        sink.emit({"type": "b", "nested": {"x": [1, 2]}})
    assert JsonlSink.read(path) == [
        {"type": "a", "n": 1},
        {"type": "b", "nested": {"x": [1, 2]}},
    ]
    with pytest.raises(ValueError):
        sink.emit({"late": True})  # the context manager closed it


def test_report_show(tmp_path):
    path = _sample_manifest().save(str(tmp_path / "m.json"))
    out = io.StringIO()
    assert report_main([path], out=out) == 0
    text = out.getvalue()
    assert "phase" in text
    assert "pool.hits" in text
    assert "lookup.reads" in text


def test_report_diff_flags_counter_changes(tmp_path):
    a = _sample_manifest("old", reads=5).save(str(tmp_path / "a.json"))
    b = _sample_manifest("new", reads=9).save(str(tmp_path / "b.json"))
    out = io.StringIO()
    assert report_main([a, b], out=out) == 0
    text = out.getvalue()
    assert "pool.hits: 5 -> 9" in text
    assert "[+4]" in text
    # --fail-on-change propagates the regression signal as exit code.
    assert report_main([a, b, "--fail-on-change"], out=io.StringIO()) == 1
    assert report_main([a, a, "--fail-on-change"], out=io.StringIO()) == 0


def test_report_missing_file_errors(tmp_path):
    assert report_main([str(tmp_path / "absent.json")]) == 2
