"""Storage instrumentation: counters observe, they never perturb.

The acceptance bar for the observability layer: running the same
workload with the full registry on and with the no-op registry must
produce *identical* IOStats — page reads are the repro's cost metric,
and measuring them may not change them.
"""

from dataclasses import asdict

import pytest

from repro.storage import StorageEnvironment, encode_key


def _workload(env):
    """A mixed workload touching every instrumented path."""
    tree = env.open_tree("data")
    items = [(encode_key((i % 7, i)), b"v" * (i % 50)) for i in range(3000)]
    items.sort()
    tree.bulk_load(items)
    env.drop_caches()
    for i in range(0, 3000, 17):
        tree.get(items[i][0])
    extra = env.open_tree("extra")
    for i in range(400):
        extra.put(encode_key((i,)), b"x" * 300)
    extra.put(encode_key((5,)), b"y" * 9000)  # overflow spill
    extra.delete(encode_key((7,)))
    sum(1 for _ in tree.items())
    env.drop_caches()
    sum(1 for _ in extra.range_items(reverse=True))
    env.flush()
    return env.stats.snapshot()


def test_metrics_do_not_perturb_io_counts(tmp_path):
    on = StorageEnvironment(str(tmp_path / "on"), page_size=512,
                            pool_pages=64, metrics=True)
    off = StorageEnvironment(str(tmp_path / "off"), page_size=512,
                             pool_pages=64, metrics=False)
    stats_on = _workload(on)
    stats_off = _workload(off)
    assert asdict(stats_on) == asdict(stats_off)
    on.close()
    off.close()
    # And the instrumented run actually recorded something.
    counters = on.metrics.snapshot()["counters"]
    assert counters["btree.descents{tree=data}"] > 0
    assert counters["pool.misses"] > 0
    assert off.metrics.snapshot()["counters"] == {}


def test_per_tree_counters_are_split_by_name(tmp_path):
    env = StorageEnvironment(str(tmp_path / "db"), pool_pages=32)
    a, b = env.open_tree("a"), env.open_tree("b")
    for i in range(10):
        a.put(encode_key((i,)), b"x")
    b.put(encode_key((1,)), b"y")
    a.get(encode_key((3,)))
    counters = env.metrics.snapshot()["counters"]
    assert counters["btree.puts{tree=a}"] == 10
    assert counters["btree.puts{tree=b}"] == 1
    assert counters["btree.gets{tree=a}"] == 1
    assert counters["btree.gets{tree=b}"] == 0
    env.close()


def test_pool_and_pager_counters_track_io(tmp_path):
    env = StorageEnvironment(str(tmp_path / "db"), pool_pages=32)
    tree = env.open_tree("t")
    items = [(encode_key((i,)), b"v" * 40) for i in range(2000)]
    tree.bulk_load(items)
    env.drop_caches()
    for i in (0, 0, 500, 500, 1999):
        tree.get(items[i][0])
    counters = env.metrics.snapshot()["counters"]
    # Pool hits + misses must equal the environment's logical reads.
    assert (counters["pool.hits"] + counters["pool.misses"]
            == env.stats.logical_reads)
    # The pager counter mirrors IOStats physical reads exactly.
    assert counters["pager.physical_reads"] == env.stats.physical_reads
    assert counters["pager.physical_writes"] == env.stats.physical_writes
    env.close()


def test_overflow_and_cursor_counters(tmp_path):
    env = StorageEnvironment(str(tmp_path / "db"), page_size=512,
                             pool_pages=64)
    tree = env.open_tree("t")
    big = b"z" * 2000  # > page_size/4 -> spilled, multi-page chain
    tree.put(encode_key((1,)), big)
    assert tree.get(encode_key((1,))) == big
    counters = env.metrics.snapshot()["counters"]
    assert counters["btree.overflow_spills{tree=t}"] == 1
    assert counters["btree.overflow_follows{tree=t}"] >= 4  # 2000/~500
    for i in range(2, 30):
        tree.put(encode_key((i,)), b"s")
    steps_before = counters["btree.cursor_steps{tree=t}"]
    sum(1 for _ in tree.items())
    counters = env.metrics.snapshot()["counters"]
    assert counters["btree.cursor_steps{tree=t}"] == steps_before + 29
    env.close()


def test_environment_tracer_binds_stats_and_registry(tmp_path):
    env = StorageEnvironment(str(tmp_path / "db"), pool_pages=32)
    tree = env.open_tree("t")
    tree.bulk_load([(encode_key((i,)), b"v") for i in range(500)])
    env.drop_caches()
    tracer = env.tracer()
    with tracer.span("lookup"):
        tree.get(encode_key((250,)))
    span = tracer.roots[0]
    assert span.io["logical_reads"] == tree.height
    assert span.io["physical_reads"] > 0
    hist = env.metrics.snapshot()["histograms"]
    assert hist["span.lookup.ms"]["count"] == 1
    env.close()


def test_bad_metrics_arg_rejected(tmp_path):
    # Anything that is not None/True/False must behave like a registry.
    with pytest.raises(AttributeError):
        StorageEnvironment(str(tmp_path / "db"), metrics=42)
