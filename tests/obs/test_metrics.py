"""Registry behavior, label keying, and log-scale histogram bucketing."""

import pytest

from repro.obs import MetricsRegistry, NullRegistry


def test_counter_identity_and_increment():
    reg = MetricsRegistry()
    c = reg.counter("pool.hits")
    c.inc()
    c.inc(4)
    assert c.value == 5
    # Same name -> same instrument.
    assert reg.counter("pool.hits") is c


def test_labels_key_separate_instruments():
    reg = MetricsRegistry()
    a = reg.counter("btree.splits", tree="a")
    b = reg.counter("btree.splits", tree="b")
    assert a is not b
    a.inc(3)
    assert b.value == 0
    assert a.name == "btree.splits{tree=a}"
    # Label order must not matter.
    x = reg.counter("q", s="1", t="2")
    assert reg.counter("q", t="2", s="1") is x


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("pool.resident")
    g.set(10)
    g.inc(2)
    g.dec(5)
    assert g.value == 7


def test_histogram_power_of_two_buckets():
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    for v in (1, 2, 3, 4, 5, 8, 9):
        h.observe(v)
    edges = dict(h.buckets())
    # 1 -> edge 1; 2 -> edge 2; 3,4 -> edge 4; 5,8 -> edge 8; 9 -> edge 16.
    assert edges == {1.0: 1, 2.0: 1, 4.0: 2, 8.0: 2, 16.0: 1}
    assert h.count == 7
    assert h.min == 1 and h.max == 9


def test_histogram_zero_and_fractional_buckets():
    h = MetricsRegistry().histogram("h")
    h.observe(0)
    h.observe(0.3)  # edge 0.5
    h.observe(0.5)  # edge 0.5
    edges = dict(h.buckets())
    assert edges == {0.0: 1, 0.5: 2}


def test_histogram_rejects_negative():
    h = MetricsRegistry().histogram("h")
    with pytest.raises(ValueError):
        h.observe(-1)


def test_histogram_percentiles_clamped_to_max():
    h = MetricsRegistry().histogram("h")
    for _ in range(99):
        h.observe(3)
    h.observe(1000)
    # p50 falls in the 3-bucket (upper edge 4, clamped only by max).
    assert h.percentile(0.5) == 4
    # p100 must not exceed the observed max even though the bucket edge
    # is 1024.
    assert h.percentile(1.0) == 1000
    with pytest.raises(ValueError):
        h.percentile(1.5)


def test_histogram_empty_summary():
    h = MetricsRegistry().histogram("h")
    s = h.summary()
    assert s["count"] == 0
    assert s["p50"] == 0.0
    assert s["buckets"] == []


def test_registry_snapshot_shape():
    reg = MetricsRegistry()
    reg.counter("c", tree="t").inc(2)
    reg.gauge("g").set(1.5)
    reg.histogram("h").observe(7)
    snap = reg.snapshot()
    assert snap["counters"] == {"c{tree=t}": 2}
    assert snap["gauges"] == {"g": 1.5}
    assert snap["histograms"]["h"]["count"] == 1
    assert snap["histograms"]["h"]["p50"] == 7


def test_null_registry_is_inert():
    reg = NullRegistry()
    c = reg.counter("anything")
    c.inc(100)
    assert c.value == 0
    g = reg.gauge("g")
    g.set(5)
    assert g.value == 0
    h = reg.histogram("h")
    h.observe(3)
    assert h.count == 0
    assert reg.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }
    assert not reg.enabled
    assert MetricsRegistry().enabled
