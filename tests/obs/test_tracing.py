"""Nested spans: structure, I/O attribution, sinks, and histograms."""

from repro.obs import JsonlSink, MetricsRegistry, Tracer
from repro.storage.stats import IOStats


def test_nested_span_structure():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner_a"):
            pass
        with tracer.span("inner_b", detail=7):
            pass
    assert len(tracer.roots) == 1
    root = tracer.roots[0]
    assert root.name == "outer"
    assert [c.name for c in root.children] == ["inner_a", "inner_b"]
    assert root.children[1].attrs == {"detail": 7}
    assert root.wall_ms >= max(c.wall_ms for c in root.children)
    d = tracer.to_dicts()[0]
    assert d["name"] == "outer"
    assert [c["name"] for c in d["children"]] == ["inner_a", "inner_b"]


def test_span_io_delta_attribution():
    stats = IOStats()
    tracer = Tracer(io=stats)
    with tracer.span("parent"):
        stats.logical_reads += 2
        with tracer.span("child"):
            stats.logical_reads += 3
            stats.physical_reads += 1
        stats.logical_writes += 5
    parent, child = tracer.roots[0], tracer.roots[0].children[0]
    assert child.io["logical_reads"] == 3
    assert child.io["physical_reads"] == 1
    assert child.io["logical_writes"] == 0
    # The parent's delta includes the child's (monotonic counters) ...
    assert parent.io["logical_reads"] == 5
    assert parent.io["logical_writes"] == 5
    # ... and self_io() subtracts it back out.
    assert parent.self_io()["logical_reads"] == 2
    assert parent.self_io()["physical_reads"] == 0
    assert parent.self_io()["logical_writes"] == 5


def test_per_span_io_override():
    a, b = IOStats(), IOStats()
    tracer = Tracer(io=a)
    with tracer.span("default"):
        a.logical_reads += 1
        b.logical_reads += 10
    with tracer.span("override", io=b):
        b.physical_reads += 4
    assert tracer.roots[0].io["logical_reads"] == 1
    assert tracer.roots[1].io["physical_reads"] == 4
    assert tracer.roots[1].io["logical_reads"] == 0


def test_span_without_io_source():
    tracer = Tracer()
    with tracer.span("untracked"):
        pass
    assert tracer.roots[0].io is None
    assert tracer.roots[0].self_io() is None
    assert "io" not in tracer.to_dicts()[0]


def test_registry_receives_span_latencies():
    reg = MetricsRegistry()
    tracer = Tracer(registry=reg)
    for _ in range(3):
        with tracer.span("op"):
            pass
    assert reg.histogram("span.op.ms").count == 3


def test_sink_receives_one_line_per_span(tmp_path):
    path = str(tmp_path / "spans.jsonl")
    stats = IOStats()
    with JsonlSink(path) as sink:
        tracer = Tracer(io=stats, sink=sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                stats.logical_reads += 1
    records = JsonlSink.read(path)
    # Children finish first, so inner precedes outer; no nested copies.
    assert [(r["name"], r["depth"]) for r in records] == [
        ("inner", 1), ("outer", 0),
    ]
    assert all("children" not in r for r in records)
    assert records[0]["io"]["logical_reads"] == 1


def test_walk_and_active():
    tracer = Tracer()
    with tracer.span("a"):
        assert tracer.active.name == "a"
        with tracer.span("b"):
            assert tracer.active.name == "b"
    assert tracer.active is None
    assert [s.name for s in tracer.roots[0].walk()] == ["a", "b"]
