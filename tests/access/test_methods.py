"""Cross-checks of the access methods (Algorithms 1, 2, 3, 5) through
the Caldera facade: the exact methods agree on every emitted timestep,
across every archive layout."""

import pytest

from repro.core import Caldera
from repro.streams import ENTERED_ROOM_QUERY, Layout, synthetic_stream

LAYOUTS = (Layout.SEPARATED, Layout.CELL, Layout.PACKED)
KLEENE_QUERY = "location=Door -> (!location=Room)* location=Room"


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    path = tmp_path_factory.mktemp("db")
    database = Caldera(str(path))
    stream = synthetic_stream("syn", num_snippets=20, density=0.3,
                              match_rate=0.8, seed=19)
    for layout in LAYOUTS:
        stream.name = f"syn_{layout.value}"
        database.archive(stream, layout=layout)
    yield database
    database.close()


@pytest.mark.parametrize("layout", [lo.value for lo in LAYOUTS])
def test_naive_and_btree_agree_on_emitted_timesteps(db, layout):
    stream = f"syn_{layout}"
    text = ENTERED_ROOM_QUERY
    naive = dict(db.query(stream, text, method="naive").signal)
    btree = db.query(stream, text, method="btree").signal
    assert btree, "the B+tree method emitted nothing"
    for t, p in btree:
        assert naive.get(t, 0.0) == pytest.approx(p, abs=1e-9)
    # Alg 2 may skip timesteps it proves irrelevant, but never a
    # nonzero one.
    emitted = {t for t, _ in btree}
    for t, p in naive.items():
        if p > 1e-12:
            assert t in emitted, f"btree dropped nonzero timestep {t}"


def test_btree_rejects_variable_length_queries(db):
    """Alg 2 covers fixed-length queries only; Kleene loops must route
    to Alg 4/5 (and the naive fallback stays exact)."""
    from repro.errors import QueryError

    with pytest.raises(QueryError, match="fixed-length"):
        db.query("syn_separated", KLEENE_QUERY, method="btree")
    naive = db.query("syn_separated", KLEENE_QUERY, method="naive")
    assert naive.signal  # exact evaluation still works


def test_layouts_agree_with_each_other(db):
    signals = []
    for layout in LAYOUTS:
        result = db.query(f"syn_{layout.value}", ENTERED_ROOM_QUERY,
                          method="naive")
        signals.append(dict(result.signal))
    for other in signals[1:]:
        assert set(other) == set(signals[0])
        for t, p in signals[0].items():
            assert other[t] == pytest.approx(p, abs=1e-9)


def test_topk_returns_highest_peaks(db):
    full = dict(db.query("syn_separated", ENTERED_ROOM_QUERY,
                         method="naive").signal)
    top = db.query("syn_separated", ENTERED_ROOM_QUERY, method="topk",
                   k=3).signal
    assert len(top) <= 3
    # Emitted in time order; the *set* must be the k highest peaks.
    assert [t for t, _ in top] == sorted(t for t, _ in top)
    probs = sorted((p for _, p in top), reverse=True)
    best = sorted(full.values(), reverse=True)[:len(top)]
    assert probs == pytest.approx(best, abs=1e-9)


def test_semi_independent_is_close_at_peaks(db):
    """Alg 5's independence approximation tracks the exact signal at
    the peaks that matter for thresholding."""
    exact = dict(db.query("syn_separated", ENTERED_ROOM_QUERY,
                          method="naive").signal)
    approx = dict(db.query("syn_separated", ENTERED_ROOM_QUERY,
                           method="semi").signal)
    peak_t = max(exact, key=exact.get)
    assert approx, "semi-independent emitted nothing"
    assert approx.get(peak_t, 0.0) > 0.0


def test_btree_reads_fewer_pages_than_naive(db):
    for method in ("naive", "btree"):
        db.drop_caches()
        db.stats.reset()
        db.query("syn_separated", ENTERED_ROOM_QUERY, method=method,
                 cold=True)
        if method == "naive":
            naive_reads = db.stats.logical_reads
        else:
            btree_reads = db.stats.logical_reads
    assert btree_reads * 2 < naive_reads
