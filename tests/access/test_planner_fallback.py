"""Fallback decisions must be observable (ISSUE 5 satellite): whenever
the planner routes a query to the naive scan (or the approximate
method) for lack of coverage, it bumps ``planner.fallbacks{reason=...}``
and emits a ``planner.fallback`` warning span on the environment's
tracer — a silent full scan is a perf bug waiting to be missed."""

import pytest

from repro.core import Caldera
from repro.streams import synthetic_stream

KLEENE = "location=Door -> (!location=Room)* location=Room"
FIXED = "location=Door -> location=Room"


@pytest.fixture()
def db(tmp_path):
    with Caldera(str(tmp_path)) as database:
        yield database


def fallback_counters(db):
    counters = db.env.metrics.snapshot()["counters"]
    return {k: v for k, v in counters.items()
            if k.startswith("planner.fallbacks")}


def archive(db, name, seed, **kwargs):
    stream = synthetic_stream(name, num_snippets=3, density=0.5,
                              match_rate=0.5, seed=seed)
    db.archive(stream, layout="separated", **kwargs)


def test_variable_query_without_mc_index_counts_fallback(db):
    archive(db, "s", 5, mc_alpha=None)
    assert fallback_counters(db) == {}
    db.query("s", KLEENE, method="auto")
    assert fallback_counters(db) == {
        "planner.fallbacks{reason=no_mc_index}": 1
    }
    decision = db.explain("s", KLEENE)
    assert decision.name == "naive"
    assert fallback_counters(db) == {
        "planner.fallbacks{reason=no_mc_index}": 2
    }


def test_approximate_fallback_is_counted_too(db):
    """Falling back to semi-independent is still a fallback — the user
    asked for a variable-length query the MC index should serve."""
    archive(db, "s", 5, mc_alpha=None)
    decision = db.explain("s", KLEENE, approximate=True)
    assert decision.name == "semi"
    assert fallback_counters(db) == {
        "planner.fallbacks{reason=no_mc_index}": 1
    }


def test_missing_btc_coverage_counts_fallback(db):
    archive(db, "s", 5, btc=False, btp=False, mc_alpha=None)
    db.query("s", KLEENE, method="auto")
    db.query("s", FIXED, method="auto")
    assert fallback_counters(db) == {
        "planner.fallbacks{reason=no_btc_coverage}": 2
    }


def test_planned_queries_do_not_count_fallbacks(db):
    archive(db, "s", 5, mc_alpha=2)
    assert db.explain("s", KLEENE).name == "mc"
    assert db.explain("s", FIXED).name == "btree"
    db.query("s", KLEENE, method="auto")
    db.query("s", FIXED, method="auto")
    assert fallback_counters(db) == {}


def test_fallback_emits_warning_span(db):
    archive(db, "s", 5, mc_alpha=None)
    db.query("s", KLEENE, method="auto")
    histograms = db.env.metrics.snapshot()["histograms"]
    assert any(k.startswith("span.planner.fallback.ms")
               for k in histograms), histograms


def test_explicit_method_pins_bypass_the_planner(db):
    """method= pins are deliberate; only auto-planning counts."""
    archive(db, "s", 5, mc_alpha=None)
    db.query("s", KLEENE, method="naive")
    assert fallback_counters(db) == {}
