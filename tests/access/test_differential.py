"""The differential harness: randomized cross-checks of all five
access methods (Algorithms 1, 2, 3, 4, 5) against each other, across
every archive layout.

The exact methods — naive scan, fixed B+tree, top-k B+tree, and the
MC-index method in exact mode — must agree on the probability signal
to 1e-9 on every emitted timestep (BT_C guarantees any timestep with
nonzero mass on a predicate's states is indexed, so a nonzero naive
probability implies the timestep is a relevant event every indexed
method visits). The approximate semi-independent method is held to its
documented bound (see :mod:`repro.access.semi_independent`)."""

import random
import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Caldera
from repro.streams import Layout, synthetic_stream

LAYOUTS = (Layout.SEPARATED, Layout.CELL, Layout.PACKED)
TOL = 1e-9
#: Values with mass in the synthetic world (C6/C7 are rarely visited).
VALUES = ["Door", "Room", "C0", "C1", "C3"]


def random_fixed_query(rng: random.Random) -> str:
    links = rng.randint(2, 3)
    return " -> ".join(
        f"location={rng.choice(VALUES)}" for _ in range(links))


def random_variable_query(rng: random.Random) -> str:
    first = rng.choice(VALUES)
    last = rng.choice(["Door", "Room"])
    return f"location={first} -> (!location={last})* location={last}"


_RNG = random.Random(20260806)
FIXED_QUERIES = [random_fixed_query(_RNG) for _ in range(4)]
VARIABLE_QUERIES = [random_variable_query(_RNG) for _ in range(3)]


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    path = tmp_path_factory.mktemp("diff_db")
    database = Caldera(str(path))
    stream = synthetic_stream("syn", num_snippets=12, density=0.35,
                              match_rate=0.6, seed=23)
    for layout in LAYOUTS:
        stream.name = f"syn_{layout.value}"
        database.archive(stream, layout=layout, mc_alpha=2)
    yield database
    database.close()


def assert_signals_agree(exact: dict, other, *, cover_nonzero=True):
    """Every value the method emitted matches the exact signal; every
    nonzero exact timestep is covered."""
    assert other, "method emitted nothing"
    for t, p in other:
        assert exact.get(t, 0.0) == pytest.approx(p, abs=TOL), t
    if cover_nonzero:
        emitted = {t for t, _ in other}
        for t, p in exact.items():
            if p > 1e-12:
                assert t in emitted, f"dropped nonzero timestep {t}"


# ---------------------------------------------------------------------------
# Deterministic sweep: methods x layouts x random-but-pinned queries
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("layout", [lo.value for lo in LAYOUTS])
@pytest.mark.parametrize("qtext", FIXED_QUERIES)
def test_fixed_methods_agree(db, layout, qtext):
    stream = f"syn_{layout}"
    naive = dict(db.query(stream, qtext, method="naive").signal)
    if not any(p > 1e-12 for p in naive.values()):
        pytest.skip("query has zero signal on this stream")
    btree = db.query(stream, qtext, method="btree").signal
    assert_signals_agree(naive, btree)
    top = db.query(stream, qtext, method="topk", k=5).signal
    best = sorted(naive.values(), reverse=True)[:len(top)]
    assert sorted((p for _, p in top), reverse=True) == \
        pytest.approx(best, abs=TOL)


@pytest.mark.parametrize("layout", [lo.value for lo in LAYOUTS])
@pytest.mark.parametrize("qtext", VARIABLE_QUERIES)
def test_variable_mc_agrees_with_naive(db, layout, qtext):
    stream = f"syn_{layout}"
    naive = dict(db.query(stream, qtext, method="naive").signal)
    mc = db.query(stream, qtext, method="mc").signal
    assert_signals_agree(naive, mc)


@pytest.mark.parametrize("qtext", VARIABLE_QUERIES)
def test_mc_layouts_agree(db, qtext):
    signals = [
        dict(db.query(f"syn_{lo.value}", qtext, method="mc").signal)
        for lo in LAYOUTS
    ]
    for other in signals[1:]:
        assert set(other) == set(signals[0])
        for t, p in signals[0].items():
            assert other[t] == pytest.approx(p, abs=TOL)


@pytest.mark.parametrize("layout", [lo.value for lo in LAYOUTS])
def test_semi_independent_within_documented_bound(db, layout):
    """The three guarantees documented in
    :mod:`repro.access.semi_independent`: same support as the exact MC
    method, valid probabilities, exact prefix until the first gap."""
    stream = f"syn_{layout}"
    qtext = VARIABLE_QUERIES[0]
    exact = db.query(stream, qtext, method="mc").signal
    semi = db.query(stream, qtext, method="semi").signal
    # (1) identical support: the relevant-event set.
    assert [t for t, _ in semi] == [t for t, _ in exact]
    # (2) valid probabilities.
    for _, p in semi:
        assert -TOL <= p <= 1.0 + TOL
    # (3) exact until the first gap of two or more timesteps.
    for (t, want), (_, got) in zip(exact, semi):
        assert got == pytest.approx(want, abs=TOL)
        nxt = exact[exact.index((t, want)) + 1][0] if \
            exact.index((t, want)) + 1 < len(exact) else None
        if nxt is not None and nxt - t > 1:
            break


def test_conditioned_mode_agrees_at_run_boundaries(db):
    """Conditioned skipping (§3.3.2) emits at loop-run boundaries only,
    with the same values as exact mode there."""
    db2_path = tempfile.mkdtemp()
    try:
        with Caldera(db2_path) as db2:
            stream = synthetic_stream("syn", num_snippets=8, density=0.4,
                                      match_rate=0.5, seed=29)
            query = db2.parse("location=Door -> (location=C1)* location=Room")
            loop = next(link.loop for link in query.links
                        if link.has_positive_loop)
            db2.archive(stream, layout="separated", mc_alpha=2,
                        conditioned_predicates=[loop])
            exact = dict(db2.query("syn", query, method="mc").signal)
            cond = db2.query("syn", query, method="mc",
                             use_conditioned=True).signal
            assert cond, "conditioned mode emitted nothing"
            assert len(cond) <= len(exact)
            for t, p in cond:
                assert exact[t] == pytest.approx(p, abs=TOL)
    finally:
        shutil.rmtree(db2_path)


# ---------------------------------------------------------------------------
# Hypothesis sweep: random streams x random queries x random layouts
# ---------------------------------------------------------------------------

@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    density=st.floats(0.1, 0.7),
    match_rate=st.floats(0.0, 1.0),
    layout=st.sampled_from(LAYOUTS),
    qseed=st.integers(0, 10_000),
)
def test_random_streams_fixed_methods_agree(seed, density, match_rate,
                                            layout, qseed):
    rng = random.Random(qseed)
    qtext = random_fixed_query(rng)
    path = tempfile.mkdtemp()
    try:
        with Caldera(path) as db:
            stream = synthetic_stream("syn", num_snippets=4,
                                      density=density,
                                      match_rate=match_rate, seed=seed)
            db.archive(stream, layout=layout, mc_alpha=2)
            naive = dict(db.query("syn", qtext, method="naive").signal)
            btree = db.query("syn", qtext, method="btree").signal
            if btree:
                assert_signals_agree(naive, btree)
            else:
                assert all(p <= 1e-12 for p in naive.values())
    finally:
        shutil.rmtree(path)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    density=st.floats(0.1, 0.7),
    layout=st.sampled_from(LAYOUTS),
    qseed=st.integers(0, 10_000),
)
def test_random_streams_variable_methods_agree(seed, density, layout,
                                               qseed):
    rng = random.Random(qseed)
    qtext = random_variable_query(rng)
    path = tempfile.mkdtemp()
    try:
        with Caldera(path) as db:
            stream = synthetic_stream("syn", num_snippets=4,
                                      density=density, match_rate=0.7,
                                      seed=seed)
            db.archive(stream, layout=layout, mc_alpha=2)
            naive = dict(db.query("syn", qtext, method="naive").signal)
            mc = db.query("syn", qtext, method="mc").signal
            if mc:
                assert_signals_agree(naive, mc)
            else:
                assert all(p <= 1e-12 for p in naive.values())
            semi = db.query("syn", qtext, method="semi").signal
            assert [t for t, _ in semi] == [t for t, _ in mc]
            for _, p in semi:
                assert -TOL <= p <= 1.0 + TOL
    finally:
        shutil.rmtree(path)
