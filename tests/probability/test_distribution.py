"""SparseDistribution: sparse support, mass operations, algebra."""

import pytest

from repro.errors import StreamError
from repro.probability import SparseDistribution


def test_construction_drops_zeros_and_rejects_negatives():
    d = SparseDistribution({0: 0.5, 1: 0.0, 2: 0.5})
    assert d.support() == {0, 2}
    assert len(d) == 2
    assert 1 not in d
    with pytest.raises(StreamError):
        SparseDistribution({0: -0.1})


def test_empty_distribution_is_falsy():
    empty = SparseDistribution()
    assert not empty
    assert empty.total_mass == 0.0
    with pytest.raises(StreamError):
        empty.normalize()
    with pytest.raises(StreamError):
        empty.max_state()


def test_point_uniform_from_counts():
    assert SparseDistribution.point(3).prob(3) == 1.0
    u = SparseDistribution.uniform([1, 2, 3, 4])
    assert u.is_normalized()
    assert u.prob(2) == pytest.approx(0.25)
    c = SparseDistribution.from_counts({0: 30, 1: 10})
    assert c.prob(0) == pytest.approx(0.75)
    assert c.is_normalized()
    with pytest.raises(StreamError):
        SparseDistribution.from_counts({0: 0})


def test_normalize_and_mass():
    d = SparseDistribution({0: 2.0, 1: 6.0})
    assert not d.is_normalized()
    assert d.total_mass == pytest.approx(8.0)
    n = d.normalize()
    assert n.is_normalized()
    assert n.prob(1) == pytest.approx(0.75)
    # the original is untouched (immutability)
    assert d.prob(1) == pytest.approx(6.0)


def test_product_is_pointwise_and_sparse():
    prior = SparseDistribution({0: 0.5, 1: 0.3, 2: 0.2})
    likelihood = SparseDistribution({1: 0.4, 2: 1.0, 9: 0.9})
    post = prior.product(likelihood)
    assert post.support() == {1, 2}
    assert post.prob(1) == pytest.approx(0.12)
    assert post.prob(2) == pytest.approx(0.2)
    # symmetric
    assert likelihood.product(prior).approx_equal(post)


def test_add_scale_restrict_mass_on():
    a = SparseDistribution({0: 0.2, 1: 0.3})
    b = SparseDistribution({1: 0.1, 2: 0.4})
    s = a.add(b)
    assert s.prob(1) == pytest.approx(0.4)
    assert s.support() == {0, 1, 2}
    assert a.scale(2.0).total_mass == pytest.approx(1.0)
    with pytest.raises(StreamError):
        a.scale(-1.0)
    r = s.restrict_to({1, 2})
    assert r.support() == {1, 2}
    assert s.mass_on({0, 2}) == pytest.approx(0.6)


def test_marginalize_sums_by_mapped_value():
    d = SparseDistribution({0: 0.5, 1: 0.25, 2: 0.15, 3: 0.1})
    kind = {0: "office", 1: "office", 2: "hall", 3: None}
    m = d.marginalize(lambda s: kind[s])
    assert m.prob("office") == pytest.approx(0.75)
    assert m.prob("hall") == pytest.approx(0.15)
    assert len(m) == 2  # the None-mapped state is dropped


def test_max_state_and_top():
    d = SparseDistribution({0: 0.1, 1: 0.6, 2: 0.3})
    assert d.max_state() == (1, 0.6)
    assert d.top(2) == [(1, 0.6), (2, 0.3)]


def test_serialization_roundtrip():
    d = SparseDistribution({5: 0.125, 1000000: 0.875})
    assert SparseDistribution.from_bytes(d.to_bytes()) == d
    empty = SparseDistribution()
    assert SparseDistribution.from_bytes(empty.to_bytes()) == empty
