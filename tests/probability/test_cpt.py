"""CPT: apply, compose (the chain rule), masking, and validation."""

import pytest

from repro.errors import StreamError
from repro.probability import CPT, SparseDistribution, validate_cpt


@pytest.fixture
def chain():
    """A 3-state cyclic walk: mostly stay, sometimes step forward."""
    return CPT({
        0: {0: 0.7, 1: 0.3},
        1: {1: 0.6, 2: 0.4},
        2: {2: 0.5, 0: 0.5},
    })


def test_construction_accepts_mappings_and_drops_empty_rows():
    cpt = CPT({0: {1: 1.0}, 1: SparseDistribution({2: 1.0}), 2: {}})
    assert cpt.sources() == {0, 1}
    assert 2 not in cpt
    assert cpt.row(2) == SparseDistribution()  # absent rows read as empty
    assert cpt.destinations() == {1, 2}
    assert cpt.num_entries() == 2
    assert len(cpt) == 2
    assert not CPT()


def test_identity_is_a_fixed_point(chain):
    ident = CPT.identity([0, 1, 2])
    dist = SparseDistribution({0: 0.2, 2: 0.8})
    assert ident.apply(dist) == dist
    assert ident.compose(chain).approx_equal(chain)
    assert chain.compose(ident).approx_equal(chain)


def test_apply_propagates_one_step(chain):
    out = chain.apply(SparseDistribution({0: 0.5, 1: 0.5}))
    assert out.prob(0) == pytest.approx(0.35)
    assert out.prob(1) == pytest.approx(0.45)
    assert out.prob(2) == pytest.approx(0.2)
    assert out.is_normalized()


def test_apply_drops_mass_without_a_row(chain):
    out = chain.apply(SparseDistribution({0: 0.5, 99: 0.5}))
    assert out.total_mass == pytest.approx(0.5)


def test_compose_matches_two_applies(chain):
    """compose is the chain rule: (A∘B).apply(v) == B.apply(A.apply(v))."""
    other = CPT({0: {1: 1.0}, 1: {0: 0.5, 2: 0.5}, 2: {2: 1.0}})
    squared = chain.compose(other)
    for start in (0, 1, 2):
        v = SparseDistribution.point(start)
        assert squared.apply(v).approx_equal(other.apply(chain.apply(v)))
    assert squared.is_stochastic()


def test_compose_preserves_stochasticity_over_many_steps(chain):
    power = CPT.identity([0, 1, 2])
    for _ in range(10):
        power = power.compose(chain)
    assert power.is_stochastic()
    # After many steps of an irreducible chain, every destination reachable.
    assert all(len(power.row(s)) == 3 for s in (0, 1, 2))


def test_stochasticity_and_normalize_rows():
    ragged = CPT({0: {0: 2.0, 1: 2.0}, 1: {1: 1.0}})
    assert not ragged.is_stochastic()
    fixed = ragged.normalize_rows()
    assert fixed.is_stochastic()
    assert fixed.row(0).prob(0) == pytest.approx(0.5)


def test_mask_destinations_is_substochastic(chain):
    masked = chain.mask_destinations({0, 1})
    assert not masked.is_stochastic()
    # Lost mass per row is exactly the probability of leaving the loop.
    assert masked.row(1).total_mass == pytest.approx(0.6)
    assert masked.row(0).total_mass == pytest.approx(1.0)
    assert 2 not in masked.destinations()


def test_mask_sources_drops_rows(chain):
    masked = chain.mask_sources([0, 2])
    assert masked.sources() == {0, 2}
    assert masked.row(1) == SparseDistribution()


def test_transpose_reverses_edges(chain):
    t = chain.transpose()
    assert t.row(0).prob(2) == pytest.approx(0.5)
    assert t.row(1).prob(0) == pytest.approx(0.3)
    assert t.transpose().approx_equal(chain)


def test_validate_cpt(chain):
    validate_cpt(chain)
    with pytest.raises(StreamError, match="mass"):
        validate_cpt(chain.mask_destinations({0, 1}))


def test_serialization_roundtrip(chain):
    assert CPT.from_bytes(chain.to_bytes()) == chain
    assert CPT.from_bytes(CPT().to_bytes()) == CPT()
