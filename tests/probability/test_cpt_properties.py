"""Algebraic properties of the probability layer that the MC index
leans on (§4.2.2): composition is associative, span records composed in
any grouping equal the step-by-step product, destination masking
commutes with composition, and the conditioned span update matches the
reference Reg operator stepping through a conditioned loop."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lahar.reg import ReferenceReg, Reg
from repro.probability import CPT, SparseDistribution
from repro.query import parse_query
from repro.streams import MarkovianStream, single_attribute_space

NUM_STATES = 4
STATES = list(range(NUM_STATES))


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

@st.composite
def rows(draw, states=tuple(STATES)):
    support = draw(st.lists(st.sampled_from(states), min_size=1,
                            max_size=len(states), unique=True))
    weights = [draw(st.floats(1e-3, 1.0)) for _ in support]
    total = sum(weights)
    return SparseDistribution({s: w / total for s, w in zip(support, weights)})


@st.composite
def cpts(draw):
    sources = draw(st.lists(st.sampled_from(STATES), min_size=1,
                            max_size=NUM_STATES, unique=True))
    return CPT({src: draw(rows()) for src in sources})


accept_sets = st.sets(st.sampled_from(STATES), min_size=1,
                      max_size=NUM_STATES).map(frozenset)


def brute_compose(a: CPT, b: CPT, via=None) -> CPT:
    """Path-sum reference: out(z|x) = sum_y a(y|x) * b(z|y), with the
    intermediate ``y`` optionally restricted to ``via``."""
    out = {}
    for x, row_a in a.rows():
        acc = {}
        for y, p in row_a.items():
            if via is not None and y not in via:
                continue
            for z, q in dict(b.row(y).items()).items():
                acc[z] = acc.get(z, 0.0) + p * q
        out[x] = SparseDistribution(acc)
    return CPT(out)


# ---------------------------------------------------------------------------
# Composition algebra
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(a=cpts(), b=cpts(), c=cpts())
def test_compose_is_associative(a, b, c):
    left = a.compose(b).compose(c)
    right = a.compose(b.compose(c))
    assert left.approx_equal(right, tol=1e-12)


@settings(max_examples=40, deadline=None)
@given(a=cpts(), b=cpts())
def test_compose_matches_path_sum(a, b):
    assert a.compose(b).approx_equal(brute_compose(a, b), tol=1e-12)


@settings(max_examples=30, deadline=None)
@given(steps=st.lists(cpts(), min_size=2, max_size=8),
       data=st.data())
def test_span_grouping_equals_stepwise(steps, data):
    """Composing precomputed span records (any contiguous grouping, the
    MC index's level scheme) equals the left-to-right step product."""
    stepwise = steps[0]
    for cpt in steps[1:]:
        stepwise = stepwise.compose(cpt)
    cut = data.draw(st.integers(1, len(steps) - 1))
    left = steps[0]
    for cpt in steps[1:cut]:
        left = left.compose(cpt)
    right = steps[cut]
    for cpt in steps[cut + 1:]:
        right = right.compose(cpt)
    assert left.compose(right).approx_equal(stepwise, tol=1e-12)


@settings(max_examples=40, deadline=None)
@given(a=cpts(), b=cpts(), accept=accept_sets)
def test_masking_commutes_with_composition(a, b, accept):
    """Masking the destinations of the earlier piece equals restricting
    the intermediate state of the concatenation — the identity that
    lets the conditioned MC index store fully-masked products."""
    got = a.mask_destinations(accept).compose(b)
    want = brute_compose(a, b, via=accept)
    assert got.approx_equal(want, tol=1e-12)


@settings(max_examples=40, deadline=None)
@given(a=cpts(), b=cpts(), accept=accept_sets)
def test_masked_products_compose_exactly(a, b, accept):
    """(mask a) . (mask b) == mask of the intermediate AND final state:
    composing two stored conditioned records is itself a conditioned
    record — no re-masking needed at query time."""
    got = a.mask_destinations(accept).compose(b.mask_destinations(accept))
    want = brute_compose(a, b, via=accept).mask_destinations(accept)
    assert got.approx_equal(want, tol=1e-12)


@settings(max_examples=40, deadline=None)
@given(a=cpts(), accept=accept_sets)
def test_mask_then_normalize_is_conditional_distribution(a, accept):
    """mask -> renormalize yields P(y | x, y in accept) exactly."""
    masked = a.mask_destinations(accept)
    norm = masked.normalize_rows()
    for src, row in a.rows():
        kept = {y: p for y, p in row.items() if y in accept}
        total = sum(kept.values())
        if total <= 0.0:
            continue
        for y, p in kept.items():
            assert norm.row(src).prob(y) == pytest.approx(p / total,
                                                          abs=1e-12)


# ---------------------------------------------------------------------------
# Conditioned span update vs the reference Reg
# ---------------------------------------------------------------------------

def loop_stream(interior: int, seed_weights=(0.6, 0.3)):
    """An ``A -> (B)* C`` workload whose interior timesteps carry mass
    only on the loop state B and an irrelevant background state: the
    setting where the conditioned span update is exact."""
    space = single_attribute_space("location", ["A", "B", "C", "BG"])
    sid = {v: space.state_id((v,)) for v in ["A", "B", "C", "BG"]}
    w_keep, w_enter = seed_weights
    m0 = SparseDistribution({sid["A"]: 0.5, sid["BG"]: 0.5})
    first = CPT({
        sid["A"]: SparseDistribution({sid["B"]: 0.7, sid["BG"]: 0.3}),
        sid["BG"]: SparseDistribution({sid["B"]: w_enter,
                                       sid["BG"]: 1 - w_enter}),
    })
    mid = CPT({
        sid["B"]: SparseDistribution({sid["B"]: w_keep,
                                      sid["BG"]: 1 - w_keep}),
        sid["BG"]: SparseDistribution({sid["B"]: 0.25, sid["BG"]: 0.75}),
    })
    last = CPT({
        sid["B"]: SparseDistribution({sid["C"]: 0.5, sid["BG"]: 0.5}),
        sid["BG"]: SparseDistribution({sid["C"]: 0.1, sid["BG"]: 0.9}),
    })
    cpts = [first] + [mid] * interior + [last]
    marginals = [m0]
    for cpt in cpts:
        marginals.append(cpt.apply(marginals[-1]))
    stream = MarkovianStream("loop", space, marginals, cpts)
    query = parse_query("location=A -> (location=B)* location=C")
    return stream, query, sid


@pytest.mark.parametrize("interior", [0, 1, 3, 6])
@pytest.mark.parametrize("reg_cls", [ReferenceReg, Reg])
def test_conditioned_span_update_matches_stepwise(interior, reg_cls):
    """One conditioned span update across the loop run equals stepping
    the reference operator through every interior timestep."""
    stream, query, sid = loop_stream(interior)
    accept = frozenset({sid["B"]})
    end = len(stream) - 1
    loop_state = next(
        q for q, link in enumerate(query.links) if link.has_positive_loop
    )

    stepper = ReferenceReg(query, stream.space)
    stepper.initialize(stream.marginal(0))
    for t in range(1, end + 1):
        want = stepper.update(stream.cpt_into(t))

    spanner = reg_cls(query, stream.space)
    spanner.initialize(stream.marginal(0))
    plain = stream.cpt_into(1)
    for t in range(2, end + 1):
        plain = plain.compose(stream.cpt_into(t))
    cond = stream.cpt_into(1).mask_destinations(accept)
    for t in range(2, end):
        cond = cond.compose(stream.cpt_into(t).mask_destinations(accept))
    cond = cond.compose(stream.cpt_into(end))
    got = spanner.update_loop_span(loop_state, plain, cond, span=end)
    assert got == pytest.approx(want, abs=1e-12)


def test_conditioned_span_kept_mass_is_loop_probability():
    """The sub-stochastic conditioned CPT's row mass equals the exact
    probability of satisfying the loop predicate at every interior
    step (path sum over interior states)."""
    stream, query, sid = loop_stream(interior=3)
    accept = frozenset({sid["B"]})
    end = len(stream) - 1
    cond = stream.cpt_into(1).mask_destinations(accept)
    for t in range(2, end):
        cond = cond.compose(stream.cpt_into(t).mask_destinations(accept))
    cond = cond.compose(stream.cpt_into(end))
    # From A, staying on B for interior steps: 0.7 * 0.6**3.
    mass = cond.row(sid["A"]).total_mass
    assert mass == pytest.approx(0.7 * 0.6 ** 3, abs=1e-12)
