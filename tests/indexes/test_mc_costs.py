"""Exact cost accounting for the MC index (satellite of Fig 8(b) /
Fig 11): piece counts per gap are pinned exactly, the log bound
``pieces <= 2*ceil(log_alpha g) + c`` holds with a per-alpha constant
pinned below, logical page reads are an exact function of tree heights,
and the build cost is pinned as a bulk-load page-write count (same
style as ``tests/streams/test_archive_costs.py``)."""

import math

import pytest

from repro.indexes.base import mc_tree_name
from repro.indexes.builder import build_mc
from repro.indexes.mc import MCLookupStats
from repro.storage import StorageEnvironment
from repro.streams import Layout, open_reader, write_stream

from test_mc import make_stream

LENGTH = 130
PAGE = 8192

#: Deterministic gap fixtures: (start, end) pairs over the length-130
#: stream, mixing aligned, unaligned, single-step, and full-stream gaps.
GAPS = [(0, 1), (0, 129), (3, 100), (17, 23), (1, 128),
        (64, 127), (5, 6), (0, 64), (33, 97)]

#: Exact piece counts (lookups + base CPT reads) per gap, pinned per
#: alpha. Any change to the level scheme or greedy descent shows up
#: here first.
PIECES = {
    2: [1, 2, 7, 4, 7, 6, 1, 1, 7],
    4: [1, 3, 10, 6, 10, 9, 1, 1, 10],
    8: [1, 3, 20, 6, 15, 14, 1, 1, 15],
}

#: The pinned additive constant making pieces <= 2*ceil(log_alpha g)+c
#: tight over the fixtures (slack of the worst fixture; c >= 1 because
#: a single-step gap costs one piece against a bound of zero).
LOG_BOUND_C = {2: 1, 4: 4, 8: 14}

#: Build cost: total pages in the bulk-loaded index file and the exact
#: physical page writes of the build (bulk-load page images + WAL
#: commit + checkpoint — every page written a small constant number of
#: times, never rewritten per record).
BUILD_PAGES = {2: 6, 4: 3, 8: 3}
BUILD_WRITES = {2: 21, 4: 15, 8: 15}


@pytest.fixture(scope="module", params=[2, 4, 8])
def fixture(request, tmp_path_factory):
    alpha = request.param
    path = tmp_path_factory.mktemp(f"mc_costs_a{alpha}")
    with StorageEnvironment(str(path), page_size=PAGE) as env:
        stream = make_stream(3, length=LENGTH)
        write_stream(env, stream, layout=Layout.SEPARATED)
        reader = open_reader(env, "s", stream.space)
        env.stats.reset()
        index = build_mc(env, "s", reader, alpha=alpha)
        build_writes = env.stats.physical_writes
        yield env, reader, index, alpha, build_writes


def test_build_write_cost_is_pinned(fixture):
    env, _, index, alpha, build_writes = fixture
    pages = env.file_size(mc_tree_name("s")) // PAGE
    assert pages == BUILD_PAGES[alpha]
    assert build_writes == BUILD_WRITES[alpha]
    # Bulk load never rewrites: the write count is a small constant
    # multiple of the file's pages, not a function of record count.
    assert build_writes <= 4 * pages + 4


def test_piece_counts_are_pinned(fixture):
    _, reader, index, alpha, _ = fixture
    got = []
    for start, end in GAPS:
        stats = MCLookupStats()
        index.compute_cpt(start, end, reader, stats=stats)
        got.append(stats.pieces)
    assert got == PIECES[alpha]


def test_pieces_obey_pinned_log_bound(fixture):
    _, reader, index, alpha, _ = fixture
    c = LOG_BOUND_C[alpha]
    slacks = []
    for start, end in GAPS:
        stats = MCLookupStats()
        index.compute_cpt(start, end, reader, stats=stats)
        g = end - start
        bound = 2 * math.ceil(math.log(g, alpha)) if g > 1 else 0
        assert stats.pieces <= bound + c, (start, end)
        slacks.append(stats.pieces - bound)
    # The constant is tight: some fixture attains it exactly.
    assert max(slacks) == c


def test_pieces_obey_theoretical_bound_on_full_sweep(fixture):
    """Every gap starting at an arbitrary offset satisfies the greedy
    decomposition's worst case: <= alpha-1 pieces per level per side."""
    _, reader, index, alpha, _ = fixture
    for end in range(4, LENGTH - 1, 7):
        stats = MCLookupStats()
        index.compute_cpt(3, end, reader, stats=stats)
        g = end - 3
        bound = 2 * (alpha - 1) * max(1, math.ceil(math.log(g, alpha)))
        assert stats.pieces <= bound, (3, end, stats.pieces, bound)


def test_logical_reads_are_exact_height_arithmetic(fixture):
    """Gap traversal costs exactly ``lookups * mc_height`` page reads
    in the index plus ``base_cpts_read`` point CPT reads from the
    archive — nothing else touches a page."""
    env, reader, index, alpha, _ = fixture
    mc_height = env.open_tree(mc_tree_name("s")).height
    # Self-calibrate the archive's point CPT cost (one tree descent).
    env.stats.reset()
    reader.cpt_into(5)
    cpt_cost = env.stats.logical_reads
    assert cpt_cost >= 1
    for start, end in GAPS:
        stats = MCLookupStats()
        env.stats.reset()
        index.compute_cpt(start, end, reader, stats=stats)
        want = stats.lookups * mc_height + stats.base_cpts_read * cpt_cost
        assert env.stats.logical_reads == want, (start, end)


def test_mc_traversal_beats_stepwise_reads_on_long_gaps(fixture):
    """The headline inequality: covering a long gap through the index
    costs strictly fewer logical reads than reading every base CPT."""
    env, reader, index, alpha, _ = fixture
    env.stats.reset()
    index.compute_cpt(0, LENGTH - 1, reader)
    mc_reads = env.stats.logical_reads
    env.stats.reset()
    for t in range(1, LENGTH):
        reader.cpt_into(t)
    scan_reads = env.stats.logical_reads
    assert mc_reads * 4 < scan_reads


def test_lookup_growth_is_logarithmic(fixture):
    """Doubling the gap adds O(1) pieces: across an exponential ladder
    of gaps the piece count grows by at most 2*(alpha-1) per rung."""
    _, reader, index, alpha, _ = fixture
    ladder = []
    g = 2
    while g <= LENGTH - 4:
        stats = MCLookupStats()
        index.compute_cpt(3, 3 + g, reader, stats=stats)
        ladder.append(stats.pieces)
        g *= 2
    for prev, nxt in zip(ladder, ladder[1:]):
        assert nxt - prev <= 2 * (alpha - 1)
    # And the whole ladder stays far below linear growth.
    assert ladder[-1] < (LENGTH - 4) / 4
