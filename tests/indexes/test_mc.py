"""Unit tests for the MC index (§4.2.2, Algorithm 4): record layout,
metadata, greedy gap traversal, the conditioned variant, and misuse."""

import random

import pytest

from repro.errors import CatalogError, StreamError
from repro.indexes.builder import build_mc, open_mc
from repro.indexes.mc import MCIndex, MCLookupStats, max_level_for
from repro.obs.metrics import MetricsRegistry
from repro.probability import CPT, SparseDistribution
from repro.storage import StorageEnvironment
from repro.streams import (
    Layout,
    MarkovianStream,
    open_reader,
    single_attribute_space,
    write_stream,
)

LENGTH = 40
NUM_STATES = 4


def make_stream(seed: int, length: int = LENGTH,
                num_states: int = NUM_STATES,
                name: str = "s") -> MarkovianStream:
    rng = random.Random(seed)
    space = single_attribute_space(
        "location", [f"S{i}" for i in range(num_states)])

    def row():
        targets = rng.sample(range(num_states), rng.randint(1, num_states))
        weights = [rng.random() + 1e-3 for _ in targets]
        total = sum(weights)
        return SparseDistribution(
            {s: w / total for s, w in zip(targets, weights)})

    marginals = [row()]
    cpts = []
    for _ in range(length - 1):
        cpt = CPT({x: row() for x in marginals[-1].support()})
        cpts.append(cpt)
        marginals.append(cpt.apply(marginals[-1]))
    return MarkovianStream(name, space, marginals, cpts)


@pytest.fixture()
def env(tmp_path):
    with StorageEnvironment(str(tmp_path), page_size=8192) as env:
        yield env


@pytest.fixture()
def reader(env):
    stream = make_stream(3)
    write_stream(env, stream, layout=Layout.SEPARATED)
    return open_reader(env, "s", stream.space)


def build_index(env, reader, alpha):
    return build_mc(env, f"s{alpha}", reader, alpha=alpha)


def stepwise(reader, start, end):
    acc = None
    for t in range(start + 1, end + 1):
        cpt = reader.cpt_into(t)
        acc = cpt if acc is None else acc.compose(cpt)
    return acc


# ---------------------------------------------------------------------------
# Level scheme and construction
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("alpha,length,expected", [
    (2, 40, 5),   # 2^5=32 <= 39 < 64
    (2, 3, 1),
    (2, 2, 0),    # only one CPT: no full level-1 span
    (4, 40, 2),   # 16 <= 39 < 64
    (8, 40, 1),
    (8, 9, 1),    # 8 <= 8: boundary exactly fits
    (8, 8, 0),
])
def test_max_level(alpha, length, expected):
    assert max_level_for(alpha, length) == expected


@pytest.mark.parametrize("alpha", [2, 3, 4, 8])
def test_build_record_count_is_geometric(env, reader, alpha):
    """Records per level l = (L-1) // alpha^l — the geometric series
    bounding total storage by (L-1)/(alpha-1)."""
    index = build_index(env, reader, alpha)
    expected = sum(
        (LENGTH - 1) // alpha ** lvl
        for lvl in range(1, index.max_level + 1)
    )
    count = sum(1 for _ in index.tree.items()) - 1  # minus metadata
    assert count == expected
    assert count < (LENGTH - 1) / (alpha - 1)


def test_every_record_matches_stepwise_compose(env, reader):
    """Each stored span CPT equals the step-by-step composition of the
    base CPTs it covers."""
    index = build_index(env, reader, alpha=2)
    for level in range(1, index.max_level + 1):
        span = 2 ** level
        for start in range(0, LENGTH - 1 - span + 1, span):
            record = index._fetch(level, start)
            want = stepwise(reader, start, start + span)
            assert record.approx_equal(want, tol=1e-12), (level, start)


def test_build_rejects_length_mismatch(env, reader):
    index = MCIndex(env.open_tree("bad__mc"), alpha=2, length=LENGTH + 5)
    with pytest.raises(CatalogError, match="length"):
        index.build(reader)


def test_meta_round_trip_and_verify(env, reader):
    index = build_mc(env, "s", reader, alpha=4)
    meta = index.read_meta()
    assert meta == {"alpha": 4, "length": LENGTH,
                    "max_level": index.max_level, "conditioned": False}
    reopened = open_mc(env, "s", alpha=4, length=LENGTH)
    assert reopened.max_level == index.max_level

    with pytest.raises(CatalogError, match="alpha"):
        MCIndex(env.open_tree("s__mc", create=False),
                alpha=2, length=LENGTH).verify_meta()
    with pytest.raises(CatalogError, match="length"):
        MCIndex(env.open_tree("s__mc", create=False),
                alpha=4, length=LENGTH + 1).verify_meta()
    with pytest.raises(CatalogError, match="conditioned"):
        MCIndex(env.open_tree("s__mc", create=False), alpha=4,
                length=LENGTH, accept_states={0}).verify_meta()


def test_alpha_below_two_rejected(env):
    with pytest.raises(ValueError, match="alpha"):
        MCIndex(env.open_tree("x__mc"), alpha=1, length=LENGTH)


def test_missing_record_raises(env, reader):
    index = MCIndex(env.open_tree("empty__mc"), alpha=2, length=LENGTH)
    with pytest.raises(CatalogError, match="missing record"):
        index._fetch(1, 0)


# ---------------------------------------------------------------------------
# Gap traversal
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("alpha", [2, 4])
@pytest.mark.parametrize("start,end", [
    (0, 39), (0, 32), (1, 2), (3, 29), (7, 8), (5, 37), (0, 1), (17, 23),
])
def test_compute_cpt_equals_stepwise(env, reader, alpha, start, end):
    index = build_index(env, reader, alpha)
    got = index.compute_cpt(start, end, reader)
    assert got.approx_equal(stepwise(reader, start, end), tol=1e-12)


def test_aligned_power_span_is_one_lookup(env, reader):
    index = build_index(env, reader, alpha=2)
    stats = MCLookupStats()
    index.compute_cpt(0, 32, reader, stats=stats)
    assert (stats.lookups, stats.base_cpts_read,
            stats.compositions) == (1, 0, 0)


def test_single_step_gap_reads_one_base_cpt(env, reader):
    index = build_index(env, reader, alpha=2)
    stats = MCLookupStats()
    index.compute_cpt(10, 11, reader, stats=stats)
    assert (stats.lookups, stats.base_cpts_read) == (0, 1)
    assert stats.pieces == 1


def test_min_level_above_max_forces_raw_steps(env, reader):
    """Omitting every level (Fig 11a's extreme) degrades gracefully to
    per-timestep CPT reads — still exact."""
    index = build_index(env, reader, alpha=2)
    stats = MCLookupStats()
    got = index.compute_cpt(4, 20, reader,
                            min_level=index.max_level + 1, stats=stats)
    assert (stats.lookups, stats.base_cpts_read) == (0, 16)
    assert stats.compositions == 15
    assert got.approx_equal(stepwise(reader, 4, 20), tol=1e-12)


def test_compositions_are_pieces_minus_one(env, reader):
    index = build_index(env, reader, alpha=2)
    stats = MCLookupStats()
    index.compute_cpt(3, 37, reader, stats=stats)
    assert stats.compositions == stats.pieces - 1
    assert stats.lookups > 0 and stats.base_cpts_read > 0


@pytest.mark.parametrize("start,end", [(-1, 5), (5, 5), (8, 3), (0, 40)])
def test_out_of_range_span_raises(env, reader, start, end):
    index = build_index(env, reader, alpha=2)
    with pytest.raises(StreamError):
        index.compute_cpt(start, end, reader)


def test_stats_merge_accumulates():
    a = MCLookupStats(lookups=2, compositions=1, base_cpts_read=3)
    a.merge(MCLookupStats(lookups=1, compositions=4, base_cpts_read=5))
    assert (a.lookups, a.compositions, a.base_cpts_read) == (3, 5, 8)
    assert a.pieces == 11


def test_registry_counters_track_traversal(env, reader):
    registry = MetricsRegistry()
    index = MCIndex(env.open_tree("m__mc"), alpha=2, length=LENGTH,
                    registry=registry)
    index.build(reader)
    stats = MCLookupStats()
    index.compute_cpt(3, 37, reader, stats=stats)
    counters = registry.snapshot()["counters"]
    assert counters["mc.lookups{tree=m__mc}"] == stats.lookups
    assert counters["mc.base_cpts{tree=m__mc}"] == stats.base_cpts_read
    assert counters["mc.compositions{tree=m__mc}"] == stats.compositions
    assert counters["mc.records_built{tree=m__mc}"] > 0


# ---------------------------------------------------------------------------
# Conditioned variant (§3.3.2)
# ---------------------------------------------------------------------------

def conditioned_index(env, reader, accept, alpha=2, name="c__mc"):
    index = MCIndex(env.open_tree(name), alpha=alpha, length=LENGTH,
                    accept_states=frozenset(accept))
    index.build(reader)
    return index


def masked_stepwise(reader, start, end, accept):
    """Interior-masked, final-step-unmasked reference composition."""
    acc = None
    for t in range(start + 1, end + 1):
        cpt = reader.cpt_into(t)
        if t != end:
            cpt = cpt.mask_destinations(accept)
        acc = cpt if acc is None else acc.compose(cpt)
    return acc


@pytest.mark.parametrize("start,end", [(0, 39), (3, 29), (7, 8), (0, 1)])
def test_conditioned_cpt_masks_interior_only(env, reader, start, end):
    accept = {0, 2}
    index = conditioned_index(env, reader, accept)
    got = index.compute_conditioned_cpt(start, end, reader)
    assert got.approx_equal(masked_stepwise(reader, start, end, accept),
                            tol=1e-12)


def test_conditioned_cpt_is_substochastic_then_normalizes(env, reader):
    accept = {0, 1, 2}
    index = conditioned_index(env, reader, accept)
    raw = index.compute_conditioned_cpt(0, 8, reader)
    # Lost row mass = probability of leaving the loop: sub-stochastic.
    masses = [row.total_mass for _, row in raw.rows()]
    assert masses, "masked product collapsed to the empty CPT"
    assert any(m < 1.0 - 1e-9 for m in masses)
    norm = index.compute_conditioned_cpt(0, 8, reader, normalize=True)
    assert norm.is_stochastic(tol=1e-9)


def test_conditioned_single_step_is_raw_cpt(env, reader):
    """A length-1 run has no interior: the boundary CPT is unmasked."""
    index = conditioned_index(env, reader, {0})
    got = index.compute_conditioned_cpt(10, 11, reader)
    assert got.approx_equal(reader.cpt_into(11), tol=1e-15)


def test_conditioned_methods_enforce_variant(env, reader):
    plain = build_index(env, reader, alpha=2)
    with pytest.raises(CatalogError, match="not conditioned"):
        plain.compute_conditioned_cpt(0, 5, reader)
    cond = conditioned_index(env, reader, {0})
    with pytest.raises(CatalogError, match="conditioned"):
        cond.compute_cpt(0, 5, reader)
