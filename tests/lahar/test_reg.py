"""Reg operator tests: the vectorized kernel is property-tested against
the pure-Python reference on random streams and random queries, and
both are pinned against hand-computed probabilities on a tiny stream."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lahar import QueryMachine, ReferenceReg, Reg
from repro.probability import CPT, SparseDistribution
from repro.query import parse_query
from repro.streams import MarkovianStream, single_attribute_space

VALUES = ["A", "B", "C", "D", "E"]
SPACE = single_attribute_space("location", VALUES)


def random_stream(seed: int, length: int) -> MarkovianStream:
    rng = random.Random(seed)
    n = len(SPACE)

    def row():
        targets = rng.sample(range(n), rng.randint(1, n))
        weights = [rng.random() + 1e-3 for _ in targets]
        total = sum(weights)
        return SparseDistribution(
            {s: w / total for s, w in zip(targets, weights)})

    marginals = [row()]
    cpts = []
    for _ in range(length - 1):
        cpt = CPT({x: row() for x in marginals[-1].support()})
        cpts.append(cpt)
        marginals.append(cpt.apply(marginals[-1]))
    return MarkovianStream("r", SPACE, marginals, cpts)


@st.composite
def query_texts(draw):
    """Random Regular queries over the 5-value space: 1-4 links, each
    optionally preceded by a (possibly negated) Kleene loop."""
    num_links = draw(st.integers(1, 4))
    links = []
    for i in range(num_links):
        pred = f"location={draw(st.sampled_from(VALUES))}"
        if i > 0 and draw(st.booleans()):
            loop_value = draw(st.sampled_from(VALUES))
            bang = "!" if draw(st.booleans()) else ""
            pred = f"({bang}location={loop_value})* {pred}"
        links.append(pred)
    return " -> ".join(links)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000), length=st.integers(1, 15),
       text=query_texts())
def test_vectorized_matches_reference(seed, length, text):
    stream = random_stream(seed, length)
    query = parse_query(text)
    ref = ReferenceReg(query, SPACE)
    vec = Reg(query, SPACE)
    ref_probs = [ref.initialize(stream.marginal(0))]
    vec_probs = [vec.initialize(stream.marginal(0))]
    for t in range(1, length):
        cpt = stream.cpt_into(t)
        ref_probs.append(ref.update(cpt))
        vec_probs.append(vec.update(cpt))
    for t, (a, b) in enumerate(zip(ref_probs, vec_probs)):
        assert a == pytest.approx(b, abs=1e-9), f"diverged at t={t}"
    assert ref.updates_performed == vec.updates_performed == length - 1


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), text=query_texts(),
       opseed=st.integers(0, 10_000))
def test_span_operations_match_reference(seed, text, opseed):
    """The Algorithm 4/5 entry points (gap spans, independence jumps,
    conditioned loop spans) agree between implementations too."""
    length = 14
    stream = random_stream(seed, length)
    query = parse_query(text)
    rng = random.Random(opseed)
    ref = ReferenceReg(query, SPACE)
    vec = Reg(query, SPACE)
    ref.initialize(stream.marginal(0))
    vec.initialize(stream.marginal(0))
    t = 1
    while t < length - 3:
        mode = rng.choice(["update", "span", "indep", "loopspan"])
        if mode == "update":
            cpt = stream.cpt_into(t)
            a, b = ref.update(cpt), vec.update(cpt)
            t += 1
        elif mode == "span":
            span = rng.randint(2, 3)
            cpt = stream.cpt_into(t)
            for k in range(1, span):
                cpt = cpt.compose(stream.cpt_into(t + k))
            a, b = ref.update_span(cpt, span), vec.update_span(cpt, span)
            t += span
        elif mode == "indep":
            span = rng.randint(2, 3)
            t += span
            marginal = stream.marginal(t - 1)
            a = ref.update_independent(marginal, span)
            b = vec.update_independent(marginal, span)
        else:
            cpt = stream.cpt_into(t)
            loop_state = rng.randrange(max(1, len(query)))
            a = ref.update_loop_span(loop_state, cpt, cpt, 1)
            b = vec.update_loop_span(loop_state, cpt, cpt, 1)
            t += 1
        assert a == pytest.approx(b, abs=1e-9), f"{mode} diverged at t={t}"
    assert ref.updates_performed == vec.updates_performed


@pytest.mark.parametrize("impl", [Reg, ReferenceReg])
def test_two_link_probability_by_hand(impl):
    """P(match ends at t) for A -> B equals the interval probability of
    (x_{t-1}=A, x_t=B)."""
    m0 = SparseDistribution({0: 0.6, 1: 0.4})  # A, B
    c1 = CPT({0: {1: 0.5, 2: 0.5}, 1: {0: 1.0}})
    m1 = c1.apply(m0)
    c2 = CPT({0: {1: 1.0}, 1: {2: 1.0}, 2: {0: 1.0}})
    m2 = c2.apply(m1)
    stream = MarkovianStream("h", SPACE, [m0, m1, m2], [c1, c2])
    reg = impl(parse_query("location=A -> location=B"), SPACE)
    probs = [reg.initialize(stream.marginal(0)),
             reg.update(stream.cpt_into(1)), reg.update(stream.cpt_into(2))]
    assert probs[0] == 0.0  # one timestep cannot complete two links
    assert probs[1] == pytest.approx(
        stream.interval_probability(0, [{0}, {1}]))
    assert probs[2] == pytest.approx(
        stream.interval_probability(1, [{0}, {1}]))


@pytest.mark.parametrize("impl", [Reg, ReferenceReg])
def test_accept_expires_after_one_step(impl):
    """Acceptance means "a match *ends* here": constant mass on B after
    an A->B match keeps re-matching only while A-mass keeps arriving."""
    reg = impl(parse_query("location=A -> location=B"), SPACE)
    reg.initialize(SparseDistribution({0: 1.0}))
    stay_b = CPT({0: {1: 1.0}, 1: {1: 1.0}})
    assert reg.update(stay_b) == pytest.approx(1.0)  # A then B: match
    assert reg.update(stay_b) == pytest.approx(0.0)  # B then B: no new A


def test_query_machine_collapse_keeps_negated_loops():
    machine = QueryMachine(
        parse_query("location=A -> (!location=B)* location=B"), SPACE)
    # NFA state 1 ("A seen") survives a gap only through its negated
    # loop; everything else collapses to the bare start state.
    assert machine.collapse(0b111) == 0b011
    assert machine.collapse(0b100) == 0b001
    machine_plain = QueryMachine(
        parse_query("location=A -> location=B"), SPACE)
    assert machine_plain.collapse(0b111) == 0b001


def test_empty_reg_stays_empty():
    reg = Reg(parse_query("location=A -> location=B"), SPACE)
    # No initialize: updates on an empty kernel emit zero probability.
    assert reg.update(CPT({0: {0: 1.0}})) == 0.0
    assert reg.update_independent(SparseDistribution({0: 1.0})) == 0.0
    assert reg.update_loop_span(1, CPT({0: {0: 1.0}}),
                                CPT({0: {0: 1.0}})) == 0.0
