"""StreamingQuery (standing query / alert) tests."""

import pytest

from repro.lahar import Alert, ReferenceReg, StreamingQuery
from repro.query import parse_query
from repro.streams import routine_stream


@pytest.fixture(scope="module")
def stream():
    return routine_stream("p", num_snippets=8, seed=2)


def test_alerts_match_offline_signal(stream):
    """Streaming evaluation fires exactly where the offline Reg signal
    crosses the threshold."""
    text = "location=Door -> location=Room"
    threshold = 0.05
    ref = ReferenceReg(parse_query(text), stream.space)
    offline = [ref.initialize(stream.marginal(0))]
    for t in range(1, len(stream)):
        offline.append(ref.update(stream.cpt_into(t)))
    expected = {t for t, p in enumerate(offline) if p >= threshold}

    sq = StreamingQuery(stream.space)
    sq.register(parse_query(text), threshold=threshold, name="entered")
    alerts = list(sq.start(stream.marginal(0)))
    for t in range(1, len(stream)):
        alerts.extend(sq.advance(stream.cpt_into(t)))
    assert sq.time == len(stream) - 1
    assert {a.time for a in alerts} == expected
    for alert in alerts:
        assert alert.name == "entered"
        assert alert.probability == pytest.approx(offline[alert.time])


def test_multiple_registrations_fire_independently(stream):
    sq = StreamingQuery(stream.space)
    sq.register(parse_query("location=Door"), threshold=0.5, name="door")
    sq.register(parse_query("location=Room"), threshold=0.5, name="room")
    alerts = list(sq.start(stream.marginal(0)))
    for t in range(1, len(stream)):
        alerts.extend(sq.advance(stream.cpt_into(t)))
    names = {a.name for a in alerts}
    assert "door" in names and "room" in names
    door_times = {a.time for a in alerts if a.name == "door"}
    room_times = {a.time for a in alerts if a.name == "room"}
    assert door_times != room_times


def test_lifecycle_errors(stream):
    sq = StreamingQuery(stream.space)
    with pytest.raises(RuntimeError, match="before start"):
        sq.advance(stream.cpt_into(1))
    sq.register(parse_query("location=Room"))
    assert sq.time is None
    list(sq.start(stream.marginal(0)))
    with pytest.raises(RuntimeError, match="before the stream starts"):
        sq.register(parse_query("location=Door"))


def test_alert_is_immutable():
    alert = Alert("q", 3, 0.5)
    with pytest.raises(AttributeError):
        alert.time = 4
