"""The CLI must work (or fail helpfully) while layers are unbuilt."""

import pytest

from repro.cli import build_parser, main


def test_help_does_not_crash(capsys):
    # Regression: `python -m repro --help` used to die with
    # ModuleNotFoundError because the engine was imported eagerly.
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["--help"])
    assert excinfo.value.code == 0
    assert "query" in capsys.readouterr().out


def test_info_on_empty_database(tmp_path, capsys):
    # Until PR 4 the engine layers were missing and this exited 2 with a
    # "not yet implemented" diagnostic; now the whole stack imports.
    rc = main(["info", str(tmp_path / "db")])
    assert rc == 0
    assert "no streams archived" in capsys.readouterr().out


def test_demo_smoke(tmp_path, capsys):
    db = str(tmp_path / "db")
    rc = main(["demo", db, "--people", "1", "--snippets", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "archived person0" in out
    assert "naive (Alg 1)" in out
    assert "btree (Alg 2)" in out
    assert "MISMATCH" not in out
    # The database was kept (a path was given) and is consistent.
    assert main(["info", db]) == 0
    assert "person0" in capsys.readouterr().out


def test_demo_without_db_path_uses_temp(capsys):
    rc = main(["demo", "--people", "1", "--snippets", "3", "--layout",
               "packed"])
    assert rc == 0
    assert "temp database removed" in capsys.readouterr().out


def test_unknown_command_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["frobnicate"])
    assert excinfo.value.code == 2


def test_fsck_clean_database(tmp_path, capsys):
    from repro.storage import StorageEnvironment

    db = str(tmp_path / "db")
    with StorageEnvironment(db, page_size=256) as env:
        tree = env.open_tree("t")
        tree.bulk_load((f"k{i:03d}".encode(), b"v") for i in range(50))
    assert main(["fsck", db]) == 0
    out = capsys.readouterr().out
    assert "clean" in out and "'t'" in out


def test_fsck_flags_corruption(tmp_path, capsys):
    from repro.storage import StorageEnvironment
    from repro.storage.pager import PAGE_HEADER_SIZE

    db = str(tmp_path / "db")
    with StorageEnvironment(db, page_size=256) as env:
        tree = env.open_tree("t")
        tree.bulk_load((f"k{i:03d}".encode(), b"v") for i in range(200))
    with open(str(tmp_path / "db" / "t.btree"), "r+b") as fh:
        fh.seek(3 * (256 + PAGE_HEADER_SIZE) + PAGE_HEADER_SIZE)
        fh.write(b"\xde\xad\xbe\xef")
    assert main(["fsck", db]) == 1
    assert "ERROR" in capsys.readouterr().out
    assert main(["fsck", "--quiet", db]) == 1
    assert capsys.readouterr().out == ""


def test_fsck_missing_directory(tmp_path, capsys):
    assert main(["fsck", str(tmp_path / "nope")]) == 2
    assert "no such database" in capsys.readouterr().err
