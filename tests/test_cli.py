"""The CLI must work (or fail helpfully) while layers are unbuilt."""

import pytest

from repro.cli import build_parser, main


def test_help_does_not_crash(capsys):
    # Regression: `python -m repro --help` used to die with
    # ModuleNotFoundError because the engine was imported eagerly.
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["--help"])
    assert excinfo.value.code == 0
    assert "query" in capsys.readouterr().out


def test_missing_layer_is_a_clear_error(tmp_path, capsys):
    rc = main(["info", str(tmp_path / "db")])
    assert rc == 2
    err = capsys.readouterr().err
    assert "not yet implemented" in err
    assert "repro." in err


def test_unknown_command_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["frobnicate"])
    assert excinfo.value.code == 2
