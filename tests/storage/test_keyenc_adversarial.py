"""Adversarial key-codec inputs: the decoder must return a complete
tuple or raise KeyEncodingError — never a partial or garbage tuple."""

import pytest

from repro.errors import KeyEncodingError
from repro.storage.keyenc import Desc, decode_key, encode_key


# ----------------------------------------------------------------------
# Edges of the valid domain
# ----------------------------------------------------------------------

def test_empty_tuple_round_trips():
    assert encode_key(()) == b""
    assert decode_key(b"") == ()


def test_empty_string_and_bytes_components():
    for key in [("",), (b"",), ("", ""), (b"", 0, "")]:
        assert decode_key(encode_key(key)) == key
    # An empty payload still sorts before any non-empty one.
    assert encode_key(("",)) < encode_key(("a",))


def test_0xff_saturated_components():
    blob = b"\xff" * 64
    key = (blob, "ÿ" * 8, blob)
    assert decode_key(encode_key(key)) == key
    # 0xFF bytes must not collide with the escape machinery for 0x00.
    tricky = (b"\x00\xff\x00\xff\xff\x00",)
    assert decode_key(encode_key(tricky)) == tricky


def test_nul_heavy_components_round_trip_in_order():
    keys = [(b"\x00",), (b"\x00\x00",), (b"\x00\x01",), (b"\x01",)]
    encoded = [encode_key(k) for k in keys]
    assert encoded == sorted(encoded)  # order preserved
    assert [decode_key(e) for e in encoded] == keys


def test_max_length_components():
    # Far beyond any real key the indexes build; must stay invertible.
    key = ("x" * 4096, b"\x00" * 4096, 2**63 - 1, -(2**63))
    assert decode_key(encode_key(key)) == key


def test_int_extremes_and_float_edges():
    key = (-(2**63), 2**63 - 1, float("-inf"), -0.0, 0.0, float("inf"))
    assert decode_key(encode_key(key)) == key
    assert encode_key((-(2**63),)) < encode_key((0,)) \
        < encode_key((2**63 - 1,))


# ----------------------------------------------------------------------
# Truncated and corrupt buffers: KeyEncodingError, never partial tuples
# ----------------------------------------------------------------------

def every_truncation(data):
    return [data[:n] for n in range(len(data))]


@pytest.mark.parametrize("key", [
    (42,),
    (3.14,),
    ("street", 7),
    (b"bytes\x00more", -1),
    (Desc(9), "tail"),
    (None, 1, 2.5, "s", b"b", Desc(0.5)),
])
def test_truncations_never_yield_partial_tuples(key):
    data = encode_key(key)
    for prefix in every_truncation(data):
        try:
            decoded = decode_key(prefix)
        except KeyEncodingError:
            continue  # the only acceptable failure mode
        # A truncation can accidentally be a *complete* valid encoding
        # (e.g. cutting a byte string at its escape boundary), but then
        # the decode must be the exact inverse of encode for those
        # bytes — re-encoding reproduces the buffer, so no mangled or
        # partial component was ever accepted. (Desc decodes to its
        # plain value by contract, so re-wrap from the original shape.)
        rewrapped = tuple(
            Desc(value) if isinstance(original, Desc) else value
            for value, original in zip(decoded, key)
        )
        assert encode_key(rewrapped) == prefix


def test_unknown_tag_raises():
    with pytest.raises(KeyEncodingError):
        decode_key(b"\x7f")
    with pytest.raises(KeyEncodingError):
        decode_key(b"\xff\x00\x00")


def test_missing_terminator_raises():
    # A string component whose 0x00 terminator was cut off.
    with pytest.raises(KeyEncodingError):
        decode_key(b"\x30abc")


def test_dangling_escape_raises():
    # 0x00 0xFF is the escape for a literal NUL; ending the buffer on
    # the escape leaves the component unterminated.
    with pytest.raises(KeyEncodingError):
        decode_key(b"\x30ab\x00\xff")


def test_bad_desc_inner_tag_raises():
    data = bytearray(encode_key((Desc(5),)))
    data[1] = 0x00  # inner tag byte: 0xFF - 0x00 = garbage
    with pytest.raises(KeyEncodingError):
        decode_key(bytes(data))


def test_truncated_desc_payload_raises():
    data = encode_key((Desc(5),))
    with pytest.raises(KeyEncodingError):
        decode_key(data[:4])


def test_encode_rejects_bad_inputs():
    with pytest.raises(KeyEncodingError):
        encode_key("bare string")  # must be a tuple of components
    with pytest.raises(KeyEncodingError):
        encode_key((object(),))
    with pytest.raises(KeyEncodingError):
        encode_key((float("nan"),))
    with pytest.raises(KeyEncodingError):
        encode_key((Desc("strings-not-fixed-width"),))
    with pytest.raises(KeyEncodingError):
        encode_key((2**63,))
