"""The write-ahead log: framing, commit boundaries, torn tails."""

import pytest

from repro.errors import RecoveryError
from repro.storage.wal import WriteAheadLog, _FILE_HDR


def make_wal(tmp_path, page_size=64):
    wal = WriteAheadLog(str(tmp_path / "t.wal"))
    wal.initialize(page_size)
    return wal


def frame(byte, size=64):
    return bytes([byte]) * size


def test_fresh_log_is_a_bare_header(tmp_path):
    wal = make_wal(tmp_path)
    assert not wal.pending
    assert wal.size == _FILE_HDR.size


def test_committed_frames_scan_back(tmp_path):
    wal = make_wal(tmp_path)
    wal.append(1, frame(0xAA), lsn=1)
    wal.append(2, frame(0xBB), lsn=2)
    wal.commit(lsn=2)
    committed, seen, _ = wal._scan()
    assert seen == 3  # two page records + the commit record
    assert committed == {1: (1, frame(0xAA)), 2: (2, frame(0xBB))}


def test_uncommitted_records_are_discarded(tmp_path):
    wal = make_wal(tmp_path)
    wal.append(1, frame(0xAA), lsn=1)
    wal.commit(lsn=1)
    wal.append(2, frame(0xBB), lsn=2)  # never committed
    committed, _, _ = wal._scan()
    assert 1 in committed and 2 not in committed


def test_later_commit_wins_per_page(tmp_path):
    wal = make_wal(tmp_path)
    wal.append(1, frame(0x01), lsn=1)
    wal.commit(lsn=1)
    wal.append(1, frame(0x02), lsn=2)
    wal.commit(lsn=2)
    committed, _, _ = wal._scan()
    assert committed[1] == (2, frame(0x02))


def test_torn_tail_stops_the_scan(tmp_path):
    wal = make_wal(tmp_path)
    wal.append(1, frame(0xAA), lsn=1)
    wal.commit(lsn=1)
    # Simulate a torn append: half a record of garbage at the end.
    wal._file.seek(0, 2)
    wal._file.write(b"\x01garbage")
    wal._size += 8
    committed, _, valid_end = wal._scan()
    assert committed == {1: (1, frame(0xAA))}
    assert valid_end < wal.size


def test_corrupted_record_invalidates_its_commit(tmp_path):
    wal = make_wal(tmp_path)
    wal.append(1, frame(0xAA), lsn=1)
    wal.commit(lsn=1)
    # Flip a payload byte of the first record: its CRC now fails, so
    # the scan must stop *before* the commit record that covered it.
    wal._file.seek(_FILE_HDR.size + 30)
    wal._file.write(b"\xff")
    committed, _, _ = wal._scan()
    assert committed == {}


def test_recover_into_writes_frames_at_offsets(tmp_path):
    wal = make_wal(tmp_path, page_size=64)
    wal.append(2, frame(0xCC), lsn=5)
    wal.commit(lsn=5)
    main = tmp_path / "t"
    with open(main, "w+b") as fh:
        applied = wal.recover_into(fh, frame_size=64)
        assert applied == 1
        fh.seek(2 * 64)
        assert fh.read(64) == frame(0xCC)


def test_recovery_is_idempotent(tmp_path):
    wal = make_wal(tmp_path, page_size=64)
    wal.append(1, frame(0xDD), lsn=1)
    wal.commit(lsn=1)
    with open(tmp_path / "t", "w+b") as fh:
        wal.recover_into(fh, frame_size=64)
        wal.recover_into(fh, frame_size=64)  # replaying again is safe
        fh.seek(64)
        assert fh.read(64) == frame(0xDD)


def test_reset_truncates_to_header(tmp_path):
    wal = make_wal(tmp_path)
    wal.append(1, frame(0xAA), lsn=1)
    wal.commit(lsn=1)
    assert wal.pending
    wal.reset()
    assert not wal.pending
    assert wal.size == _FILE_HDR.size


def test_geometry_mismatch_with_pending_records_refuses(tmp_path):
    wal = make_wal(tmp_path, page_size=64)
    wal.append(1, frame(0xAA), lsn=1)
    wal.commit(lsn=1)
    wal.close()
    reopened = WriteAheadLog(str(tmp_path / "t.wal"))
    with pytest.raises(RecoveryError):
        reopened.initialize(128)
