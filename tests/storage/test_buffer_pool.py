"""LRU behavior, pinning, write-back, and the logical/physical split."""

import pytest

from repro.errors import StorageError
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.storage.stats import IOStats


class RawClient:
    """A minimal pool client: pages decode to mutable bytearrays."""

    def __init__(self, pager):
        self.pager = pager
        self.pool_key = pager.path

    def decode_page(self, page_id, raw):
        return bytearray(raw)

    def encode_page(self, node):
        return bytes(node)


@pytest.fixture
def setup(tmp_path):
    stats = IOStats()
    pager = Pager(str(tmp_path / "f.db"), page_size=128, stats=stats)
    client = RawClient(pager)
    pages = []
    for i in range(8):
        page = pager.allocate()
        pager.write(page, bytes([i]) * 16)
        pages.append(page)
    stats.reset()
    yield stats, pager, client, pages
    pager.close()


def test_logical_vs_physical_counts(setup):
    stats, _, client, pages = setup
    pool = BufferPool(4, stats)
    for _ in range(5):
        pool.get(client, pages[0])
    assert stats.logical_reads == 5
    assert stats.physical_reads == 1  # one miss, four hits
    assert stats.hit_rate == pytest.approx(0.8)


def test_lru_eviction_order(setup):
    stats, _, client, pages = setup
    pool = BufferPool(3, stats)
    pool.get(client, pages[0])
    pool.get(client, pages[1])
    pool.get(client, pages[2])
    pool.get(client, pages[0])  # refresh page 0: page 1 is now LRU
    pool.get(client, pages[3])  # evicts page 1
    assert pool.contains(client, pages[0])
    assert not pool.contains(client, pages[1])
    assert pool.contains(client, pages[2])
    assert pool.contains(client, pages[3])
    # Re-reading the evicted page is a physical miss again.
    before = stats.physical_reads
    pool.get(client, pages[1])
    assert stats.physical_reads == before + 1


def test_pin_prevents_eviction(setup):
    stats, _, client, pages = setup
    pool = BufferPool(3, stats)
    pool.get(client, pages[0])
    pool.pin(client, pages[0])
    for page in pages[1:6]:  # cycle far more pages than capacity
        pool.get(client, page)
    assert pool.contains(client, pages[0])
    pool.unpin(client, pages[0])
    pool.get(client, pages[6])
    pool.get(client, pages[7])
    assert not pool.contains(client, pages[0])


def test_all_pinned_pool_exhausts(setup):
    stats, _, client, pages = setup
    pool = BufferPool(2, stats)
    for page in pages[:2]:
        pool.get(client, page)
        pool.pin(client, page)
    with pytest.raises(StorageError, match="pinned"):
        pool.get(client, pages[2])


def test_dirty_write_back_on_eviction(setup):
    stats, pager, client, pages = setup
    pool = BufferPool(2, stats)
    node = pool.get(client, pages[0])
    node[:7] = b"mutated"
    pool.mark_dirty(client, pages[0])
    pool.get(client, pages[1])
    pool.get(client, pages[2])
    pool.get(client, pages[3])  # page 0 evicted along the way
    assert not pool.contains(client, pages[0])
    assert pager.read(pages[0])[:7] == b"mutated"


def test_clean_eviction_skips_write(setup):
    stats, _, client, pages = setup
    pool = BufferPool(2, stats)
    for page in pages[:4]:
        pool.get(client, page)
    assert stats.physical_writes == 0


def test_flush_and_evict_all(setup):
    stats, pager, client, pages = setup
    pool = BufferPool(8, stats)
    node = pool.get(client, pages[5])
    node[:5] = b"fresh"
    pool.mark_dirty(client, pages[5])
    pool.evict_all()
    assert pool.resident == 0
    assert pager.read(pages[5])[:5] == b"fresh"
    # After the drop, the next access is physical again (cold cache).
    before = stats.physical_reads
    pool.get(client, pages[5])
    assert stats.physical_reads == before + 1


def test_put_new_serves_without_physical_read(setup):
    stats, pager, client, pages = setup
    pool = BufferPool(4, stats)
    page = pager.allocate()
    pool.put_new(client, page, bytearray(b"built in memory"))
    before = stats.physical_reads
    node = pool.get(client, page)
    assert bytes(node) == b"built in memory"
    assert stats.physical_reads == before
    pool.flush()
    assert pager.read(page).rstrip(b"\x00") == b"built in memory"


def test_discard_drops_without_write_back(setup):
    stats, pager, client, pages = setup
    pool = BufferPool(4, stats)
    node = pool.get(client, pages[0])
    node[:4] = b"lost"
    pool.mark_dirty(client, pages[0])
    pool.discard(client)
    assert pool.resident == 0
    assert pager.read(pages[0])[:4] != b"lost"


# ----------------------------------------------------------------------
# Eviction / flush / logical-write accounting (IOStats extension)
# ----------------------------------------------------------------------
def test_eviction_counter_counts_capacity_evictions(setup):
    stats, _, client, pages = setup
    pool = BufferPool(2, stats)
    for page in pages[:5]:
        pool.get(client, page)
    # Capacity 2, five distinct pages -> three frames pushed out.
    assert stats.evictions == 3


def test_evict_all_counts_dropped_frames(setup):
    stats, _, client, pages = setup
    pool = BufferPool(8, stats)
    for page in pages[:4]:
        pool.get(client, page)
    pool.pin(client, pages[0])
    pool.evict_all()
    assert stats.evictions == 3  # the pinned frame survives, uncounted
    assert pool.resident == 1
    pool.unpin(client, pages[0])


def test_flush_counter_counts_dirty_write_backs_only(setup):
    stats, _, client, pages = setup
    pool = BufferPool(8, stats)
    for page in pages[:4]:
        pool.get(client, page)
    pool.mark_dirty(client, pages[0])
    pool.mark_dirty(client, pages[1])
    pool.flush()
    assert stats.flushes == 2  # clean frames never count
    pool.flush()
    assert stats.flushes == 2  # write-back cleared the dirty bits


def test_eviction_of_dirty_frame_counts_flush(setup):
    stats, _, client, pages = setup
    pool = BufferPool(1, stats)
    pool.get(client, pages[0])
    pool.mark_dirty(client, pages[0])
    pool.get(client, pages[1])  # evicts the dirty frame
    assert stats.evictions == 1
    assert stats.flushes == 1
    assert stats.physical_writes == 1


def test_logical_writes_count_mutation_requests(setup):
    stats, pager, client, pages = setup
    pool = BufferPool(8, stats)
    pool.get(client, pages[0])
    pool.mark_dirty(client, pages[0])
    pool.mark_dirty(client, pages[0])  # every mutation event counts
    page = pager.allocate()
    pool.put_new(client, page, bytearray(b"new"))
    assert stats.logical_writes == 3
    assert stats.physical_writes == 0  # nothing written back yet


def test_pool_metric_counters_mirror_behavior(setup):
    from repro.obs import MetricsRegistry

    stats, _, client, pages = setup
    registry = MetricsRegistry()
    pool = BufferPool(2, stats, metrics=registry)
    for page in pages[:3]:
        pool.get(client, page)
    pool.get(client, pages[2])  # hit
    pool.pin(client, pages[2])
    pool.unpin(client, pages[2])
    counters = registry.snapshot()["counters"]
    assert counters["pool.misses"] == 3
    assert counters["pool.hits"] == 1
    assert counters["pool.evictions"] == 1
    assert counters["pool.pins"] == 1
    assert counters["pool.unpins"] == 1
    assert registry.snapshot()["gauges"]["pool.resident"] == 2


# ----------------------------------------------------------------------
# hit_rate edge cases
# ----------------------------------------------------------------------
def test_hit_rate_with_no_reads_is_one():
    assert IOStats().hit_rate == 1.0


def test_hit_rate_all_misses_is_zero(setup):
    stats, _, client, pages = setup
    pool = BufferPool(1, stats)
    pool.get(client, pages[0])
    pool.get(client, pages[1])
    assert stats.hit_rate == 0.0


def test_hit_rate_never_negative():
    # Physical reads can exceed logical reads (e.g. free-list walks and
    # header reads bypass the pool); the rate must clamp at zero.
    stats = IOStats(logical_reads=2, physical_reads=5)
    assert stats.hit_rate == 0.0


def test_snapshot_delta_reset_cover_all_fields():
    from dataclasses import asdict

    stats = IOStats(logical_reads=7, physical_reads=3, physical_writes=2,
                    logical_writes=5, evictions=4, flushes=1)
    snap = stats.snapshot()
    assert asdict(snap) == asdict(stats)
    stats.logical_writes += 2
    stats.evictions += 1
    stats.flushes += 3
    delta = stats.delta(snap)
    assert asdict(delta) == {
        "logical_reads": 0, "physical_reads": 0, "physical_writes": 0,
        "logical_writes": 2, "evictions": 1, "flushes": 3,
    }
    stats.reset()
    assert asdict(stats) == asdict(IOStats())
    assert "evictions" in stats.summary()
