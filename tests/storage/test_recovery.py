"""Crash recovery: committed state survives, uncommitted state rolls
back, and the environment shuts down cleanly either way."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.storage import StorageEnvironment
from repro.storage.faults import FaultInjector, FaultRule, SimulatedCrash


def tree_state(tree):
    return dict(tree.items())


def build(tmp_path, faults=None, **kw):
    kw.setdefault("page_size", 256)
    kw.setdefault("pool_pages", 16)
    kw.setdefault("metrics", False)
    return StorageEnvironment(str(tmp_path / "db"), faults=faults, **kw)


def test_crash_rolls_back_to_last_flush(tmp_path):
    inj = FaultInjector()
    env = build(tmp_path, faults=inj)
    tree = env.open_tree("t")
    tree.bulk_load((f"k{i:03d}".encode(), b"committed")
                   for i in range(100))  # bulk_load flushes
    for i in range(100, 150):
        tree.put(f"k{i:03d}".encode(), b"uncommitted")
    inj.crash()  # power cut before any flush of the puts
    env.close()
    assert env.close_errors  # the crashed handles could not flush

    env2 = build(tmp_path)
    recovered = tree_state(env2.open_tree("t", create=False))
    assert recovered == {f"k{i:03d}".encode(): b"committed"
                         for i in range(100)}
    assert env2.fsck().clean
    env2.close()


def test_flushed_state_survives_crash(tmp_path):
    inj = FaultInjector()
    env = build(tmp_path, faults=inj)
    tree = env.open_tree("t")
    tree.bulk_load((f"k{i:03d}".encode(), b"v") for i in range(50))
    tree.put(b"extra", b"flushed")
    tree.flush()
    inj.crash()
    env.close()

    env2 = build(tmp_path)
    recovered = tree_state(env2.open_tree("t", create=False))
    assert recovered[b"extra"] == b"flushed"
    assert len(recovered) == 51
    env2.close()


def test_torn_checkpoint_recovers_from_wal(tmp_path):
    # The fault tears an in-place page write of the bulk load's
    # checkpoint (creation uses checkpoint.write hits 1-4): the main
    # file is damaged mid-write, but the WAL committed everything just
    # before, so recovery rebuilds it.
    inj = FaultInjector([FaultRule("checkpoint.write", 6, "torn")], seed=3)
    env = build(tmp_path, faults=inj)
    tree = env.open_tree("t")
    with pytest.raises(SimulatedCrash):
        tree.bulk_load((f"k{i:03d}".encode(), b"v" * 40)
                       for i in range(120))
    inj.crash()
    env.close()

    env2 = build(tmp_path)
    recovered = tree_state(env2.open_tree("t", create=False))
    assert recovered == {f"k{i:03d}".encode(): b"v" * 40
                         for i in range(120)}
    assert env2.fsck().clean
    env2.close()


def test_committed_but_uncheckpointed_state_recovers(tmp_path):
    env = build(tmp_path)
    tree = env.open_tree("t")
    tree.put(b"a", b"1")
    env.close()
    # Crash after the WAL commit fsync but before the checkpoint's
    # first in-place write: the commit is durable only in the log.
    inj = FaultInjector([FaultRule("checkpoint.write", 1, "crash")])
    env = build(tmp_path, faults=inj)
    tree = env.open_tree("t", create=False)
    tree.put(b"b", b"2")
    with pytest.raises(SimulatedCrash):
        tree.flush()
    inj.crash()
    env.close()

    env2 = build(tmp_path)
    recovered = tree_state(env2.open_tree("t", create=False))
    assert recovered == {b"a": b"1", b"b": b"2"}  # the commit was durable
    env2.close()


def test_main_file_lost_before_first_checkpoint(tmp_path):
    # Creation order is WAL commit, then checkpoint: crash the very
    # first checkpoint fsync and the durable main file is still empty —
    # the committed meta page exists only in the log. Reopening must
    # recreate the file from the WAL, not fail or silently start over.
    import os

    from repro.storage import Pager

    inj = FaultInjector([FaultRule("checkpoint.fsync", 1, "crash")])
    path = str(tmp_path / "f")
    with pytest.raises(SimulatedCrash):
        Pager(path, page_size=128, faults=inj)
    inj.crash()
    assert os.path.getsize(path) == 0
    pager = Pager(path, page_size=128, create=False)
    assert pager.num_pages == 1  # the committed (empty) geometry
    pager.close()


def test_crash_during_recovery_is_recoverable(tmp_path):
    # First crash: committed WAL, unfinished checkpoint (hit 5 is the
    # first page write of the bulk load's checkpoint; 1-4 are creation).
    inj = FaultInjector([FaultRule("checkpoint.write", 5, "crash")])
    env = build(tmp_path, faults=inj)
    tree = env.open_tree("t")
    with pytest.raises(SimulatedCrash):
        tree.bulk_load((f"k{i:03d}".encode(), b"v") for i in range(80))
    inj.crash()
    env.close()

    # Second crash: during the recovery replay itself.
    inj2 = FaultInjector([FaultRule("recover.apply", 2, "crash")])
    with pytest.raises(SimulatedCrash):
        build(tmp_path, faults=inj2).open_tree("t", create=False)
    inj2.crash()

    # Third attempt: clean recovery must still converge.
    env3 = build(tmp_path)
    recovered = tree_state(env3.open_tree("t", create=False))
    assert recovered == {f"k{i:03d}".encode(): b"v" for i in range(80)}
    assert env3.fsck().clean
    env3.close()


def test_recovery_emits_metrics_and_span(tmp_path):
    inj = FaultInjector([FaultRule("checkpoint.write", 5, "crash")])
    env = build(tmp_path, faults=inj)
    tree = env.open_tree("t")
    with pytest.raises(SimulatedCrash):
        tree.bulk_load((f"k{i:03d}".encode(), b"v") for i in range(60))
    inj.crash()
    env.close()

    metrics = MetricsRegistry()
    env2 = StorageEnvironment(str(tmp_path / "db"), page_size=256,
                              metrics=metrics)
    env2.open_tree("t", create=False)
    assert metrics.counter("wal.recoveries").value >= 1
    assert metrics.counter("wal.pages_applied").value > 0
    snapshot = metrics.snapshot()
    assert "span.wal.recover.ms" in snapshot["histograms"]
    env2.close()


# ----------------------------------------------------------------------
# Environment close (satellite regression tests)
# ----------------------------------------------------------------------

def test_close_is_idempotent(tmp_path):
    env = build(tmp_path)
    env.open_tree("t").put(b"a", b"1")
    env.close()
    env.close()
    env.close()
    assert env.close_errors == []


def test_close_after_crash_never_raises(tmp_path):
    inj = FaultInjector()
    env = build(tmp_path, faults=inj)
    env.open_tree("t").put(b"a", b"1")
    env.open_tree("u").put(b"b", b"2")
    inj.crash()
    env.close()  # must swallow the dead handles, not raise
    assert len(env.close_errors) == 2  # one per tree, both reported
    env.close()  # and stay idempotent
    assert len(env.close_errors) == 2


def test_close_error_names_the_tree(tmp_path):
    inj = FaultInjector()
    env = build(tmp_path, faults=inj)
    env.open_tree("only").put(b"a", b"1")
    inj.crash()
    env.close()
    assert env.close_errors and env.close_errors[0].startswith("only:")
