"""Page allocation, free-list reuse, and file-format validation."""

import pytest

from repro.errors import PageError, StorageError
from repro.storage.pager import Pager
from repro.storage.stats import IOStats


def test_allocate_write_read_roundtrip(tmp_path):
    with Pager(str(tmp_path / "p.db"), page_size=256) as pager:
        a = pager.allocate()
        b = pager.allocate()
        assert (a, b) == (1, 2)  # page 0 is the meta page
        pager.write(a, b"alpha")
        pager.write(b, b"beta")
        assert pager.read(a).rstrip(b"\x00") == b"alpha"
        assert pager.read(b).rstrip(b"\x00") == b"beta"
        assert pager.read(a) != pager.read(b)
        assert len(pager.read(a)) == 256


def test_free_list_reuse_before_growth(tmp_path):
    with Pager(str(tmp_path / "p.db"), page_size=256) as pager:
        pages = [pager.allocate() for _ in range(5)]
        grown = pager.num_pages
        pager.free(pages[2])
        pager.free(pages[4])
        # LIFO reuse, no file growth.
        assert pager.allocate() == pages[4]
        assert pager.allocate() == pages[2]
        assert pager.num_pages == grown
        # Exhausted free list extends the file again.
        assert pager.allocate() == grown


def test_meta_persists_across_reopen(tmp_path):
    path = str(tmp_path / "p.db")
    with Pager(path, page_size=512) as pager:
        keep = pager.allocate()
        pager.free(pager.allocate())
        pager.write(keep, b"persisted")
        high_water = pager.num_pages
    with Pager(path) as pager:
        assert pager.page_size == 512
        assert pager.num_pages == high_water
        assert pager.read(keep).rstrip(b"\x00") == b"persisted"
        # The free list survived too.
        assert pager.allocate() == high_water - 1


def test_page_size_mismatch_fails_loudly(tmp_path):
    path = str(tmp_path / "p.db")
    Pager(path, page_size=256).close()
    with pytest.raises(PageError, match="page"):
        Pager(path, page_size=512)


def test_bad_magic_fails_loudly(tmp_path):
    path = str(tmp_path / "p.db")
    with open(path, "wb") as fh:
        fh.write(b"not a caldera file" * 20)
    with pytest.raises(PageError, match="magic"):
        Pager(path)


def test_out_of_range_and_oversized_writes_rejected(tmp_path):
    with Pager(str(tmp_path / "p.db"), page_size=128) as pager:
        page = pager.allocate()
        with pytest.raises(PageError):
            pager.read(page + 1)
        with pytest.raises(PageError):
            pager.read(0)  # the meta page is not client-addressable
        with pytest.raises(PageError):
            pager.write(page, b"x" * 129)


def test_missing_file_without_create(tmp_path):
    with pytest.raises(StorageError):
        Pager(str(tmp_path / "absent.db"), create=False)


def test_physical_io_is_counted(tmp_path):
    stats = IOStats()
    with Pager(str(tmp_path / "p.db"), page_size=256, stats=stats) as pager:
        page = pager.allocate()
        writes_before = stats.physical_writes
        pager.write(page, b"data")
        assert stats.physical_writes == writes_before + 1
        reads_before = stats.physical_reads
        pager.read(page)
        pager.read(page)  # the pager has no cache: every read is physical
        assert stats.physical_reads == reads_before + 2
