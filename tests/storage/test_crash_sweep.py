"""The headline crash test: a deterministic sweep of single-fault
schedules over a mixed workload. For every (failpoint, hit, action)
the workload runs until the fault, the "machine" loses its unsynced
bytes, and the reopened environment must hold exactly one of the
workload's committed states — at least the last one whose flush
returned — with a clean fsck. No subprocesses, no timing, no luck.
"""


from repro.errors import StorageError
from repro.storage import StorageEnvironment
from repro.storage.faults import (
    FaultInjector,
    SimulatedCrash,
    enumerate_schedules,
)

PAGE_SIZE = 256
POOL_PAGES = 8
SWEEP_SEEDS = (0, 1)
MAX_HITS_PER_SITE = 6


def workload(env, mark):
    """A small but structurally rich history: bulk load, upserts,
    deletes, overflow values. ``mark(state)`` is called right after
    each flush with the dict the tree must hold if that flush's commit
    proves durable."""
    state = {}
    tree = env.open_tree("t")
    mark(dict(state))  # creation flushed an empty tree

    items = [(f"k{i:04d}".encode(), bytes([i % 251]) * (20 + i % 60))
             for i in range(90)]
    tree.bulk_load(items)  # bulk_load flushes
    state.update(items)
    mark(dict(state))

    for i in range(0, 90, 3):
        key = f"k{i:04d}".encode()
        tree.put(key, b"updated" * 4)
        state[key] = b"updated" * 4
    for i in range(1, 90, 9):
        key = f"k{i:04d}".encode()
        tree.delete(key)
        del state[key]
    tree.flush()
    mark(dict(state))

    # Overflow values (> page/4 spills into chained pages).
    for i in range(4):
        key = f"big{i}".encode()
        value = bytes([65 + i]) * (PAGE_SIZE * 2 + i * 37)
        tree.put(key, value)
        state[key] = value
    tree.delete(b"big1")
    del state[b"big1"]
    tree.flush()
    mark(dict(state))


def run_once(dirname, injector):
    """Run the workload under ``injector``; returns (marks, completed)
    where ``completed`` counts flushes that returned successfully."""
    marks = []
    env = StorageEnvironment(dirname, page_size=PAGE_SIZE,
                             pool_pages=POOL_PAGES, metrics=False,
                             faults=injector)
    try:
        workload(env, lambda s: marks.append(s))
        env.close()
        if env.close_errors:
            raise OSError(env.close_errors[0])
        return marks, len(marks), True
    except (OSError, SimulatedCrash):
        return marks, len(marks), False


def recovered_state(dirname):
    """Reopen cleanly and read back everything, fsck included. Returns
    None when the tree never committed its creation."""
    env = StorageEnvironment(dirname, page_size=PAGE_SIZE,
                             pool_pages=POOL_PAGES, metrics=False)
    try:
        try:
            tree = env.open_tree("t", create=False)
        except StorageError:
            return None  # crashed before the creation commit
        state = dict(tree.items())
        report = env.fsck()
        assert report.clean, (dirname, report.all_errors()[:4])
        return state
    finally:
        env.close()
        assert not env.close_errors


def baseline_marks_and_hits(tmp_path):
    probe = FaultInjector()  # unarmed: counts failpoint hits
    base_dir = str(tmp_path / "baseline")
    marks, completed, finished = run_once(base_dir, probe)
    assert finished and completed == len(marks) == 4
    # The no-fault run must itself verify.
    assert recovered_state(base_dir) == marks[-1]
    return marks, probe.hits


def test_seeded_crash_point_sweep(tmp_path):
    marks, site_hits = baseline_marks_and_hits(tmp_path)
    schedules = enumerate_schedules(site_hits,
                                    max_hits_per_site=MAX_HITS_PER_SITE)
    total = len(schedules) * len(SWEEP_SEEDS)
    assert total >= 200, (total, site_hits)

    failures = []
    for seed in SWEEP_SEEDS:
        for n, rule in enumerate(schedules):
            dirname = str(tmp_path / f"s{seed}_{n}")
            injector = FaultInjector([rule], seed=seed)
            run_marks, completed, finished = run_once(dirname, injector)
            if finished and not injector.fired:
                failures.append((seed, rule.label(), "never fired"))
                continue
            assert run_marks == marks[:completed]  # deterministic prefix
            injector.crash()  # drop every unsynced byte everywhere
            state = recovered_state(dirname)
            # Zero committed-key loss: the recovered state must be the
            # last mark whose flush returned, or — if the fault struck
            # mid-flush after its commit became durable — the very next
            # one. Never anything earlier, later, or in between.
            if finished:
                acceptable = marks[-1:]
            else:
                acceptable = marks[max(0, completed - 1):completed + 1]
            if state is None:
                if completed > 0:
                    failures.append((seed, rule.label(),
                                     "committed tree vanished"))
            elif state not in acceptable:
                failures.append((seed, rule.label(),
                                 f"recovered state matches no mark near "
                                 f"{completed}"))
    assert not failures, failures[:10]


def test_sweep_is_deterministic(tmp_path):
    """Same rule, same seed, different directory: byte-identical fault
    behavior (fired labels and recovered contents)."""
    _, site_hits = baseline_marks_and_hits(tmp_path)
    rule = next(r for r in enumerate_schedules(site_hits)
                if r.site == "wal.append" and r.action == "torn")

    outcomes = []
    for run in range(2):
        dirname = str(tmp_path / f"det{run}")
        injector = FaultInjector([rule], seed=42)
        run_once(dirname, injector)
        injector.crash()
        outcomes.append((tuple(injector.fired),
                         recovered_state(dirname)))
    assert outcomes[0] == outcomes[1]
