"""The fault-injection layer itself must be trustworthy: durable vs
volatile bytes, deterministic schedules, honest failure modes."""

import errno

import pytest

from repro.storage.faults import (
    ACTIONS,
    FaultInjector,
    FaultRule,
    SimulatedCrash,
    enumerate_schedules,
)


# ----------------------------------------------------------------------
# FaultyFile durability semantics
# ----------------------------------------------------------------------

def test_unsynced_bytes_are_lost_on_crash(tmp_path):
    path = str(tmp_path / "f")
    inj = FaultInjector()
    fh = inj.open(path, "w+b")
    fh.write(b"durable")
    fh.fsync()
    fh.write(b" volatile")
    inj.crash()
    with open(path, "rb") as plain:
        assert plain.read() == b"durable"


def test_synced_bytes_survive_crash(tmp_path):
    path = str(tmp_path / "f")
    inj = FaultInjector()
    fh = inj.open(path, "w+b")
    fh.write(b"abc")
    fh.fsync()
    inj.crash()
    with open(path, "rb") as plain:
        assert plain.read() == b"abc"


def test_crashed_handle_raises_eio(tmp_path):
    inj = FaultInjector()
    fh = inj.open(str(tmp_path / "f"), "w+b")
    inj.crash()
    for op in (lambda: fh.write(b"x"), lambda: fh.read(),
               lambda: fh.seek(0), fh.flush, fh.fsync):
        with pytest.raises(OSError) as excinfo:
            op()
        assert excinfo.value.errno == errno.EIO


def test_patch_durable_survives_crash(tmp_path):
    path = str(tmp_path / "f")
    inj = FaultInjector()
    fh = inj.open(path, "w+b")
    fh.write(b"0123456789")
    fh.fsync()
    fh.patch_durable(4, b"XX")  # a torn write's surviving prefix
    inj.crash()
    with open(path, "rb") as plain:
        assert plain.read() == b"0123XX6789"


def test_reopen_preserves_existing_content_as_durable(tmp_path):
    path = str(tmp_path / "f")
    with open(path, "wb") as plain:
        plain.write(b"seed")
    inj = FaultInjector()
    fh = inj.open(path, "r+b")
    fh.seek(0, 2)
    fh.write(b"+new")
    inj.crash()
    with open(path, "rb") as plain:
        assert plain.read() == b"seed"  # the +new was never fsynced


# ----------------------------------------------------------------------
# Failpoints
# ----------------------------------------------------------------------

def test_unarmed_injector_only_counts(tmp_path):
    inj = FaultInjector()
    for _ in range(3):
        inj.fire("site.a")
    inj.fire("site.b")
    assert inj.hits == {"site.a": 3, "site.b": 1}
    assert inj.fired == []


def test_rule_fires_at_exact_hit():
    inj = FaultInjector([FaultRule("s", 2, "error")])
    inj.fire("s")  # hit 1: armed at 2, passes
    with pytest.raises(OSError) as excinfo:
        inj.fire("s")
    assert excinfo.value.errno == errno.EIO
    inj.fire("s")  # hit 3: rule already spent
    assert inj.fired == ["s#2:error"]


def test_crash_action_raises_simulated_crash():
    inj = FaultInjector([FaultRule("s", 1, "crash")])
    with pytest.raises(SimulatedCrash):
        inj.fire("s")


def test_short_write_applies_volatile_prefix(tmp_path):
    path = str(tmp_path / "f")
    inj = FaultInjector([FaultRule("s", 1, "short")], seed=7)
    fh = inj.open(path, "w+b")
    with pytest.raises(OSError):
        inj.fire("s", handle=fh, data=b"0123456789")
    fh.seek(0, 2)
    n_written = fh.tell()
    assert 0 < n_written < 10  # a strict prefix reached the file
    inj.crash()
    with open(path, "rb") as plain:
        assert plain.read() == b""  # ... but none of it was durable


def test_torn_write_prefix_is_durable(tmp_path):
    path = str(tmp_path / "f")
    inj = FaultInjector([FaultRule("s", 1, "torn")], seed=7)
    fh = inj.open(path, "w+b")
    with pytest.raises(SimulatedCrash):
        inj.fire("s", handle=fh, data=b"0123456789")
    inj.crash()
    with open(path, "rb") as plain:
        content = plain.read()
    assert 0 < len(content) < 10
    assert b"0123456789".startswith(content)


def test_fault_cut_points_are_seeded():
    def cut_for(seed):
        inj = FaultInjector([FaultRule("s", 1, "short")], seed=seed)
        import tempfile
        with tempfile.TemporaryDirectory() as d:
            handle = inj.open(d + "/f", "w+b")
            with pytest.raises(OSError):
                inj.fire("s", handle=handle, data=bytes(range(100)))
            handle.seek(0, 2)
            return handle.tell()

    assert cut_for(1) == cut_for(1)  # deterministic
    cuts = {cut_for(s) for s in range(8)}
    assert len(cuts) > 1  # and seed-dependent


def test_rule_validation():
    with pytest.raises(ValueError):
        FaultRule("s", 1, "explode")
    with pytest.raises(ValueError):
        FaultRule("s", 0, "error")


# ----------------------------------------------------------------------
# Schedule enumeration
# ----------------------------------------------------------------------

def test_enumerate_schedules_is_deterministic_and_complete():
    hits = {"wal.append": 3, "wal.fsync": 2}
    schedules = enumerate_schedules(hits)
    assert schedules == enumerate_schedules(hits)
    # payload site: every action at every hit; fsync site: no torn/short
    assert FaultRule("wal.append", 2, "torn") in schedules
    assert FaultRule("wal.fsync", 1, "error") in schedules
    assert FaultRule("wal.fsync", 1, "torn") not in schedules
    assert len(schedules) == 3 * len(ACTIONS) + 2 * 2


def test_enumerate_schedules_samples_edges_of_hot_sites():
    schedules = enumerate_schedules({"pager.read": 100},
                                    max_hits_per_site=4)
    hit_points = {r.at_hit for r in schedules}
    assert hit_points == {1, 2, 99, 100}
