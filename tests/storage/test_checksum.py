"""Page checksums: corruption is detected on read, never decoded."""

import pytest

from repro.errors import CorruptPageError
from repro.obs.metrics import MetricsRegistry
from repro.storage import Pager, StorageEnvironment
from repro.storage.pager import PAGE_HEADER_SIZE


def build_pager(tmp_path, **kw):
    pager = Pager(str(tmp_path / "f"), page_size=128, **kw)
    a = pager.allocate()
    b = pager.allocate()
    pager.write(a, b"A" * 100)
    pager.write(b, b"B" * 50)
    pager.sync()
    return pager, a, b


def corrupt(path, offset, data=b"\xde\xad"):
    with open(path, "r+b") as fh:
        fh.seek(offset)
        fh.write(data)


def test_round_trip_is_checksummed_transparently(tmp_path):
    pager, a, b = build_pager(tmp_path)
    assert pager.read(a) == b"A" * 100 + b"\x00" * 28
    assert pager.read(b).rstrip(b"\x00") == b"B" * 50
    pager.close()


def test_flipped_payload_byte_raises_corrupt_page(tmp_path):
    pager, a, _ = build_pager(tmp_path)
    pager.close()
    frame_size = 128 + PAGE_HEADER_SIZE
    corrupt(str(tmp_path / "f"), a * frame_size + PAGE_HEADER_SIZE + 10)
    reopened = Pager(str(tmp_path / "f"))
    with pytest.raises(CorruptPageError):
        reopened.read(a)
    reopened.close()


def test_flipped_header_byte_raises_corrupt_page(tmp_path):
    pager, a, _ = build_pager(tmp_path)
    pager.close()
    frame_size = 128 + PAGE_HEADER_SIZE
    corrupt(str(tmp_path / "f"), a * frame_size + 5)  # inside the lsn
    reopened = Pager(str(tmp_path / "f"))
    with pytest.raises(CorruptPageError):
        reopened.read(a)
    reopened.close()


def test_checksum_failures_are_counted(tmp_path):
    pager, a, _ = build_pager(tmp_path)
    pager.close()
    frame_size = 128 + PAGE_HEADER_SIZE
    corrupt(str(tmp_path / "f"), a * frame_size + PAGE_HEADER_SIZE)
    metrics = MetricsRegistry()
    reopened = Pager(str(tmp_path / "f"), metrics=metrics)
    for _ in range(3):
        with pytest.raises(CorruptPageError):
            reopened.read(a)
    assert metrics.counter("pager.checksum_failures").value == 3
    reopened.close()


def test_never_written_page_reads_as_zeros(tmp_path):
    pager = Pager(str(tmp_path / "f"), page_size=128)
    a = pager.allocate()
    pager.sync()  # page allocated but its frame never written
    assert pager.read(a) == bytes(128)
    pager.close()


def test_corrupt_meta_page_fails_open(tmp_path):
    pager, _, _ = build_pager(tmp_path)
    pager.close()
    corrupt(str(tmp_path / "f"), 8)  # inside the meta struct
    with pytest.raises(CorruptPageError):
        Pager(str(tmp_path / "f"))


def test_frame_lsn_advances_with_writes(tmp_path):
    pager, a, b = build_pager(tmp_path)
    first = pager.frame_lsn(a)
    pager.write(a, b"A2")
    pager.sync()
    assert pager.frame_lsn(a) > first
    assert pager.frame_lsn(a) != pager.frame_lsn(b)
    pager.close()


def test_corruption_surfaces_through_the_tree(tmp_path):
    env = StorageEnvironment(str(tmp_path / "db"), page_size=256,
                             metrics=False)
    tree = env.open_tree("t")
    tree.bulk_load((f"k{i:04d}".encode(), b"v") for i in range(200))
    env.close()
    # Corrupt the payload of every page except meta; any read must fail
    # loudly, never return garbage tuples.
    path = str(tmp_path / "db" / "t.btree")
    frame_size = 256 + PAGE_HEADER_SIZE
    corrupt(path, 3 * frame_size + PAGE_HEADER_SIZE + 4, b"\xff" * 8)
    env2 = StorageEnvironment(str(tmp_path / "db"), page_size=256,
                              metrics=False)
    tree2 = env2.open_tree("t", create=False)
    with pytest.raises(CorruptPageError):
        for _ in tree2.items():
            pass
    env2.close()
