"""The deep checker must bless healthy trees and name specific damage."""

import pytest

from repro.storage import StorageEnvironment
from repro.storage.btree import _LEAF_HDR, _PAGE_LEAF
from repro.storage.pager import PAGE_HEADER_SIZE

PAGE_SIZE = 256


@pytest.fixture
def env(tmp_path):
    environment = StorageEnvironment(str(tmp_path / "db"),
                                     page_size=PAGE_SIZE, metrics=False)
    yield environment
    environment.close()


def build_tree(env, n=300, name="t", big=True):
    tree = env.open_tree(name)
    tree.bulk_load((f"k{i:05d}".encode(), b"v" * (i % 50))
                   for i in range(n))
    if big:
        tree.put(b"zz-big", b"B" * (PAGE_SIZE * 3))  # overflow chain
    tree.flush()
    return tree


def test_clean_tree_checks_clean(env):
    tree = build_tree(env)
    report = tree.check()
    assert report.clean
    assert report.entries == 301
    assert report.leaves == tree.num_leaves
    assert report.overflow_pages >= 3
    assert "clean" in report.render()


def test_clean_env_fscks_clean_with_zero_writes(env):
    build_tree(env, name="a")
    build_tree(env, name="b", big=False)
    env.flush()
    before = env.stats.physical_writes
    report = env.fsck()
    assert report.clean
    assert env.stats.physical_writes == before  # fsck only reads
    assert report.pages_checked > 0
    assert set(report.trees) == {"a", "b"}


def test_fsck_counts_land_in_metrics(tmp_path):
    env = StorageEnvironment(str(tmp_path / "db"), page_size=PAGE_SIZE)
    build_tree(env)
    env.fsck()
    snap = env.metrics.snapshot()["counters"]
    assert snap["fsck.runs"] == 1
    assert snap["fsck.pages_checked"] > 0
    assert snap["fsck.errors"] == 0
    env.close()


def corrupt_leaf(env, tree, patch):
    """Reopen the tree's file raw, apply ``patch(leaf_page_ids, fh)``."""
    env.close()
    path = tree.pager.path
    frame_size = PAGE_SIZE + PAGE_HEADER_SIZE
    leaf_pages = []
    with open(path, "rb") as fh:
        raw = fh.read()
    for page_id in range(2, len(raw) // frame_size):
        if raw[page_id * frame_size + PAGE_HEADER_SIZE] == _PAGE_LEAF:
            leaf_pages.append(page_id)
    with open(path, "r+b") as fh:
        patch(leaf_pages, fh, frame_size)


def reopened_report(env_path):
    env = StorageEnvironment(env_path, page_size=PAGE_SIZE, metrics=False)
    try:
        return env.fsck()
    finally:
        env.close()


def test_fsck_reports_checksum_damage(tmp_path):
    env = StorageEnvironment(str(tmp_path / "db"), page_size=PAGE_SIZE,
                             metrics=False)
    tree = build_tree(env, big=False)

    def smash(leaves, fh, frame_size):
        fh.seek(leaves[2] * frame_size + PAGE_HEADER_SIZE + 8)
        fh.write(b"\xff" * 4)

    corrupt_leaf(env, tree, smash)
    report = reopened_report(str(tmp_path / "db"))
    assert not report.clean
    assert any("checksum" in e for e in report.all_errors())


def test_fsck_reports_broken_sibling_link(tmp_path):
    env = StorageEnvironment(str(tmp_path / "db"), page_size=PAGE_SIZE,
                             metrics=False)
    tree = build_tree(env, big=False)

    def unlink(leaves, fh, frame_size):
        # Overwrite one leaf's frame with a re-checksummed copy whose
        # `next` pointer is zeroed: structurally valid, logically wrong.
        import struct
        import zlib
        page_id = leaves[1]
        fh.seek(page_id * frame_size)
        frame = bytearray(fh.read(frame_size))
        payload = frame[PAGE_HEADER_SIZE:]
        kind, prev, nxt, count = _LEAF_HDR.unpack_from(payload)
        _LEAF_HDR.pack_into(payload, 0, kind, prev, 0, count)
        body = frame[4:PAGE_HEADER_SIZE] + payload
        frame[0:4] = struct.pack(">I", zlib.crc32(bytes(body)))
        frame[PAGE_HEADER_SIZE:] = payload
        fh.seek(page_id * frame_size)
        fh.write(bytes(frame))

    corrupt_leaf(env, tree, unlink)
    report = reopened_report(str(tmp_path / "db"))
    assert not report.clean
    errors = "\n".join(report.all_errors())
    assert "chain" in errors or "prev link" in errors


def test_fsck_reports_unopenable_tree(tmp_path):
    env = StorageEnvironment(str(tmp_path / "db"), page_size=PAGE_SIZE,
                             metrics=False)
    build_tree(env, big=False)
    env.close()
    path = str(tmp_path / "db" / "t.btree")
    with open(path, "r+b") as fh:
        fh.write(b"XXXX")  # destroy the pager magic
    report = reopened_report(str(tmp_path / "db"))
    assert not report.clean
    assert any("cannot open" in e for e in report.errors)


def test_fsck_treats_uncreated_tree_files_as_benign(tmp_path):
    # A crash between pager creation and the tree's first committed
    # flush leaves a page file with no tree in it (or an empty file) —
    # legitimate recovered states, not corruption.
    import os

    from repro.storage.pager import Pager

    db = tmp_path / "db"
    env = StorageEnvironment(str(db), page_size=PAGE_SIZE, metrics=False)
    build_tree(env, big=False)
    env.close()
    # Pager committed, tree header never created:
    Pager(str(db / "young.btree"), page_size=PAGE_SIZE).close()
    # Pager creation itself never committed:
    with open(db / "embryo.btree", "wb"):
        pass
    os.remove(db / "young.btree.wal")
    report = reopened_report(str(db))
    assert report.clean
    assert sorted(report.embryonic) == ["embryo", "young"]
    assert "creation never committed" in report.render()


def test_check_detects_entry_count_drift(env):
    tree = build_tree(env, big=False)
    tree._num_entries += 7  # simulate a header counter gone stale
    tree._header_dirty = True
    report = tree.check()
    assert not report.clean
    assert any("entries" in e for e in report.errors)
