"""B+ tree behavior: CRUD, cursors, bulk loading, overflow, I/O costs."""

import random

import pytest

from repro.errors import StorageError
from repro.storage import StorageEnvironment, encode_key


@pytest.fixture
def env(tmp_path):
    with StorageEnvironment(str(tmp_path / "db"), page_size=512,
                            pool_pages=64) as env:
        yield env


def make_items(n, value=lambda i: f"value-{i}".encode()):
    return [(encode_key((i % 13, i)), value(i)) for i in range(n)]


def test_insert_lookup_delete_matches_dict(env):
    tree = env.open_tree("t")
    rng = random.Random(1)
    reference = {}
    for _ in range(3000):
        key = encode_key((rng.randint(0, 400),))
        value = bytes([rng.randint(0, 255)]) * rng.randint(0, 40)
        reference[key] = value
        tree.put(key, value)
    for key, value in reference.items():
        assert tree.get(key) == value
    assert tree.get(encode_key((999,))) is None
    assert len(tree) == len(reference)

    for key in list(reference)[::3]:
        assert tree.delete(key)
        del reference[key]
    assert not tree.delete(encode_key((999,)))
    for key, value in reference.items():
        assert tree.get(key) == value
    assert len(tree) == len(reference)
    assert [k for k, _ in tree.items()] == sorted(reference)


def test_replace_updates_in_place(env):
    tree = env.open_tree("t")
    key = encode_key((1,))
    tree.put(key, b"old")
    tree.put(key, b"new")
    assert tree.get(key) == b"new"
    assert len(tree) == 1


def test_duplicates_enumerate_in_order(env):
    tree = env.open_tree("t")
    key = encode_key((7,))
    for i in range(5):
        tree.put(key, f"dup{i}".encode(), replace=False)
    tree.put(encode_key((6,)), b"before")
    tree.put(encode_key((8,)), b"after")
    assert len(tree) == 7
    dups = [v for k, v in tree.items() if k == key]
    assert sorted(dups) == [f"dup{i}".encode() for i in range(5)]
    assert tree.get(key) in dups  # first match
    # delete removes one duplicate at a time
    assert tree.delete(key)
    assert len([v for k, v in tree.items() if k == key]) == 4


def test_range_cursors_both_directions(env):
    tree = env.open_tree("t")
    items = sorted(make_items(1000))
    for key, value in items:
        tree.put(key, value)
    lo, hi = items[150][0], items[850][0]
    fwd = list(tree.range_items(lo, hi))
    assert fwd == items[150:850]
    back = list(tree.range_items(lo, hi, reverse=True))
    assert back == items[150:850][::-1]
    assert list(tree.range_items(None, None, reverse=True)) == items[::-1]
    # bounds that fall between keys still work
    assert list(tree.range_items(lo + b"\x00", hi)) == items[151:850]


def test_cursor_seek_and_step(env):
    tree = env.open_tree("t")
    items = sorted(make_items(500))
    tree.bulk_load(items)
    cur = tree.cursor()
    assert cur.seek(items[250][0])
    assert cur.key == items[250][0]
    assert cur.next() and cur.key == items[251][0]
    assert cur.prev() and cur.prev() and cur.key == items[249][0]
    assert cur.first() and cur.key == items[0][0]
    assert not cur.prev()
    assert cur.last() and cur.key == items[-1][0]
    assert not cur.next()
    # seek past the end invalidates
    assert not cur.seek(items[-1][0] + b"\xff")
    cur.close()


def test_bulk_load_equals_incremental_build(env):
    items = sorted(make_items(2000))
    bulk = env.open_tree("bulk")
    bulk.bulk_load(items)
    incremental = env.open_tree("incr")
    shuffled = items[:]
    random.Random(5).shuffle(shuffled)
    for key, value in shuffled:
        incremental.put(key, value)

    assert list(bulk.items()) == list(incremental.items()) == items
    for key, value in items[::97]:
        assert bulk.get(key) == value
    # Packed leaves: bulk loading is denser and never taller.
    assert bulk.num_leaves < incremental.num_leaves
    assert bulk.height <= incremental.height


def test_bulk_load_validates_input(env):
    tree = env.open_tree("t")
    with pytest.raises(StorageError, match="sorted"):
        tree.bulk_load([(b"b", b"1"), (b"a", b"2")])
    fresh = env.open_tree("t2")
    fresh.bulk_load(sorted(make_items(10)))
    with pytest.raises(StorageError, match="empty"):
        fresh.bulk_load(sorted(make_items(10)))


def test_bulk_load_empty_and_duplicate_keys(env):
    tree = env.open_tree("t")
    assert tree.bulk_load([]) == 0
    assert list(tree.items()) == []
    tree2 = env.open_tree("t2")
    items = [(encode_key((1,)), b"a"), (encode_key((1,)), b"b"),
             (encode_key((2,)), b"c")]
    assert tree2.bulk_load(items) == 3
    assert list(tree2.items()) == items


def test_bulk_load_fill_factor_controls_leaf_count(env):
    items = sorted(make_items(2000))
    packed = env.open_tree("packed")
    packed.bulk_load(items, fill=1.0)
    loose = env.open_tree("loose")
    loose.bulk_load(items, fill=0.5)
    assert packed.num_leaves < loose.num_leaves
    assert list(loose.items()) == items


def test_overflow_values_roundtrip_and_free(env):
    tree = env.open_tree("t")
    big = bytes(range(256)) * 40  # 10 KiB >> quarter of a 512-byte page
    small_key, big_key = encode_key((1,)), encode_key((2,))
    tree.put(big_key, big)
    tree.put(small_key, b"small")
    assert tree.get(big_key) == big
    assert tree.get(small_key) == b"small"
    tree.flush()
    pages_with_big = tree.pager.num_pages
    # Replacing the spilled value frees its chain: the file stops growing.
    tree.put(big_key, big[::-1])
    assert tree.get(big_key) == big[::-1]
    assert tree.pager.num_pages <= pages_with_big + 1
    tree.delete(big_key)
    tree.put(encode_key((3,)), big)
    assert tree.pager.num_pages <= pages_with_big + 1
    assert tree.get(encode_key((3,))) == big


def test_persistence_across_reopen(tmp_path):
    items = sorted(make_items(800))
    with StorageEnvironment(str(tmp_path / "db"), page_size=512) as env:
        tree = env.open_tree("t")
        tree.bulk_load(items)
        tree.put(encode_key((99, 99)), b"late insert")
    with StorageEnvironment(str(tmp_path / "db"), page_size=512) as env:
        tree = env.open_tree("t", create=False)
        assert len(tree) == len(items) + 1
        assert tree.get(encode_key((99, 99))) == b"late insert"
        assert [k for k, _ in tree.items()] == sorted(
            [k for k, _ in items] + [encode_key((99, 99))]
        )
    with StorageEnvironment(str(tmp_path / "db"), page_size=512) as env:
        with pytest.raises(StorageError):
            env.open_tree("absent", create=False)


def test_point_lookup_costs_height_logical_reads(env):
    tree = env.open_tree("t")
    items = sorted(make_items(5000))
    tree.bulk_load(items)
    assert tree.height >= 3
    env.drop_caches()
    for key, value in [items[17], items[2500], items[-1]]:
        snap = env.stats.snapshot()
        assert tree.get(key) == value
        delta = env.stats.delta(snap)
        assert delta.logical_reads == tree.height
        assert delta.physical_reads <= tree.height


def test_scan_io_cold_vs_warm(tmp_path):
    with StorageEnvironment(str(tmp_path / "db"), page_size=512,
                            pool_pages=4096) as env:
        tree = env.open_tree("t")
        items = sorted(make_items(5000))
        tree.bulk_load(items)
        env.drop_caches()
        snap = env.stats.snapshot()
        assert sum(1 for _ in tree.items()) == len(items)
        cold = env.stats.delta(snap)
        # A full scan walks the leaf chain: exactly one physical read per leaf.
        assert cold.physical_reads == tree.num_leaves
        assert cold.logical_reads == tree.num_leaves
        snap = env.stats.snapshot()
        assert sum(1 for _ in tree.items()) == len(items)
        warm = env.stats.delta(snap)
        assert warm.physical_reads == 0  # 100% buffer-pool hits
        assert warm.logical_reads == tree.num_leaves


def test_environment_tree_management(env):
    env.open_tree("alpha").put(b"k", b"v")
    env.open_tree("beta")
    assert env.exists("alpha") and not env.exists("gamma")
    assert env.list_trees() == ["alpha", "beta"]
    assert env.file_size("alpha") > 0
    env.drop_tree("beta")
    assert env.list_trees() == ["alpha"]
    with pytest.raises(StorageError):
        env.drop_tree("beta")
    with pytest.raises(StorageError):
        env.open_tree("../escape")


def test_shared_pool_io_accounting_across_trees(env):
    a = env.open_tree("a")
    b = env.open_tree("b")
    a.bulk_load(sorted(make_items(300)))
    b.bulk_load(sorted(make_items(300)))
    env.drop_caches()
    snap = env.stats.snapshot()
    a.get(encode_key((0, 0)))
    b.get(encode_key((0, 0)))
    delta = env.stats.delta(snap)
    assert delta.logical_reads == a.height + b.height
