"""Order preservation and roundtripping of the key encoding."""

import random

import pytest

from repro.errors import KeyEncodingError
from repro.storage.keyenc import Desc, decode_key, encode_key, prefix_upper_bound


def assert_order_matches(tuples):
    """Encoded byte order must equal tuple order for every pair."""
    encoded = [(encode_key(t), t) for t in tuples]
    by_bytes = [t for _, t in sorted(encoded, key=lambda kt: kt[0])]
    assert by_bytes == sorted(tuples)


def test_int_order_mixed_sign_and_magnitude():
    values = [-(2 ** 62), -1000000, -17, -1, 0, 1, 5, 4096, 2 ** 40, 2 ** 62]
    assert_order_matches([(v,) for v in values])


def test_int_range_check():
    encode_key((2 ** 63 - 1,))
    encode_key((-(2 ** 63),))
    with pytest.raises(KeyEncodingError):
        encode_key((2 ** 63,))
    with pytest.raises(KeyEncodingError):
        encode_key((-(2 ** 63) - 1,))


def test_float_order_mixed_sign():
    values = [float("-inf"), -1e300, -2.5, -1e-300, 0.0, 1e-300, 1.0, 2.5,
              1e300, float("inf")]
    assert_order_matches([(v,) for v in values])


def test_float_nan_rejected():
    with pytest.raises(KeyEncodingError):
        encode_key((float("nan"),))


def test_string_order_with_embedded_nulls_and_prefixes():
    values = ["", "a", "a\x00", "a\x00b", "aa", "ab", "b", "ba", "é", "😀"]
    assert_order_matches([(v,) for v in values])


def test_string_prefix_never_bleeds_into_next_component():
    # ("a", big) must sort before ("a\x00b", small): component boundaries win.
    assert encode_key(("a", 2 ** 40)) < encode_key(("a\x00b", 0))
    assert encode_key(("a",)) < encode_key(("a", 0)) < encode_key(("ab",))


def test_composite_tuple_order_random():
    rng = random.Random(7)
    tuples = [
        (rng.randint(0, 5), rng.randint(-1000, 1000), rng.random())
        for _ in range(500)
    ]
    assert_order_matches(tuples)


def test_roundtrip():
    cases = [
        (),
        (42,),
        (-42, 3.5, "hello"),
        ("a\x00b", b"\x00\xff", None, True),
        (0, -0.0, "", b""),
    ]
    for case in cases:
        decoded = decode_key(encode_key(case))
        assert len(decoded) == len(case)
        for got, want in zip(decoded, case):
            if isinstance(want, bool):
                assert got == int(want)
            else:
                assert got == want


def test_desc_inverts_order():
    probs = [0.0, 0.1, 0.25, 0.5, 0.99, 1.0]
    encoded = sorted(encode_key((5, Desc(p), t)) for t, p in enumerate(probs))
    decoded = [decode_key(e) for e in encoded]
    assert [d[1] for d in decoded] == sorted(probs, reverse=True)
    # Desc decodes to the plain value, not a wrapper.
    assert decode_key(encode_key((Desc(3),))) == (3,)
    assert decode_key(encode_key((Desc(0.75),))) == (0.75,)


def test_desc_rejects_variable_width():
    with pytest.raises(KeyEncodingError):
        encode_key((Desc("nope"),))


def test_prefix_upper_bound_covers_exactly_the_prefix():
    rng = random.Random(3)
    prefix = encode_key((3,))
    hi = prefix_upper_bound(prefix)
    inside = [encode_key((3, rng.randint(-50, 2 ** 60))) for _ in range(100)]
    outside = [encode_key((v, 0)) for v in (2, 4, 2 ** 50)]
    assert all(prefix <= k < hi for k in inside)
    assert all(not prefix <= k < hi for k in outside)


def test_prefix_upper_bound_carries_past_ff():
    assert prefix_upper_bound(b"a\xff\xff") == b"b"
    with pytest.raises(KeyEncodingError):
        prefix_upper_bound(b"\xff\xff")


def test_encode_rejects_bare_values_and_unknown_types():
    with pytest.raises(KeyEncodingError):
        encode_key("bare string")
    with pytest.raises(KeyEncodingError):
        encode_key(([1, 2],))


def test_decode_rejects_corrupt_keys():
    with pytest.raises(KeyEncodingError):
        decode_key(b"\x10\x00")  # truncated int payload
    with pytest.raises(KeyEncodingError):
        decode_key(b"\x99")  # unknown tag
