"""Predicate semantics over a concrete state space."""

import pytest

from repro.errors import QueryError
from repro.query.predicates import (
    DimensionEquals,
    Equals,
    InSet,
    IndexTerm,
    Not,
    TruePredicate,
)
from repro.streams import StateSpace, single_attribute_space

SPACE = single_attribute_space("location", ["H1", "H2", "R1", "R2"])


def test_equals_matching_states_and_terms():
    pred = Equals("location", "R1")
    assert pred.matching_states(SPACE) == \
        SPACE.states_with_value("location", "R1")
    assert pred.index_terms(SPACE) == [IndexTerm("location", "R1")]
    assert pred.indexable


def test_inset_union_and_canonical_signature():
    pred = InSet("location", ["R2", "R1", "R2"])
    assert pred.values == ("R1", "R2")
    assert pred.matching_states(SPACE) == frozenset(
        SPACE.states_with_value("location", "R1")
        | SPACE.states_with_value("location", "R2")
    )
    assert len(pred.index_terms(SPACE)) == 2
    with pytest.raises(QueryError):
        InSet("location", [])


def test_not_is_complement_and_unindexable():
    base = Equals("location", "R1")
    pred = Not(base)
    assert pred.matching_states(SPACE) == \
        frozenset(range(len(SPACE))) - base.matching_states(SPACE)
    assert not pred.indexable
    with pytest.raises(QueryError):
        pred.index_terms(SPACE)
    assert pred.signature() == "!location=R1"


def test_true_predicate_matches_everything():
    pred = TruePredicate()
    assert pred.matching_states(SPACE) == frozenset(range(len(SPACE)))
    assert not pred.indexable
    with pytest.raises(QueryError):
        pred.index_terms(SPACE)


def test_dimension_predicate_fallback_terms():
    mapping = {"H1": "Hallway", "H2": "Hallway", "R1": "Office",
               "X9": "Hallway"}
    pred = DimensionEquals("location", "LocationType", "Hallway", mapping)
    assert pred.matching_states(SPACE) == (
        SPACE.states_with_value("location", "H1")
        | SPACE.states_with_value("location", "H2")
    )
    # The preferred term targets the join index ...
    assert pred.index_terms(SPACE) == \
        [IndexTerm("location/LocationType", "Hallway")]
    # ... while the fallback expands to base values present in the
    # vocabulary (X9 maps to Hallway but no state takes it).
    fallback = pred.value_level_terms(SPACE)
    assert fallback == [IndexTerm("location", "H1"),
                        IndexTerm("location", "H2")]


def test_dimension_predicate_without_mapping_raises():
    pred = DimensionEquals("location", "T", "V")
    with pytest.raises(QueryError, match="no dimension table"):
        pred.matching_states(SPACE)


def test_predicate_identity_is_the_signature():
    assert Equals("location", "R1") == Equals("location", "R1")
    assert Equals("location", "R1") != Equals("location", "R2")
    assert len({Equals("a", "v"), Equals("a", "v"), Not(Equals("a", "v"))}) \
        == 2


def test_multi_attribute_space_predicates():
    space = StateSpace(
        ("location", "activity"),
        [("Hall", "walk"), ("Hall", "stand"), ("Room", "stand")],
    )
    assert Equals("activity", "stand").matching_states(space) == \
        frozenset({1, 2})
    assert Equals("location", "Hall").matching_states(space) == \
        frozenset({0, 1})
