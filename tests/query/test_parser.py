"""Regular-query grammar and structure tests (§3)."""

import pytest

from repro.errors import QueryError
from repro.query import parse_query
from repro.query.predicates import (
    DimensionEquals,
    Equals,
    InSet,
    Not,
)


def test_single_link():
    q = parse_query("location=Room")
    assert len(q) == 1
    assert q.is_fixed_length
    assert isinstance(q.links[0].predicate, Equals)
    assert q.links[0].predicate.signature() == "location=Room"


def test_multi_link_fixed_length():
    q = parse_query("location=Door -> location=Room")
    assert len(q) == 2
    assert q.is_fixed_length
    assert not q.has_positive_loops
    assert q.signature() == "location=Door -> location=Room"


def test_negated_kleene_loop():
    q = parse_query("location=D -> (!location=R)* location=R")
    assert len(q) == 2
    assert not q.is_fixed_length
    assert not q.has_positive_loops  # the loop is negated
    link = q.links[1]
    assert link.has_loop and not link.has_positive_loop
    assert isinstance(link.loop, Not)
    assert link.loop.signature() == "!location=R"
    # Negated loops need no index support.
    sigs = [p.signature() for p in q.indexable_predicates()]
    assert sigs == ["location=D", "location=R"]


def test_positive_kleene_loop_is_indexable():
    q = parse_query("location=D -> (location=H)* location=R")
    assert q.has_positive_loops
    sigs = [p.signature() for p in q.indexable_predicates()]
    assert "location=H" in sigs


def test_in_set_predicate():
    q = parse_query("location in {O300, O301} -> location=Hall")
    pred = q.links[0].predicate
    assert isinstance(pred, InSet)
    assert pred.values == ("O300", "O301")


def test_dimension_predicate_requires_table():
    text = "dim(location,LocationType)=Hallway -> location=R"
    with pytest.raises(QueryError, match="unknown dimension table"):
        parse_query(text)
    tables = {"LocationType": {"H1": "Hallway", "R1": "Office"}}
    q = parse_query(text, dimensions=tables)
    pred = q.links[0].predicate
    assert isinstance(pred, DimensionEquals)
    assert pred.base_values() == ["H1"]


def test_parse_errors():
    with pytest.raises(QueryError):
        parse_query("")
    with pytest.raises(QueryError):
        parse_query("location=A -> ")
    with pytest.raises(QueryError):
        parse_query("location ~ A")
    with pytest.raises(QueryError, match="first link"):
        parse_query("(location=H)* location=R")


def test_query_name_defaults_to_text():
    text = "location=Door -> location=Room"
    assert parse_query(text).name == text
    assert parse_query(text, name="entered").name == "entered"
